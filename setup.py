"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so the package can be installed in
fully-offline environments that lack the ``wheel`` package needed by the
PEP-517 editable-install path (``python setup.py develop`` works with a bare
setuptools).
"""

from setuptools import setup

setup()
