"""GraphBuilder: a layer-level convenience API that emits graph nodes.

Models in :mod:`repro.models` are written against this builder.  Each layer
call adds the weight variables, the compute operator, the bias, and the
activation as *separate named nodes*, because that granularity is what both
the fault injector (inject into any operator output) and Ranger (bound the
activation outputs and the pooling/reshape/concat operators that follow them)
operate on.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .. import ops
from ..nn.initializers import Initializer, glorot_uniform, zeros
from .graph import Graph


class GraphBuilder:
    """Builds a model graph layer by layer.

    Parameters
    ----------
    name:
        Graph name.
    seed:
        Seed for weight initialization; each builder owns an independent
        generator so model construction is fully deterministic.
    """

    def __init__(self, name: str = "model", seed: int = 0) -> None:
        self.graph = Graph(name=name)
        self.rng = np.random.default_rng(seed)

    # -- primitives -----------------------------------------------------------

    def input(self, shape: Tuple[int, ...], name: str = "input") -> str:
        return self.graph.add(name, ops.Placeholder(name=name, shape=shape))

    def variable(self, value: np.ndarray, name: str,
                 trainable: bool = True) -> str:
        return self.graph.add(name, ops.Variable(value, trainable=trainable,
                                                 name=name))

    def constant(self, value: np.ndarray, name: str) -> str:
        return self.graph.add(name, ops.Constant(value))

    def activation(self, x: str, kind: str, name: str, **kwargs) -> str:
        return self.graph.add(name, ops.make_activation(kind, **kwargs), [x])

    def output(self, x: str) -> str:
        self.graph.mark_output(x)
        return x

    # -- composite layers -------------------------------------------------------

    def conv2d(self, x: str, in_channels: int, out_channels: int,
               kernel_size: int, name: str, stride: int = 1,
               padding: str = "same", activation: Optional[str] = "relu",
               use_bias: bool = True,
               kernel_init: Initializer = glorot_uniform) -> str:
        """Convolution + bias + activation, emitted as separate nodes."""
        kernel_shape = (kernel_size, kernel_size, in_channels, out_channels)
        kernel = self.variable(kernel_init(self.rng, kernel_shape),
                               name=f"{name}/kernel")
        out = self.graph.add(f"{name}/conv",
                             ops.Conv2D(stride=stride, padding=padding),
                             [x, kernel])
        if use_bias:
            bias = self.variable(zeros(self.rng, (out_channels,)),
                                 name=f"{name}/bias")
            out = self.graph.add(f"{name}/bias_add", ops.BiasAdd(), [out, bias])
        if activation is not None:
            out = self.activation(out, activation, f"{name}/{activation}")
        return out

    def dense(self, x: str, in_features: int, out_features: int, name: str,
              activation: Optional[str] = "relu", use_bias: bool = True,
              kernel_init: Initializer = glorot_uniform) -> str:
        """Fully-connected layer + bias + activation."""
        weight = self.variable(kernel_init(self.rng, (in_features, out_features)),
                               name=f"{name}/weight")
        out = self.graph.add(f"{name}/matmul", ops.MatMul(), [x, weight])
        if use_bias:
            bias = self.variable(zeros(self.rng, (out_features,)),
                                 name=f"{name}/bias")
            out = self.graph.add(f"{name}/bias_add", ops.BiasAdd(), [out, bias])
        if activation is not None:
            out = self.activation(out, activation, f"{name}/{activation}")
        return out

    def max_pool(self, x: str, pool: int, name: str,
                 stride: Optional[int] = None, padding: str = "valid") -> str:
        return self.graph.add(name, ops.MaxPool2D(pool=pool, stride=stride,
                                                  padding=padding), [x])

    def avg_pool(self, x: str, pool: int, name: str,
                 stride: Optional[int] = None, padding: str = "valid") -> str:
        return self.graph.add(name, ops.AvgPool2D(pool=pool, stride=stride,
                                                  padding=padding), [x])

    def global_avg_pool(self, x: str, name: str) -> str:
        return self.graph.add(name, ops.GlobalAvgPool(), [x])

    def flatten(self, x: str, name: str = "flatten") -> str:
        return self.graph.add(name, ops.Flatten(), [x])

    def concat(self, xs: Sequence[str], name: str, axis: int = -1) -> str:
        return self.graph.add(name, ops.Concatenate(axis=axis), list(xs))

    def add(self, a: str, b: str, name: str) -> str:
        return self.graph.add(name, ops.Add(), [a, b])

    def dropout(self, x: str, rate: float, name: str) -> str:
        return self.graph.add(name, ops.Dropout(rate=rate,
                                                seed=int(self.rng.integers(2**31))),
                              [x])

    def batch_norm(self, x: str, channels: int, name: str) -> str:
        gamma = self.variable(np.ones(channels), name=f"{name}/gamma")
        beta = self.variable(np.zeros(channels), name=f"{name}/beta")
        return self.graph.add(name, ops.BatchNorm(), [x, gamma, beta])

    def local_response_norm(self, x: str, name: str, **kwargs) -> str:
        return self.graph.add(name, ops.LocalResponseNorm(**kwargs), [x])

    def softmax(self, x: str, name: str = "softmax") -> str:
        return self.graph.add(name, ops.Softmax(), [x])

    def scale(self, x: str, factor: float, name: str) -> str:
        return self.graph.add(name, ops.Scale(factor), [x])
