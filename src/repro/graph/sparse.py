"""Sparse elementwise delta representation for the replay engine.

A single-bit fault changes exactly one stored element, and long stretches of
the evaluated networks are purely elementwise (activations, inference-mode
BatchNorm, clipping, quantization, reshapes).  Instead of re-evaluating whole
arrays along the fault's downstream cone, the executor can carry the dirty
frontier as *(flat index, new value)* pairs relative to the golden activation
cache, apply each :attr:`~repro.ops.base.Operator.elementwise_exact` operator
to just those elements, and densify only at the first operator that mixes
elements (conv / matmul / pooling / softmax).

Everything here is bitwise: sparse application uses the same IEEE-754 scalar
operations the dense forward pass performs on those elements, and dirtiness is
tracked per element with an integer view comparison (the per-element analogue
of :func:`~repro.graph.executor.bit_identical`), so sparse replay reproduces
the dense incremental path's fault records and verdicts exactly — including
under ``EquivalenceMode.EXACT``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

Array = np.ndarray

#: Maximum dirty fraction of a row for which sparse application is attempted.
#: Above this density the gather/scatter bookkeeping costs more than simply
#: re-evaluating the row dense, so the executor falls back.  An eighth of a
#: row is conservative: fault deltas start at a handful of elements and only
#: approach this after a densifying operator re-sparsifies a wide diff.
SPARSE_DENSITY_THRESHOLD = 0.125

#: Minimum number of dense elements a sparse node evaluation must displace
#: (dirty rows x row size) before the sparse path is taken.  Sparse
#: application pays a fixed per-node bookkeeping cost (index gathers,
#: parameter broadcasts, the per-element retirement compare) of a few dozen
#: small numpy calls; on a small activation row that costs more than the
#: overhead-dominated dense re-evaluation it replaces, so batch-1 replays of
#: small models should stay dense while batched replays (whose displaced work
#: is ``dirty_rows`` times larger) go sparse.  Tunable per executor via
#: :attr:`~repro.graph.executor.Executor.sparse_min_gain_elements`; set it to
#: ``0`` to force the sparse path wherever it is representable (the
#: equivalence suites do, to pin the mechanics on tiny graphs).
SPARSE_MIN_GAIN_ELEMENTS = 1 << 15


def bitwise_neq(a: Array, b: Array) -> Array:
    """Elementwise "bits differ" comparison of two float64 arrays.

    The per-element analogue of :func:`~repro.graph.executor.bit_identical`:
    ``-0.0`` and ``0.0`` compare *different* (they are distinct stored words a
    later bit flip could land on) and equal-payload NaNs compare *equal*.
    Shapes must be broadcast-compatible; the trailing axis is compared
    bit-for-bit through an int64 view.
    """
    a64 = np.ascontiguousarray(a, dtype=np.float64).view(np.int64)
    b64 = np.ascontiguousarray(b, dtype=np.float64).view(np.int64)
    return a64 != b64


def gather_param(param: Array, row_shape: Tuple[int, ...],
                 indices: Array) -> Array:
    """Gather a batch-invariant parameter at row-flat ``indices``.

    ``param`` is broadcast against the consumer's row shape exactly as the
    dense forward pass would broadcast it (a ``(channels,)`` bias against an
    ``(H, W, channels)`` activation row), then sampled at the changed
    positions.  Views only — nothing is materialized at full size.
    """
    view = np.broadcast_to(np.asarray(param), tuple(row_shape))
    if view.ndim == 0:
        return np.full(indices.shape, view[()])
    return view[np.unravel_index(indices, view.shape)]


@dataclass
class SparseRows:
    """A per-row sparse delta over a stacked batch of trial rows.

    The flat-triplet form of the dirty frontier at one node: element ``k``
    says "row ``rows[k]`` of the batch differs from the golden activation at
    C-order row-flat position ``indices[k]``, where its value is
    ``values[k]``".  Triplets are sorted lexicographically by ``(row,
    index)`` with no duplicates, so per-row slices are contiguous and two
    deltas merge with a single :func:`numpy.lexsort`.

    ``batch`` is the number of rows in the stacked evaluation the delta
    belongs to; rows absent from ``rows`` are bit-identical to golden.
    """

    batch: int
    rows: Array
    indices: Array
    values: Array

    def __post_init__(self) -> None:
        self.rows = np.asarray(self.rows, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=np.float64)

    def validate(self, row_size: int) -> None:
        """Check invariants (lengths, bounds, strict (row, index) order)."""
        if not (self.rows.shape == self.indices.shape == self.values.shape):
            raise ValueError("SparseRows triplet arrays must share one length")
        if self.rows.ndim != 1:
            raise ValueError("SparseRows triplet arrays must be 1-D")
        if self.rows.size == 0:
            return
        if int(self.rows.min()) < 0 or int(self.rows.max()) >= self.batch:
            raise ValueError(
                f"SparseRows row ids out of range for batch {self.batch}")
        if int(self.indices.min()) < 0 or int(self.indices.max()) >= row_size:
            raise ValueError(
                f"SparseRows indices out of range for row size {row_size}")
        row_step = self.rows[1:] > self.rows[:-1]
        idx_step = ((self.rows[1:] == self.rows[:-1])
                    & (self.indices[1:] > self.indices[:-1]))
        if not bool(np.all(row_step | idx_step)):
            raise ValueError(
                "SparseRows triplets must be strictly sorted by (row, index)")

    @property
    def nnz(self) -> int:
        return int(self.rows.size)

    def row_mask(self) -> Array:
        """Boolean mask over the batch of rows carrying at least one element."""
        mask = np.zeros(self.batch, dtype=bool)
        mask[self.rows] = True
        return mask

    def nnz_by_row(self) -> Array:
        """Number of changed elements per batch row."""
        return np.bincount(self.rows, minlength=self.batch)

    def restrict(self, keep: Array) -> "SparseRows":
        """The sub-delta of rows selected by boolean batch mask ``keep``."""
        sel = keep[self.rows]
        if sel.all():
            return self
        return SparseRows(self.batch, self.rows[sel], self.indices[sel],
                          self.values[sel])


def merge_sorted_triplets(
        parts: Sequence[Tuple[Array, Array, Array]],
) -> Tuple[Array, Array, Array]:
    """Merge (rows, indices, values) triplets into one (row, index)-sorted
    triplet.  Parts must cover disjoint (row, index) positions."""
    if len(parts) == 1:
        return parts[0]
    rows = np.concatenate([p[0] for p in parts])
    idx = np.concatenate([p[1] for p in parts])
    vals = np.concatenate([p[2] for p in parts])
    order = np.lexsort((idx, rows))
    return rows[order], idx[order], vals[order]
