"""Dataflow graph: nodes, topological ordering, and graph duplication.

The graph mimics a TensorFlow-1.x static graph in the two ways that matter
for the Ranger reproduction:

* **Append-only structure.**  Existing nodes are never mutated; protection is
  applied by *duplicating* the graph and rewiring inputs through an
  ``input_map`` (the paper uses ``tf.import_graph_def`` with ``input_map`` for
  exactly this purpose).
* **Named operator nodes.**  Every node has a unique name and an operator
  category, which is what the fault injector uses to enumerate injection
  sites and what Algorithm 1 uses to pick the layers to bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterable, Iterator, List, Mapping,
                    Optional, Sequence, Set, Tuple, Union)

import numpy as np

from ..ops.base import Array, Operator, Placeholder, Variable


class GraphError(RuntimeError):
    """Raised for structural problems: duplicate names, cycles, bad wiring."""


@dataclass(frozen=True)
class Node:
    """A single named operator in the graph.

    Attributes
    ----------
    name:
        Unique node name, e.g. ``"conv1/relu"``.
    op:
        The :class:`~repro.ops.base.Operator` instance evaluated at this node.
    inputs:
        Names of the nodes whose outputs feed this operator, in positional
        order.
    """

    name: str
    op: Operator
    inputs: Tuple[str, ...] = ()

    @property
    def category(self) -> str:
        return self.op.category

    @property
    def injectable(self) -> bool:
        return self.op.injectable


class Graph:
    """An append-only dataflow graph of named operator nodes."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._order: List[str] = []
        self.outputs: List[str] = []
        #: Forward adjacency, maintained incrementally by :meth:`add` (the
        #: graph is append-only, so it never needs invalidation).  This is
        #: what makes the cone queries below O(V+E) instead of the old
        #: O(N^2) consumer scans.
        self._succ: Dict[str, List[str]] = {}
        #: Per-node cone memos; cleared whenever a node is added (an append
        #: can extend existing cones).  Campaign graphs are static, so the
        #: per-trial cone queries all hit these.
        self._downstream_memo: Dict[str, Set[str]] = {}
        self._ancestors_memo: Dict[str, Set[str]] = {}
        #: Union-cone memo keyed by frozenset of start names; the batched
        #: campaign packer asks for the same unions once per (fault-node
        #: set, batch) combination, so these are hit constantly at scale.
        self._union_memo: Dict[frozenset, frozenset] = {}
        self._topo_index: Optional[Dict[str, int]] = None

    # -- pickling ----------------------------------------------------------

    def __getstate__(self):
        """Pickle the graph without its derived query memos.

        The memos are pure caches over the (append-only) structure, but
        they fill lazily with use — pickling them would make a graph's
        byte representation depend on its *query history*, breaking every
        content fingerprint built on it (worker campaign caches, the
        campaign service's artifact keys), and would ship redundant cone
        sets to worker processes.  Dropping them costs one lazy rebuild on
        the unpickled copy.
        """
        state = dict(self.__dict__)
        state["_downstream_memo"] = {}
        state["_ancestors_memo"] = {}
        state["_union_memo"] = {}
        state["_topo_index"] = None
        return state

    # -- construction ------------------------------------------------------

    def add(self, name: str, op: Operator,
            inputs: Sequence[str] = ()) -> str:
        """Add a node and return its name.

        Raises :class:`GraphError` if the name already exists or any input
        refers to a node that has not been added yet (the graph is built in
        topological order by construction).
        """
        if name in self._nodes:
            raise GraphError(f"node '{name}' already exists in graph '{self.name}'")
        for inp in inputs:
            if inp not in self._nodes:
                raise GraphError(
                    f"node '{name}' references unknown input '{inp}'")
        node = Node(name=name, op=op, inputs=tuple(inputs))
        self._nodes[name] = node
        self._order.append(name)
        self._succ[name] = []
        for inp in node.inputs:
            self._succ[inp].append(name)
        if self._downstream_memo:
            self._downstream_memo.clear()
        if self._ancestors_memo:
            self._ancestors_memo.clear()
        if self._union_memo:
            self._union_memo.clear()
        self._topo_index = None
        return name

    def unique_name(self, base: str) -> str:
        """Return ``base`` or ``base_<k>`` such that the name is unused."""
        if base not in self._nodes:
            return base
        k = 1
        while f"{base}_{k}" in self._nodes:
            k += 1
        return f"{base}_{k}"

    def mark_output(self, name: str) -> None:
        if name not in self._nodes:
            raise GraphError(f"cannot mark unknown node '{name}' as output")
        if name not in self.outputs:
            self.outputs.append(name)

    # -- access ------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return (self._nodes[n] for n in self._order)

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise GraphError(f"unknown node '{name}'") from None

    def nodes(self) -> List[Node]:
        """All nodes in insertion (topological) order."""
        return [self._nodes[n] for n in self._order]

    def topological_order(self) -> List[str]:
        return list(self._order)

    def topo_index(self) -> Mapping[str, int]:
        """Node name → position in topological order (memoized)."""
        if self._topo_index is None:
            self._topo_index = {name: i for i, name in enumerate(self._order)}
        return self._topo_index

    def placeholders(self) -> List[Node]:
        return [n for n in self if isinstance(n.op, Placeholder)]

    def variables(self) -> List[Variable]:
        return [n.op for n in self if isinstance(n.op, Variable)]

    def consumers(self, name: str) -> List[Node]:
        """Nodes that take ``name`` as a direct input."""
        if name not in self._nodes:
            raise GraphError(f"unknown node '{name}'")
        seen: Set[str] = set()
        out: List[Node] = []
        for consumer in self._succ[name]:
            if consumer not in seen:
                seen.add(consumer)
                out.append(self._nodes[consumer])
        return out

    def successors(self, name: str) -> List[str]:
        """Names of the direct consumers of ``name`` (duplicates preserved)."""
        if name not in self._nodes:
            raise GraphError(f"unknown node '{name}'")
        return list(self._succ[name])

    def predecessors(self, name: str) -> List[str]:
        """Names of the direct inputs of ``name``."""
        return list(self.node(name).inputs)

    # -- cone queries (O(V+E) breadth-first searches) -----------------------

    def downstream(self, starts: Union[str, Iterable[str]]) -> Set[str]:
        """All nodes reachable from ``starts`` (including the starts).

        This is the *fault cone* of a set of nodes: the only nodes whose
        values can change when the starts' outputs change.  Built on the
        precomputed forward adjacency and memoized per start node, so a
        campaign's per-trial cone queries cost O(V+E) once per fault site
        rather than the O(N^2) fixpoint the injector used previously.
        """
        names = [starts] if isinstance(starts, str) else list(starts)
        reached: Set[str] = set()
        for name in names:
            reached |= self._downstream_one(name)
        return reached

    def _downstream_one(self, start: str) -> Set[str]:
        memo = self._downstream_memo.get(start)
        if memo is None:
            if start not in self._nodes:
                raise GraphError(f"unknown node '{start}'")
            memo = {start}
            frontier = [start]
            while frontier:
                name = frontier.pop()
                for consumer in self._succ[name]:
                    if consumer not in memo:
                        memo.add(consumer)
                        frontier.append(consumer)
            self._downstream_memo[start] = memo
        return memo

    def downstream_union(self, starts: Iterable[str]) -> frozenset:
        """The union cone of ``starts``, memoized per start *set*.

        Semantically ``frozenset(self.downstream(starts))``, but the union
        itself is cached keyed by the start set: the cross-site batch packer
        scores candidate batches by how much a site's cone grows the union,
        and campaigns ask for the same fault-node sets over and over (every
        trial at a site, every batch containing it).  Returned frozensets
        are shared — treat them as immutable.
        """
        key = starts if isinstance(starts, frozenset) else frozenset(starts)
        memo = self._union_memo.get(key)
        if memo is None:
            memo = frozenset(self.downstream(key))
            self._union_memo[key] = memo
        return memo

    def ancestors(self, targets: Union[str, Iterable[str]]) -> Set[str]:
        """All nodes that ``targets`` depend on (including the targets).

        The executor uses this to prune a forward pass down to the nodes
        actually needed for the requested outputs.  Memoized per target
        node, like :meth:`downstream`.
        """
        names = [targets] if isinstance(targets, str) else list(targets)
        reached: Set[str] = set()
        for name in names:
            reached |= self._ancestors_one(name)
        return reached

    def _ancestors_one(self, target: str) -> Set[str]:
        memo = self._ancestors_memo.get(target)
        if memo is None:
            if target not in self._nodes:
                raise GraphError(f"unknown node '{target}'")
            memo = {target}
            frontier = [target]
            while frontier:
                name = frontier.pop()
                for inp in self._nodes[name].inputs:
                    if inp not in memo:
                        memo.add(inp)
                        frontier.append(inp)
            self._ancestors_memo[target] = memo
        return memo

    def num_parameters(self) -> int:
        return int(sum(v.value.size for v in self.variables()))

    def nodes_by_category(self, category: str) -> List[Node]:
        return [n for n in self if n.category == category]

    # -- duplication (import_graph_def analogue) -----------------------------

    def duplicate(self, name: Optional[str] = None,
                  input_map: Optional[Mapping[str, str]] = None,
                  node_hook: Optional[Callable[["Graph", Node], Optional[str]]] = None,
                  ) -> "Graph":
        """Copy this graph node-for-node into a new graph.

        Operator instances are shared between the original and the duplicate
        (weights are not copied), mirroring ``import_graph_def``.

        Parameters
        ----------
        input_map:
            Optional mapping ``{original_node_name: replacement_node_name}``
            applied when rewiring inputs in the duplicate.  The replacement
            name must already exist in the duplicate when it is needed.
        node_hook:
            Optional callback invoked *after* each node is copied; it receives
            the new graph and the just-copied node (in the new graph) and may
            return a replacement node name to be used by downstream consumers
            instead of the copied node — this is exactly how Ranger splices
            range-restriction operators in between existing nodes.
        """
        new = Graph(name=name or f"{self.name}_copy")
        remap: Dict[str, str] = dict(input_map or {})
        for node in self:
            wired_inputs = tuple(remap.get(i, i) for i in node.inputs)
            for inp in wired_inputs:
                if inp not in new:
                    raise GraphError(
                        f"duplicate(): input '{inp}' of node '{node.name}' is "
                        f"not present in the new graph")
            new.add(node.name, node.op, wired_inputs)
            copied = new.node(node.name)
            if node_hook is not None:
                replacement = node_hook(new, copied)
                if replacement is not None:
                    if replacement not in new:
                        raise GraphError(
                            f"node_hook returned unknown replacement "
                            f"'{replacement}' for node '{node.name}'")
                    remap[node.name] = replacement
        for out in self.outputs:
            new.mark_output(remap.get(out, out))
        return new

    # -- summaries -----------------------------------------------------------

    def summary(self) -> str:
        """Human-readable, one-line-per-node description of the graph."""
        lines = [f"Graph '{self.name}': {len(self)} nodes, "
                 f"{self.num_parameters()} parameters"]
        for node in self:
            inputs = ", ".join(node.inputs) if node.inputs else "-"
            lines.append(f"  {node.name:40s} {type(node.op).__name__:20s} "
                         f"<- {inputs}")
        return "\n".join(lines)
