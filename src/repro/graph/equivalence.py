"""Execution-equivalence modes and ULP-distance helpers.

The incremental replay engine (``Executor.run_from``) is **bit-exact**: a
partially re-executed trial produces the same output bits as a full faulty
run.  The batched replay engine (``Executor.run_from_batched``) cannot make
that promise — BLAS kernels pick different blocking for different batch
shapes, so the same row computed at batch size ``B`` can differ from its
batch-1 result in the last few ULPs.  Batched results therefore carry an
explicit :class:`EquivalenceMode` describing the guarantee they satisfy:

``EXACT``
    Bit-for-bit identical to a batch-1 full re-execution.  The default
    incremental campaign path and every ``batch_trials=1`` run satisfy this.

``ULP_TOLERANT``
    Each output row is the correctly-rounded-modulo-reassociation result of
    the same computation: it may differ from the batch-1 bits by at most a
    few ULPs of float64.  SDC verdicts (argmax / threshold comparisons) are
    unaffected in practice — the equivalence suite asserts verdict-set
    agreement rather than bit identity — and tolerant results report the
    maximum deviation actually observed so the claim is auditable.
"""

from __future__ import annotations

import enum
from typing import Union

import numpy as np

#: Default row-masking tolerance of the batched replay engine, in float64
#: ULPs.  Measured batch-shape reassociation noise is a handful of ULPs; the
#: smallest corruption any bit-flip fault model can produce (one LSB of a
#: Q14.2 / Q22.10 grid, or one float32 mantissa bit) is many orders of
#: magnitude larger, so this threshold separates the two cleanly.
DEFAULT_MAX_ULPS = 32


class EquivalenceMode(enum.Enum):
    """The numerical guarantee a replayed result satisfies."""

    EXACT = "exact"
    ULP_TOLERANT = "ulp_tolerant"

    @classmethod
    def coerce(cls, value: Union["EquivalenceMode", str, None],
               default: "EquivalenceMode") -> "EquivalenceMode":
        """Accept an enum member, its string value, or ``None`` (→ default)."""
        if value is None:
            return default
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ValueError(
                f"unknown equivalence mode {value!r}; expected one of "
                f"{[m.value for m in cls]}") from None


def _ordered_keys(values: np.ndarray) -> np.ndarray:
    """Map float64 bit patterns to monotonically ordered uint64 keys.

    The standard radix-sort trick: flip all bits of negative floats and the
    sign bit of non-negative ones, so the integer order of the keys matches
    the numeric order of the floats (with -0.0 and +0.0 one key apart) and
    the key difference between two floats is their distance in ULPs.
    """
    bits = np.ascontiguousarray(values, dtype=np.float64).view(np.uint64)
    negative = (bits >> np.uint64(63)).astype(bool)
    return np.where(negative, ~bits, bits | np.uint64(1 << 63))


def ulp_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise distance between two float64 arrays, in ULPs.

    NaNs never compare close: a NaN against anything (including another
    NaN of a different payload) yields a huge distance, keeping NaN-carrying
    rows dirty during batched change propagation.  Identical bit patterns
    (including NaNs with equal payloads) yield distance 0.
    """
    a = np.ascontiguousarray(np.broadcast_arrays(
        np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64))[0])
    b = np.ascontiguousarray(np.broadcast_to(
        np.asarray(b, dtype=np.float64), a.shape))
    ka, kb = _ordered_keys(a), _ordered_keys(b)
    dist = np.where(ka > kb, ka - kb, kb - ka).astype(np.float64)
    # Any comparison involving a NaN is unbounded-far unless bit-identical.
    nan_mask = np.isnan(a) | np.isnan(b)
    if nan_mask.any():
        same_bits = a.view(np.uint64) == b.view(np.uint64)
        dist = np.where(nan_mask, np.where(same_bits, 0.0, np.inf), dist)
    return dist


def max_row_ulp_distance(rows: np.ndarray, reference: np.ndarray
                         ) -> np.ndarray:
    """Per-row maximum ULP distance between ``rows`` (B, ...) and a
    broadcastable ``reference`` (1, ...) of the same trailing shape."""
    rows = np.asarray(rows)
    dist = ulp_distance(rows, np.broadcast_to(reference, rows.shape))
    if rows.shape[0] == 0:
        return np.zeros(0, dtype=np.float64)
    return dist.reshape(rows.shape[0], -1).max(axis=1)
