"""Dataflow-graph substrate (the TensorFlow-analogue the paper instruments)."""

from .graph import Graph, GraphError, Node
from .equivalence import (
    DEFAULT_MAX_ULPS,
    EquivalenceMode,
    max_row_ulp_distance,
    ulp_distance,
)
from .executor import (
    BatchedExecutionResult,
    DTypePolicy,
    ExecutionResult,
    Executor,
    Observer,
    OutputHook,
    bit_identical,
    set_training_mode,
)
from .builder import GraphBuilder

__all__ = [
    "BatchedExecutionResult",
    "DEFAULT_MAX_ULPS",
    "DTypePolicy",
    "EquivalenceMode",
    "ExecutionResult",
    "Executor",
    "Graph",
    "GraphBuilder",
    "GraphError",
    "Node",
    "Observer",
    "OutputHook",
    "bit_identical",
    "max_row_ulp_distance",
    "set_training_mode",
    "ulp_distance",
]
