"""Dataflow-graph substrate (the TensorFlow-analogue the paper instruments)."""

from .graph import Graph, GraphError, Node
from .executor import (
    DTypePolicy,
    ExecutionResult,
    Executor,
    Observer,
    OutputHook,
    bit_identical,
    set_training_mode,
)
from .builder import GraphBuilder

__all__ = [
    "DTypePolicy",
    "ExecutionResult",
    "Executor",
    "Graph",
    "GraphBuilder",
    "GraphError",
    "Node",
    "Observer",
    "OutputHook",
    "bit_identical",
    "set_training_mode",
]
