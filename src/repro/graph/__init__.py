"""Dataflow-graph substrate (the TensorFlow-analogue the paper instruments)."""

from .graph import Graph, GraphError, Node
from .equivalence import (
    DEFAULT_MAX_ULPS,
    EquivalenceMode,
    max_row_ulp_distance,
    ulp_distance,
)
from .executor import (
    BatchedExecutionResult,
    DTypePolicy,
    ExecutionResult,
    Executor,
    Observer,
    OutputHook,
    bit_identical,
    set_training_mode,
)
from .builder import GraphBuilder
from .sparse import (
    SPARSE_DENSITY_THRESHOLD,
    SPARSE_MIN_GAIN_ELEMENTS,
    SparseRows,
    bitwise_neq,
    gather_param,
    merge_sorted_triplets,
)

__all__ = [
    "BatchedExecutionResult",
    "DEFAULT_MAX_ULPS",
    "DTypePolicy",
    "EquivalenceMode",
    "ExecutionResult",
    "Executor",
    "Graph",
    "GraphBuilder",
    "GraphError",
    "Node",
    "Observer",
    "OutputHook",
    "SPARSE_DENSITY_THRESHOLD",
    "SPARSE_MIN_GAIN_ELEMENTS",
    "SparseRows",
    "bit_identical",
    "bitwise_neq",
    "gather_param",
    "max_row_ulp_distance",
    "merge_sorted_triplets",
    "set_training_mode",
    "ulp_distance",
]
