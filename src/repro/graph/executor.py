"""Graph executor: forward evaluation, hooks, dtype policies, backprop.

The executor is the single place where all of the reproduction's cross-cutting
concerns meet:

* the **fault injector** registers an output hook that flips bits in exactly
  one operator's output during one inference;
* the **profiler** registers an observation hook to collect activation ranges
  for Ranger's restriction bounds;
* the **fixed-point datatype policy** quantizes every operator output to the
  configured Qm.n format, reproducing the paper's 32-bit / 16-bit fixed-point
  evaluation configurations;
* the **trainer** runs forward with caching and then backpropagates through
  the recorded tape.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Set, Tuple, Union)

import numpy as np

from ..ops.base import Array, Operator, Placeholder, Variable
from .equivalence import (DEFAULT_MAX_ULPS, EquivalenceMode,
                          max_row_ulp_distance)
from .graph import Graph, GraphError, Node
from .sparse import (SPARSE_DENSITY_THRESHOLD, SPARSE_MIN_GAIN_ELEMENTS,
                     SparseRows, bitwise_neq,
                     gather_param, merge_sorted_triplets)

#: An output hook receives (node, output) and returns a possibly-modified
#: output array.  Hooks run in registration order after the operator executes.
OutputHook = Callable[[Node, Array], Array]

#: An observer receives (node, output) and returns nothing.  Observers run
#: after all output hooks.
Observer = Callable[[Node, Array], None]

#: Smallest per-row element count for which batched replay runs the full
#: three-tier row-divergence screen.  Masked faults die at the big early
#: activations, where the tiered screen earns its dispatch cost; below the
#: floor a single exact-equality comparison terminates masked rows instead
#: (a conservative subset: a row within ULP tolerance but not bit-equal
#: just stays dirty, carrying its exact value).  Correctness is unaffected
#: either way — snapping a row back to golden only ever replaces a value
#: proved (bit- or ULP-) equal to golden.
DIVERGENCE_CHECK_MIN_ELEMENTS = 8192

#: Adaptive back-off for the full divergence screen: once this many
#: consecutive checked nodes mask nothing (the steady state of
#: skip-connection graphs, whose residual adds keep every surviving row
#: alive to the output), the screen runs only every
#: ``DIVERGENCE_BACKOFF_STRIDE``-th big node until a mask is seen again.
#: A late-masking row then terminates within a stride's worth of extra
#: node evaluations — and on mask-heavy configurations the counter keeps
#: resetting, so the screen effectively never backs off.
DIVERGENCE_BACKOFF_NODES = 3
DIVERGENCE_BACKOFF_STRIDE = 6


class DTypePolicy:
    """Numeric policy applied to every operator output.

    The default policy is plain float64 (no transformation).  The fixed-point
    policies in :mod:`repro.quantization` subclass this to round every value
    to a Qm.n grid with saturation, which is how the paper's "32-bit
    fixed-point datatype" configuration is modelled.
    """

    name = "float64"

    #: Whether :meth:`apply` is an exact per-element map (the output bits of
    #: element ``i`` depend only on element ``i``'s input bits and the node)
    #: — required for sparse delta propagation.  The identity policy
    #: trivially qualifies, as does per-element fixed-point quantization;
    #: a policy whose transform couples elements must override with False,
    #: which makes the replay engine densify sparse seeds up front.
    elementwise_exact = True

    def apply(self, node: Node, value: Array) -> Array:
        return value


class BufferArena:
    """Preallocated per-(node, batch-width) output buffers for trial replay.

    Every replayed trial used to allocate a fresh output array per
    re-evaluated node (plus one per assembled batched input); across a
    campaign that is millions of allocator round-trips for buffers of
    identical shape.  The arena hands each (node, batch-width) site one
    float64 buffer, reused across trials and waves.

    Safety contract (why reuse cannot change a result byte):

    * operators write into a buffer only through the audited
      :meth:`~repro.ops.base.Operator.forward_out` / dtype-policy ``out=``
      paths, which perform the exact same IEEE-754 computation as the
      allocating paths;
    * a buffer is never aliased with an operator's inputs — buffers are
      keyed per node, and a DAG node is not its own input;
    * the replay engines consume each buffer before the same site can be
      re-filled (the batched commit copies surviving rows out; the
      incremental path copies requested outputs on exit), and golden
      caches are only ever *read* — the copy-on-entry guarantee: cached
      (possibly shared-memory-mapped, read-only) activations are copied
      before any mutation, never written through.

    Buffers are created on first use and replaced when a site's shape or
    dtype changes; :meth:`owns` identifies escaping arrays (including
    views carved out of a buffer) so callers can copy them out.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple, Array] = {}
        self._owned: Set[int] = set()
        self.hits = 0
        self.allocations = 0

    def buffer(self, key: Tuple, shape: Tuple[int, ...],
               dtype=np.float64) -> Array:
        buf = self._buffers.get(key)
        if buf is not None and buf.shape == shape and buf.dtype == dtype:
            self.hits += 1
            return buf
        if buf is not None:
            self._owned.discard(id(buf))
        buf = np.empty(shape, dtype=dtype)
        self._buffers[key] = buf
        self._owned.add(id(buf))
        self.allocations += 1
        return buf

    def owns(self, array: Array) -> bool:
        """Whether ``array`` is (a view into) an arena buffer.

        Buffers are held by the arena for its lifetime, so ``id`` identity
        is stable; the base chain catches views (reshape/identity outputs)
        carved out of a buffer.
        """
        seen = 0
        while array is not None and seen < 8:
            if id(array) in self._owned:
                return True
            array = getattr(array, "base", None)
            seen += 1
        return False

    def nbytes(self) -> int:
        return sum(buf.nbytes for buf in self._buffers.values())

    def stats(self) -> Dict[str, int]:
        return {"buffers": len(self._buffers), "bytes": self.nbytes(),
                "hits": self.hits, "allocations": self.allocations}


def bit_identical(a: Array, b: Array) -> bool:
    """True when two arrays hold exactly the same bits.

    Raw-byte comparison, deliberately stricter than ``==``: NaNs with equal
    payloads compare equal (deterministic operators on identical bits give
    identical bits downstream), while ``-0.0`` and ``0.0`` compare unequal
    (they are different bit patterns).  Both directions are safe for change
    propagation, and a single memcmp is cheaper than an elementwise pass.
    """
    if a is b:
        return True
    a = np.asarray(a)
    b = np.asarray(b)
    return (a.shape == b.shape and a.dtype == b.dtype
            and a.tobytes() == b.tobytes())


@dataclass
class ExecutionResult:
    """Outputs of one forward pass plus the cached per-node values.

    ``recomputed`` is populated by partial re-execution
    (:meth:`Executor.run_from`) with the names of the nodes that were
    actually re-evaluated; everything else came from the supplied cache.

    Sparse-replay accounting (zero outside the sparse path):
    ``elements_evaluated`` counts output elements actually computed,
    ``elements_full`` what dense evaluation of the same node visits would
    have computed, and ``dense_fallback_nodes`` how many node evaluations
    scattered a sparse input into a dense copy (the densification
    frontier).  ``sparse_pending`` maps nodes whose entry in ``values``
    still holds the *golden* array to their (indices, values) delta — the
    fault's effect never needed a dense copy there; requested outputs are
    always materialized and never appear in it.
    """

    outputs: Dict[str, Array]
    values: Dict[str, Array]
    recomputed: Optional[Set[str]] = None
    elements_evaluated: int = 0
    elements_full: int = 0
    dense_fallback_nodes: int = 0
    sparse_pending: Dict[str, Tuple[Array, Array]] = field(default_factory=dict)

    def output(self, name: Optional[str] = None) -> Array:
        if name is not None:
            return self.outputs[name]
        if len(self.outputs) != 1:
            raise KeyError(
                f"graph has {len(self.outputs)} outputs; specify which one")
        return next(iter(self.outputs.values()))


@dataclass
class BatchedExecutionResult:
    """Outputs of one batched partial re-execution (B trials in one pass).

    ``outputs`` maps each requested node to a stacked ``(B, ...)`` array —
    row ``i`` is trial ``i``'s output.  ``recomputed`` is the set of nodes
    whose operators were re-evaluated at least once; ``rows_evaluated``
    counts *node-row* evaluations (the batched analogue of the incremental
    path's per-node count: re-evaluating one node for 3 of B rows adds 3).
    ``max_ulp_deviation`` is the largest ULP distance observed between a
    row that change propagation declared *clean* and its batch-1 golden
    value — the tolerance the run actually consumed, reported alongside
    ULP_TOLERANT results so the equivalence claim is auditable.

    ``elements_evaluated`` / ``elements_full`` / ``dense_fallback_nodes``
    mirror :class:`ExecutionResult`'s sparse accounting, summed over rows
    (zero outside the sparse path).
    """

    outputs: Dict[str, Array]
    recomputed: Set[str] = field(default_factory=set)
    rows_evaluated: int = 0
    max_ulp_deviation: float = 0.0
    elements_evaluated: int = 0
    elements_full: int = 0
    dense_fallback_nodes: int = 0

    def output(self, name: Optional[str] = None) -> Array:
        if name is not None:
            return self.outputs[name]
        if len(self.outputs) != 1:
            raise KeyError(
                f"batched result has {len(self.outputs)} outputs; "
                f"specify which one")
        return next(iter(self.outputs.values()))


class Executor:
    """Evaluates a :class:`~repro.graph.graph.Graph`.

    Parameters
    ----------
    graph:
        The graph to execute.
    dtype_policy:
        Numeric policy applied to every operator output (see
        :class:`DTypePolicy`).
    """

    def __init__(self, graph: Graph,
                 dtype_policy: Optional[DTypePolicy] = None) -> None:
        self.graph = graph
        self.dtype_policy = dtype_policy or DTypePolicy()
        self._output_hooks: List[OutputHook] = []
        self._observers: List[Observer] = []
        #: Optional :class:`BufferArena` for the replay paths
        #: (:meth:`run_from` / :meth:`run_from_batched`); campaigns attach
        #: one so replays reuse per-(node, batch-width) output buffers.
        #: Dynamically gated off while output hooks or observers are
        #: registered (they may retain references to outputs) — and never
        #: used by :meth:`run`, whose values become long-lived golden
        #: caches.
        self.arena: Optional[BufferArena] = None
        #: Whether the dtype policy's ``apply`` accepts an ``out=`` buffer
        #: (subclasses predating the arena keep the two-argument form).
        self._policy_takes_out = "out" in inspect.signature(
            self.dtype_policy.apply).parameters
        #: Cost-model floor for the sparse delta path: a node evaluation only
        #: goes sparse when the dense element work it displaces (dirty rows x
        #: row size) reaches this many elements — below it, the fixed sparse
        #: bookkeeping outweighs the overhead-dominated dense evaluation it
        #: replaces.  Purely a representation choice: results are bit-identical
        #: either way.  Set to 0 to force sparse wherever representable.
        self.sparse_min_gain_elements = SPARSE_MIN_GAIN_ELEMENTS

    # -- hook management -----------------------------------------------------

    def add_output_hook(self, hook: OutputHook) -> None:
        self._output_hooks.append(hook)

    def remove_output_hook(self, hook: OutputHook) -> None:
        self._output_hooks.remove(hook)

    def add_observer(self, observer: Observer) -> None:
        self._observers.append(observer)

    def remove_observer(self, observer: Observer) -> None:
        self._observers.remove(observer)

    def clear_hooks(self) -> None:
        self._output_hooks.clear()
        self._observers.clear()

    # -- execution -------------------------------------------------------------

    def _evaluate(self, node: Node, out: Array,
                  out_buffer: Optional[Array] = None) -> Array:
        """Apply the dtype policy, output hooks and observers to one output.

        ``out_buffer`` (arena replay only): a buffer the dtype policy may
        write its result into — the same elementwise pipeline, just
        allocation-free; ``out`` may already *be* the buffer when the
        operator wrote in place.
        """
        if out_buffer is not None and self._policy_takes_out:
            out = self.dtype_policy.apply(node, out, out=out_buffer)
        else:
            out = self.dtype_policy.apply(node, out)
        for hook in self._output_hooks:
            out = hook(node, out)
        for observer in self._observers:
            observer(node, out)
        return out

    def _arena_buffer(self, key: Tuple, cached: Optional[Array],
                      count: Optional[int]) -> Optional[Array]:
        """The arena output buffer for one replay site, or ``None``.

        The expected output shape/dtype comes from the node's cached
        golden value (``count`` rows of its row shape for batched sites);
        sites without a float64 golden reference stay on the allocating
        path.  Hooks/observers disable the arena wholesale — they may
        retain output references across trials.
        """
        if (self.arena is None or self._output_hooks or self._observers
                or cached is None):
            return None
        cached = np.asarray(cached)
        if cached.dtype != np.float64:
            return None
        shape = (cached.shape if count is None
                 else (count,) + cached.shape[1:])
        return self.arena.buffer(key, shape)

    # -- sparse delta machinery ------------------------------------------------

    def _sparse_ready(self) -> bool:
        """Whether sparse delta propagation preserves this executor's
        semantics: hooks and observers expect to see full dense outputs at
        every re-evaluated node, and the dtype policy must be an exact
        per-element map."""
        return (not self._output_hooks and not self._observers
                and bool(getattr(self.dtype_policy, "elementwise_exact",
                                 False)))

    def _sparse_node_eligible(self, node: Node,
                              cached_values: Mapping[str, Array]) -> bool:
        """Whether ``node`` can consume a sparse delta bit-exactly.

        Requires the elementwise-exactness contract, a float64 golden cache
        for the node and each batch-carrying input, matching row shapes for
        ``"value"`` operators (no cross-row broadcasting of dirty inputs),
        and broadcastable batch-invariant parameters.
        """
        op = node.op
        if not op.elementwise_exact or isinstance(op, Placeholder):
            return False
        cached_out = cached_values.get(node.name)
        if cached_out is None:
            return False
        out = np.asarray(cached_out)
        if out.dtype != np.float64 or out.ndim < 1:
            return False
        out_row_shape = out.shape[1:]
        for inp in node.inputs:
            if inp not in cached_values:
                return False
            iop = self.graph.node(inp).op
            ival = np.asarray(cached_values[inp])
            if iop.batch_axis is None:
                if op.sparse_kind == "value":
                    try:
                        np.broadcast_to(ival, out_row_shape)
                    except ValueError:
                        return False
                continue
            if ival.dtype != np.float64:
                return False
            if op.sparse_kind == "value" and ival.shape[1:] != out_row_shape:
                return False
        return True

    def _sparse_eval_node(self, node: Node,
                          cached_values: Mapping[str, Array],
                          dirty_parts: Mapping[int, Tuple[Array, Array, Array]],
                          ) -> Tuple[Array, Array, Array]:
        """Apply one elementwise-exact operator to just the changed elements.

        ``dirty_parts`` maps input *positions* to (rows, indices, values)
        triplets — each input's delta relative to its golden cache, sorted
        by (row, index), restricted to the rows being evaluated.  Returns
        the node's output delta as a (rows, indices, values) triplet in the
        same order, with the dtype policy applied and *before* retirement
        of elements that landed back on golden bits.
        """
        op = node.op
        out_row_shape = np.asarray(cached_values[node.name]).shape[1:]
        row_size = int(np.prod(out_row_shape, dtype=np.int64))
        if op.sparse_kind == "remap":
            # Values pass through bit-unchanged; only positions move.
            input_row_shapes = [np.asarray(cached_values[i]).shape[1:]
                                for i in node.inputs]
            parts = []
            for pos in sorted(dirty_parts):
                prows, pidx, pvals = dirty_parts[pos]
                mapped = np.asarray(
                    op.sparse_remap(pos, pidx, input_row_shapes,
                                    out_row_shape), dtype=np.int64)
                parts.append((prows, mapped, pvals))
            rows, out_idx, out_vals = merge_sorted_triplets(parts)
            # The dense path applies the dtype policy to reshape/concat
            # outputs too; on already-policy-processed values it is
            # idempotent, so this mirrors it bit-for-bit.
            out_vals = np.asarray(
                self.dtype_policy.apply(node, np.asarray(out_vals,
                                                         dtype=np.float64)),
                dtype=np.float64)
        else:
            parts = [dirty_parts[pos] for pos in sorted(dirty_parts)]
            if len(parts) == 1:
                rows, out_idx = parts[0][0], parts[0][1]
            else:
                # Union of the inputs' dirty positions (an output element
                # changes if any input element feeding it changed).
                all_key = np.concatenate(
                    [p[0] * row_size + p[1] for p in parts])
                union_key = np.unique(all_key)
                rows = union_key // row_size
                out_idx = union_key % row_size
            key = rows * row_size + out_idx
            args: List[Array] = []
            for pos, inp in enumerate(node.inputs):
                iop = self.graph.node(inp).op
                ival = np.asarray(cached_values[inp])
                if iop.batch_axis is None:
                    # Shared parameter: sample it through the same broadcast
                    # the dense pass applies (rows all see the same values).
                    args.append(gather_param(ival, out_row_shape, out_idx))
                    continue
                # Batch-carrying input: golden values at the union
                # positions, overlaid with this input's own delta.
                arg = ival.reshape(-1)[out_idx]
                part = dirty_parts.get(pos)
                if part is not None:
                    prows, pidx, pvals = part
                    where = np.searchsorted(key, prows * row_size + pidx)
                    arg[where] = pvals
                args.append(arg)
            out_vals = np.asarray(op.sparse_forward(out_idx, *args),
                                  dtype=np.float64)
            out_vals = np.asarray(
                self.dtype_policy.apply(node, out_vals), dtype=np.float64)
        return rows, out_idx, out_vals

    def run(self, feed: Optional[Mapping[str, Array]] = None,
            outputs: Optional[Sequence[str]] = None,
            prune: bool = True) -> ExecutionResult:
        """Run a forward pass.

        Parameters
        ----------
        feed:
            Mapping from placeholder node names to input arrays.
        outputs:
            Node names to report; defaults to the graph's marked outputs.
        prune:
            When True (default), only the ancestor set of the requested
            outputs is evaluated — nodes the outputs do not depend on are
            skipped entirely (they are absent from ``result.values`` and
            hooks/observers never see them).  Pass False to force the old
            whole-graph evaluation.
        """
        feed = dict(feed or {})
        requested = list(outputs) if outputs is not None else list(self.graph.outputs)
        if not requested:
            raise GraphError("graph has no outputs and none were requested")
        missing = [name for name in requested if name not in self.graph]
        if missing:
            raise GraphError(f"requested outputs not in graph: {missing}")
        needed = self.graph.ancestors(requested) if prune else None
        values: Dict[str, Array] = {}

        for node in self.graph:
            if needed is not None and node.name not in needed:
                continue
            if isinstance(node.op, Placeholder):
                key = node.name
                if key not in feed:
                    raise GraphError(
                        f"no value fed for placeholder '{node.name}'")
                out = np.asarray(feed[key], dtype=np.float64)
            else:
                args = [values[i] for i in node.inputs]
                out = node.op.forward(*args)
            values[node.name] = self._evaluate(node, out)

        return ExecutionResult(
            outputs={name: values[name] for name in requested},
            values=values,
        )

    def run_from(self, cached_values: Mapping[str, Array],
                 dirty: Union[str, Iterable[str]] = (),
                 outputs: Optional[Sequence[str]] = None,
                 feed: Optional[Mapping[str, Array]] = None,
                 dirty_values: Optional[Mapping[str, Array]] = None,
                 dirty_deltas: Optional[
                     Mapping[str, Tuple[Array, Array]]] = None,
                 ) -> ExecutionResult:
        """Partial re-execution from a per-node activation cache.

        Resumes a forward pass from ``cached_values`` (the ``values`` of a
        previous :meth:`run` over the same graph), re-evaluating only the
        downstream cone of the dirty set that the requested outputs depend
        on.  Everything upstream keeps its cached value bit-for-bit, which
        is what makes fault-injection campaigns cheap: a fault at node *k*
        can only perturb descendants of *k*.

        The dirty set is seeded two ways:

        * ``dirty`` — node names whose operators must be *re-evaluated*
          (e.g. a variable whose weights changed);
        * ``dirty_values`` — node name → replacement output.  The value is
          installed as-is, **without** re-running the operator or applying
          the dtype policy / hooks (it is taken to be a final, already
          policy-processed value).  This is how the fault injector swaps a
          corrupted copy of a cached activation in for free instead of
          paying for the fault node's forward pass again.

        Re-execution propagates *change* rather than mere reachability: a
        re-evaluated node whose output is bit-identical to its cached value
        (a fault squashed by a ReLU, a max-pool, or a Ranger clip) stops
        dirtying its consumers, and the pass terminates early once no dirty
        value remains — so the result is bit-identical to a full run while
        often touching only a handful of nodes.

        The dtype policy, output hooks and observers are applied to every
        re-evaluated node exactly as in :meth:`run`; cached nodes already
        carry their policy-processed values and are not revisited.  Note
        that non-deterministic operators (e.g. the ``"random"``
        out-of-bound policy) draw fresh randomness when re-evaluated, just
        as they would in any fresh full run.

        Parameters
        ----------
        cached_values:
            Node-name → activation mapping from a prior fault-free run.
        dirty:
            Node name(s) whose operators must be re-evaluated.
        outputs:
            Node names to report; defaults to the graph's marked outputs.
        feed:
            Only needed when a placeholder itself is marked dirty.
        dirty_values:
            Node name → replacement output installed without re-evaluation.
        dirty_deltas:
            Node name → ``(indices, values)`` sparse replacement: the
            node's output equals its cached golden value except at the
            C-order flat ``indices`` (strictly increasing), where it holds
            ``values`` (final, already policy-processed — exactly the
            ``dirty_values`` contract, expressed sparsely).  The delta is
            carried through elementwise-exact consumers without ever
            materializing a dense copy, bit-identical to installing the
            equivalent dense override; the first non-elementwise consumer
            (or a hook/observer/non-elementwise dtype policy) densifies it.
        """
        feed = dict(feed or {})
        requested = list(outputs) if outputs is not None else list(self.graph.outputs)
        if not requested:
            raise GraphError("graph has no outputs and none were requested")
        overrides = dict(dirty_values or {})
        deltas: Dict[str, Tuple[Array, Array]] = {}
        for name, (idx, vals) in (dirty_deltas or {}).items():
            if name in overrides:
                raise GraphError(
                    f"'{name}' appears in both dirty_values and dirty_deltas")
            deltas[name] = (np.asarray(idx, dtype=np.int64),
                            np.asarray(vals, dtype=np.float64))
        reeval_seeds = ({dirty} if isinstance(dirty, str) else set(dirty))
        reeval_seeds -= set(overrides)
        reeval_seeds -= set(deltas)
        seeds = reeval_seeds | set(overrides) | set(deltas)
        for name in seeds:
            if name not in self.graph:
                raise GraphError(f"unknown dirty node '{name}'")

        sparse_active = bool(deltas) and self._sparse_ready()
        if deltas and not sparse_active:
            # Hooks/observers or a non-elementwise dtype policy are active:
            # densify the sparse seeds into ordinary overrides up front
            # (bit-identical by construction) and run the dense path.
            for name, (idx, vals) in deltas.items():
                cached = cached_values.get(name)
                if cached is None:
                    raise GraphError(
                        f"run_from(): sparse delta at '{name}' requires a "
                        f"cached golden value")
                dense = np.array(cached)
                dense.reshape(-1)[idx] = vals
                overrides[name] = dense
            deltas = {}

        values: Dict[str, Array] = dict(cached_values)
        recomputed: Set[str] = set()
        live_dirty: Set[str] = set()
        # Nodes whose values[] entry is stale golden, the real change held
        # sparsely as (indices, values); and nodes whose values[] entry is
        # fresh dense but that also carry a delta annotation for sparse
        # consumers (re-sparsification after a densifying operator).
        sparse_pending: Dict[str, Tuple[Array, Array]] = {}
        sparse_annot: Dict[str, Tuple[Array, Array]] = {}
        elements_evaluated = 0
        elements_full = 0
        dense_fallbacks = 0

        dirty_overrides: List[str] = []
        for name, value in overrides.items():
            values[name] = value
            cached = cached_values.get(name)
            if cached is None or not bit_identical(value, cached):
                live_dirty.add(name)
                dirty_overrides.append(name)
        for name, (idx, vals) in deltas.items():
            cached = cached_values.get(name)
            if cached is None:
                raise GraphError(
                    f"run_from(): sparse delta at '{name}' requires a "
                    f"cached golden value")
            golden = np.ascontiguousarray(cached)
            if idx.size and (int(idx[0]) < 0 or int(idx[-1]) >= golden.size
                             or not bool(np.all(np.diff(idx) > 0))):
                raise GraphError(
                    f"run_from(): sparse delta indices for '{name}' must be "
                    f"strictly increasing and within [0, {golden.size})")
            if golden.dtype == np.float64:
                # Prune delta elements that landed back on golden bits —
                # the per-element analogue of the override bit_identical
                # check above.
                keep = bitwise_neq(vals, golden.reshape(-1)[idx])
                if not keep.all():
                    idx, vals = idx[keep], vals[keep]
            if idx.size:
                live_dirty.add(name)
                dirty_overrides.append(name)
                sparse_pending[name] = (idx, vals)

        if not seeds or (not live_dirty and not reeval_seeds):
            # Nothing can change: every requested output is cached.
            missing = [name for name in requested if name not in values]
            if missing:
                raise GraphError(
                    f"run_from(): requested outputs not in the cache: "
                    f"{missing}")
            return ExecutionResult(
                outputs={name: values[name] for name in requested},
                values=values, recomputed=recomputed)

        cone = self.graph.downstream(seeds)
        needed = self.graph.ancestors(requested)
        recompute = (cone & needed) - set(overrides) - set(deltas)
        pending_seeds = len(reeval_seeds & recompute)
        topo = self.graph.topo_index()

        # A dirty value stops mattering once its last consumer inside the
        # recompute set has been visited; tracking that horizon lets the
        # loop break as soon as no remaining node can see a dirty input
        # (e.g. a fault masked by the first ReLU after the fault site).
        def influence_horizon(name: str) -> int:
            return max((topo[c] for c in self.graph.successors(name)
                        if c in recompute), default=-1)

        last_dirty_use = max((influence_horizon(name)
                              for name in dirty_overrides), default=-1)

        def materialize(name: str, count_fallback: bool = True) -> None:
            """Scatter a pending sparse delta into a dense copy of the
            golden cache (the densification frontier)."""
            delta = sparse_pending.pop(name, None)
            if delta is None:
                return
            nonlocal dense_fallbacks
            idx, vals = delta
            dense = np.array(cached_values[name])
            dense.reshape(-1)[idx] = vals
            values[name] = dense
            sparse_annot[name] = delta
            if count_fallback:
                dense_fallbacks += 1

        for name in sorted(recompute, key=topo.__getitem__):
            position = topo[name]
            if not pending_seeds and position > last_dirty_use:
                break  # no remaining node can have a dirty input
            node = self.graph.node(name)
            is_seed = name in reeval_seeds
            dirty_inputs = [i for i in node.inputs if i in live_dirty]
            if not is_seed and not dirty_inputs:
                continue  # every input is clean: the cached value stands
            if (sparse_active and not is_seed
                    and all(i in sparse_pending or i in sparse_annot
                            for i in dirty_inputs)
                    and self._sparse_node_eligible(node, cached_values)):
                # Sparse fast path: every dirty input carries a delta and
                # the operator is elementwise-exact — apply it to just the
                # changed elements on top of the golden cache.
                row_size = int(np.asarray(cached_values[name]).size)
                dirty_parts: Dict[int, Tuple[Array, Array, Array]] = {}
                total_nnz = 0
                for pos, inp in enumerate(node.inputs):
                    if inp not in live_dirty:
                        continue
                    delta = sparse_pending.get(inp) or sparse_annot.get(inp)
                    if delta is None:
                        continue
                    idx, vals = delta
                    dirty_parts[pos] = (
                        np.zeros(idx.size, dtype=np.int64), idx, vals)
                    total_nnz += idx.size
                if (row_size >= self.sparse_min_gain_elements
                        and total_nnz <= SPARSE_DENSITY_THRESHOLD * row_size):
                    rows, idx, vals = self._sparse_eval_node(
                        node, cached_values, dirty_parts)
                    golden_flat = np.ascontiguousarray(
                        cached_values[name]).reshape(-1)
                    keep = bitwise_neq(vals, golden_flat[idx])
                    recomputed.add(name)
                    elements_evaluated += int(idx.size)
                    elements_full += row_size
                    if keep.any():
                        if not keep.all():
                            idx, vals = idx[keep], vals[keep]
                        sparse_pending[name] = (idx, vals)
                        live_dirty.add(name)
                        last_dirty_use = max(last_dirty_use,
                                             influence_horizon(name))
                    else:
                        # Masked fault, detected with an O(changed)
                        # comparison: the cached value stands.
                        live_dirty.discard(name)
                    continue
                # Too dense for the sparse path, or too small a row for the
                # bookkeeping to pay for itself: fall through to a dense
                # re-evaluation (inputs are materialized below).
            if sparse_active:
                for inp in set(node.inputs):
                    materialize(inp)
            buffer = None
            if isinstance(node.op, Placeholder):
                if name not in feed:
                    raise GraphError(
                        f"placeholder '{name}' is dirty but no value was fed")
                out = np.asarray(feed[name], dtype=np.float64)
            else:
                try:
                    args = [values[i] for i in node.inputs]
                except KeyError as exc:
                    raise GraphError(
                        f"run_from(): no cached value for input {exc} of "
                        f"node '{name}'") from None
                buffer = self._arena_buffer(name, cached_values.get(name),
                                            None)
                if buffer is not None and node.op.supports_out:
                    out = node.op.forward_out(buffer, *args)
                else:
                    out = node.op.forward(*args)
            out = self._evaluate(node, out, buffer)
            values[name] = out
            recomputed.add(name)
            if is_seed:
                pending_seeds -= 1
            if sparse_active:
                size = int(np.asarray(out).size)
                elements_evaluated += size
                elements_full += size
            cached = cached_values.get(name)
            if cached is not None and bit_identical(out, cached):
                live_dirty.discard(name)  # the change was masked
            else:
                live_dirty.add(name)
                last_dirty_use = max(last_dirty_use, influence_horizon(name))
                if (sparse_active and not node.op.elementwise_exact
                        and cached is not None):
                    self._try_resparsify(name, out, cached, sparse_annot,
                                         recompute)

        # Materialize any requested output still carried sparsely (not a
        # densification *fallback* — the caller simply asked for the dense
        # array).
        for name in requested:
            if name in sparse_pending:
                materialize(name, count_fallback=False)

        missing = [name for name in requested if name not in values]
        if missing:
            raise GraphError(
                f"run_from(): requested outputs missing from both the cache "
                f"and the recomputed cone: {missing}")
        if self.arena is not None:
            # Copy-on-exit: a requested output living in (or viewing) an
            # arena buffer would be silently overwritten by the next
            # replay; hand the caller a private copy.  Non-requested
            # ``values`` entries may still reference arena buffers — they
            # are valid until the next replay on this executor only.
            for name in requested:
                if self.arena.owns(values[name]):
                    values[name] = np.array(values[name])
        return ExecutionResult(
            outputs={name: values[name] for name in requested},
            values=values,
            recomputed=recomputed,
            elements_evaluated=elements_evaluated,
            elements_full=elements_full,
            dense_fallback_nodes=dense_fallbacks,
            sparse_pending=sparse_pending,
        )

    def _try_resparsify(self, name: str, out: Array, cached: Array,
                        sparse_annot: Dict[str, Tuple[Array, Array]],
                        recompute: Iterable[str]) -> None:
        """Annotate a freshly densified output with its sparse diff.

        After a densifying operator (conv, matmul, pooling) the diff against
        golden is often narrow again — a k-element input delta only touches
        the windows that cover it — so elementwise-exact consumers can
        resume sparse propagation (the resnet18 skip-connection case).  The
        dense value stays authoritative in ``values``; the annotation is an
        optimization hint, only created when some consumer can use it.
        """
        out_arr = np.asarray(out)
        cached_arr = np.asarray(cached)
        if (out_arr.dtype != np.float64
                or out_arr.shape != cached_arr.shape
                or out_arr.size < self.sparse_min_gain_elements
                or not any(self.graph.node(c).op.elementwise_exact
                           for c in self.graph.successors(name)
                           if c in recompute)):
            return
        diff = bitwise_neq(out_arr.reshape(-1), cached_arr.reshape(-1))
        nnz = int(np.count_nonzero(diff))
        if 0 < nnz <= SPARSE_DENSITY_THRESHOLD * out_arr.size:
            idx = np.flatnonzero(diff).astype(np.int64)
            sparse_annot[name] = (
                idx, np.ascontiguousarray(out_arr.reshape(-1)[idx]))

    # -- batched partial re-execution ------------------------------------------

    @staticmethod
    def _row_divergence(rows: Array, cached: Optional[Array],
                        threshold: float) -> Tuple[np.ndarray, float]:
        """Classify stacked rows against a batch-1 cached value.

        Returns ``(dirty, max_clean_deviation)``: a boolean mask of the rows
        whose maximum ULP distance from the cached row exceeds ``threshold``
        (all rows when no cached value exists or shapes/dtypes are not
        comparable), and the largest distance among the rows declared clean
        (the tolerance actually consumed).

        Hot path, three tiers: a strided subsample convicts the typical
        *dirty* row (a surviving fault's deviation provably exceeds any
        sane ULP threshold) without reading most of its elements; an exact
        equality pass retires the typical *clean* row (fixed-point dtype
        policies quantize masked rows back onto exactly the cached grid
        values); and only the contested remainder pays the subtract/abs/
        row-max screen, with exact ULP arithmetic for the rare rows the
        screen cannot decide.
        """
        rows = np.asarray(rows)
        count = rows.shape[0]
        if (cached is None or np.asarray(cached).dtype != rows.dtype
                or np.asarray(cached).shape[1:] != rows.shape[1:]):
            return np.ones(count, dtype=bool), 0.0
        if rows.dtype != np.float64:  # pragma: no cover - defensive
            dirty = np.array([not np.array_equal(rows[i], cached[0])
                              for i in range(count)], dtype=bool)
            return dirty, 0.0
        max_cached = float(np.abs(cached).max()) if cached.size else 0.0
        eps = np.finfo(np.float64).eps
        flat = rows.reshape(count, -1)
        flat_cached = np.asarray(cached).reshape(-1)
        elements = flat.shape[1]
        dirty = np.ones(count, dtype=bool)
        undecided = np.arange(count)
        if count > 1 and elements >= DIVERGENCE_CHECK_MIN_ELEMENTS:
            # Sampled pre-screen: a surviving fault perturbs a visible
            # fraction of a conv/norm output, so a strided subsample almost
            # always proves a dirty row dirty without reading the other
            # ~99% of its elements.  Rows the sample cannot convict (clean
            # rows, NaN samples, sub-threshold noise) fall through to the
            # exact screens below — sampling can only defer a verdict,
            # never decide one.
            stride = max(1, elements // 1024)
            speak = np.abs(flat[:, ::stride]
                           - flat_cached[::stride]).max(axis=1)
            sample_dirty = speak > threshold * eps * (max_cached + speak)
            if sample_dirty.all():
                return sample_dirty, 0.0
            undecided = np.flatnonzero(~sample_dirty)
        # Exact-equality pass: masked rows land *exactly* on the cached
        # values under fixed-point dtype policies (quantization snaps them
        # back onto the grid), so one comparison retires the typical clean
        # row with a bool temporary instead of the float subtract sweep.
        # (`==` equates -0.0 with 0.0, matching the subtract screen's
        # zero-deviation verdict; NaNs compare unequal and fall through.)
        sub = flat if len(undecided) == count else flat[undecided]
        equal = (sub == flat_cached).all(axis=1)
        dirty[undecided[equal]] = False
        contested = undecided[~equal]
        if not contested.size:
            return dirty, 0.0
        # One subtract+abs pass and a row max classify the contested rest:
        # a row whose peak deviation provably exceeds the threshold in
        # ULPs is surely dirty.  The ULP size at magnitude m is at most
        # eps*m for normal floats, and for the peak-deviation element
        # |a| <= max|cached| and |b| <= max|cached| + peak, so peak >
        # threshold * eps * (max|cached| + peak) proves the distance
        # exceeds the threshold — a real fault's deviation sits
        # astronomically above this line.  (Subnormals can be over-flagged
        # as dirty, which only forgoes masking, never correctness.)
        delta = np.abs(flat[contested] - flat_cached)
        peak = delta.max(axis=1)
        surely_dirty = peak > threshold * eps * (max_cached + peak)
        # Undecided rows: nonzero deviation below the screen (BLAS
        # reassociation noise) or NaN peaks (NaN comparisons are False on
        # both screens).  Only these pay for exact ULP distances, which
        # also treat equal-payload NaNs as distance 0.
        deviation = 0.0
        contest_open = np.flatnonzero(~surely_dirty)
        if contest_open.size:
            dist = max_row_ulp_distance(rows[contested[contest_open]],
                                        cached)
            clean = dist <= threshold
            dirty[contested[contest_open[clean]]] = False
            if clean.any():
                deviation = float(dist[clean].max())
        return dirty, deviation

    def _broadcast_cached(self, cached_values: Mapping[str, Array],
                          name: str, count: int) -> Array:
        """A cached input as the batched evaluation of ``name`` sees it.

        Batch-invariant nodes (variables, constants — ``batch_axis is
        None``) are shared by every row and passed through untouched;
        batch-carrying cached values (shape ``(1, ...)``) are broadcast to
        ``count`` rows as a zero-copy view.
        """
        try:
            value = cached_values[name]
        except KeyError:
            raise GraphError(
                f"run_from_batched(): no cached value for node "
                f"'{name}'") from None
        if self.graph.node(name).op.batch_axis is None:
            return value
        value = np.asarray(value)
        return np.broadcast_to(value, (count,) + value.shape[1:])

    def run_from_batched(self, cached_values: Mapping[str, Array],
                         dirty: Union[str, Iterable[str]] = (),
                         stacked_dirty_values: Optional[Mapping[str, Array]] = None,
                         outputs: Optional[Sequence[str]] = None,
                         feed: Optional[Mapping[str, Array]] = None,
                         equivalence: Union[EquivalenceMode, str, None] = None,
                         max_ulps: float = DEFAULT_MAX_ULPS,
                         dirty_row_masks: Optional[Mapping[str, np.ndarray]] = None,
                         dirty_row_deltas: Optional[
                             Mapping[str, SparseRows]] = None,
                         ) -> BatchedExecutionResult:
        """Replay B independent trials in one batched partial re-execution.

        The batched sibling of :meth:`run_from`: resumes from a **batch-1**
        golden activation cache, but carries a ``(B, ...)``-stacked dirty
        frontier through the fault cone so B trials that share an input pay
        for one executor pass (and one BLAS call per re-evaluated node)
        instead of B.  Cached upstream values are broadcast against the
        stacked frontier (batch-invariant weights pass through untouched —
        see :attr:`~repro.ops.base.Operator.batch_axis`), and every operator
        in the cone is audited against the batch-transparency contract
        (:attr:`~repro.ops.base.Operator.batch_transparent`); a
        batch-coupled operator (training-mode BatchNorm or Dropout, an
        axis-0 concat) raises :class:`GraphError` instead of silently
        entangling trials.

        **Cross-site batches.**  Rows need not share a fault site: with
        ``dirty_row_masks``, each stacked dirty value carries a boolean
        row-membership mask and only the masked rows *enter* the replay at
        that node — the replay then walks the **union cone** of every entry
        node, and per-row dirty tracking confines each row to its own
        site's cone (a row is only ever evaluated at nodes its own dirt
        reached; rows outside a node's cone are implicitly golden there).
        Entry nodes may lie inside each other's cones (nested cones): rows
        entering at a node take their injected value as-is — the
        stacked-dirty-value contract, unchanged — while rows that another
        entry dirtied upstream are re-evaluated *through* the node exactly
        like any other cone member.

        Change propagation is tracked **per row**: a re-evaluated node keeps
        a boolean mask of the rows that still differ from the golden cache,
        rows whose fault was masked are snapped back to their golden values
        and drop out of downstream evaluations (a node re-evaluates only the
        rows whose mask is set), and the pass terminates early once no dirty
        row remains — so a batch whose faults all get squashed costs little
        more than a single masked batch-1 replay.

        Equivalence guarantee: BLAS kernels are not bit-stable across batch
        shapes, so batched rows may differ from their batch-1 replays in the
        last few ULPs.  Under the default ``ULP_TOLERANT`` mode a row counts
        as clean when it is within ``max_ulps`` of the cache, and the result
        reports the maximum deviation consumed by such rows
        (``max_ulp_deviation``).  ``EXACT`` mode uses bit-identity for the
        row masks (threshold 0); it makes the replay itself deterministic
        relative to the cache but cannot turn batched BLAS calls bit-stable,
        which is why campaigns refuse ``EXACT`` for ``batch_trials > 1``.

        Parameters
        ----------
        cached_values:
            Batch-1 node-name → activation mapping from a prior fault-free
            run of the same input.
        dirty:
            Node name(s) whose operators must be re-evaluated for every row.
        stacked_dirty_values:
            Node name → replacement outputs, installed without
            re-evaluation.  Without a row mask the value has ``(B, ...)``
            rows (row ``i`` is trial ``i``'s corrupted activation, every
            row enters here); with an entry in ``dirty_row_masks`` it is
            *packed* — one row per set mask bit, in ascending row order.
        outputs:
            Node names to report; defaults to the graph's marked outputs.
        feed:
            Only needed when a placeholder itself is marked dirty; the fed
            value may have 1 or B rows.
        equivalence:
            Row-masking mode; defaults to ``ULP_TOLERANT``.
        max_ulps:
            Row-masking tolerance under ``ULP_TOLERANT``.
        dirty_row_masks:
            Optional node name → boolean ``(B,)`` mask naming the rows that
            enter the replay at that node (cross-site batches).  Masked
            nodes' stacked values are packed to the mask's set bits; nodes
            absent from the mapping keep the homogeneous all-rows contract.
        dirty_row_deltas:
            Optional node name → :class:`~repro.graph.sparse.SparseRows`
            sparse entry frontier: instead of packing whole corrupted
            activations, each entering row carries only its changed
            elements relative to the batch-1 golden cache (final,
            already policy-processed values).  Deltas flow through
            elementwise-exact operators per element — masked rows retire
            with an O(changed) comparison — and densify at the first
            non-elementwise consumer.  A name may not appear in both this
            mapping and ``stacked_dirty_values``.
        """
        mode = EquivalenceMode.coerce(equivalence, EquivalenceMode.ULP_TOLERANT)
        threshold = 0.0 if mode is EquivalenceMode.EXACT else float(max_ulps)
        feed = dict(feed or {})
        requested = list(outputs) if outputs is not None else list(self.graph.outputs)
        if not requested:
            raise GraphError("graph has no outputs and none were requested")
        missing = [name for name in requested if name not in self.graph]
        if missing:
            raise GraphError(f"requested outputs not in graph: {missing}")
        overrides = {name: np.asarray(value)
                     for name, value in (stacked_dirty_values or {}).items()}
        row_masks: Dict[str, np.ndarray] = {}
        for name, mask in (dirty_row_masks or {}).items():
            if name not in overrides:
                raise GraphError(
                    f"dirty_row_masks names '{name}' but no stacked dirty "
                    f"value was supplied for it")
            mask = np.asarray(mask, dtype=bool)
            if mask.ndim != 1:
                raise GraphError(
                    f"row mask for '{name}' must be one-dimensional, got "
                    f"shape {mask.shape}")
            row_masks[name] = mask
        sparse_entries: Dict[str, SparseRows] = {}
        for name, sp in (dirty_row_deltas or {}).items():
            if name in overrides:
                raise GraphError(
                    f"'{name}' appears in both stacked_dirty_values and "
                    f"dirty_row_deltas")
            sparse_entries[name] = sp
        reeval_seeds = ({dirty} if isinstance(dirty, str) else set(dirty))
        reeval_seeds -= set(overrides)
        reeval_seeds -= set(sparse_entries)
        seeds = reeval_seeds | set(overrides) | set(sparse_entries)
        for name in seeds:
            if name not in self.graph:
                raise GraphError(f"unknown dirty node '{name}'")
        batch_sizes = {value.shape[0] for name, value in overrides.items()
                       if name not in row_masks}
        batch_sizes |= {mask.shape[0] for mask in row_masks.values()}
        batch_sizes |= {sp.batch for sp in sparse_entries.values()}
        if len(batch_sizes) > 1:
            raise GraphError(
                f"stacked dirty values disagree on the batch size: "
                f"{sorted(batch_sizes)}")
        batch = batch_sizes.pop() if batch_sizes else 1

        sparse_active = bool(sparse_entries) and self._sparse_ready()
        for name, sp in list(sparse_entries.items()):
            cached = cached_values.get(name)
            if cached is None:
                raise GraphError(
                    f"run_from_batched(): sparse entry at '{name}' requires "
                    f"a cached golden value")
            cached = np.asarray(cached)
            sp.validate(int(cached.size))
            if not sparse_active or cached.dtype != np.float64:
                # Hooks, a non-elementwise dtype policy, or a non-float64
                # cache: densify this entry into a packed override up front
                # (bit-identical by construction).
                entry_row_ids = np.unique(sp.rows)
                packed = np.repeat(cached, entry_row_ids.size, axis=0)
                flat = packed.reshape(entry_row_ids.size, -1)
                slot = np.searchsorted(entry_row_ids, sp.rows)
                flat[slot, sp.indices] = sp.values
                overrides[name] = packed
                mask = np.zeros(batch, dtype=bool)
                mask[entry_row_ids] = True
                row_masks[name] = mask
                del sparse_entries[name]
        sparse_active = sparse_active and bool(sparse_entries)
        # Normalized entry frontier: per node, the (B,) membership mask of
        # the rows entering the replay there plus their packed values (one
        # row per set bit, ascending row order).  Homogeneous overrides get
        # an all-rows mask, so the single-site fast path is the masked path
        # with a full mask.
        entry_masks: Dict[str, np.ndarray] = {}
        entry_rows: Dict[str, Array] = {}
        for name, rows in overrides.items():
            mask = row_masks.get(name)
            if mask is None:
                mask = np.ones(batch, dtype=bool)
            elif rows.shape[0] != int(np.count_nonzero(mask)):
                raise GraphError(
                    f"stacked value for '{name}' has {rows.shape[0]} rows "
                    f"but its row mask selects "
                    f"{int(np.count_nonzero(mask))}")
            if not mask.any():
                continue  # no row enters here; nothing to install
            if self.graph.node(name).op.batch_axis is None:
                # Batch-invariant nodes (variables, constants) are shared
                # by every row — assemble_input serves them from the cache,
                # so a stacked override here would be silently ignored.
                # Refuse, matching the re-evaluation path's error.
                raise GraphError(
                    f"run_from_batched(): cannot install stacked dirty "
                    f"values at batch-invariant node '{name}' "
                    f"({type(self.graph.node(name).op).__name__}); use "
                    f"run_from() for weight/constant updates")
            entry_masks[name] = mask
            entry_rows[name] = rows
        entry_sparse: Dict[str, SparseRows] = {}
        for name, sp in sparse_entries.items():
            if self.graph.node(name).op.batch_axis is None:
                raise GraphError(
                    f"run_from_batched(): cannot install sparse deltas at "
                    f"batch-invariant node '{name}' "
                    f"({type(self.graph.node(name).op).__name__}); use "
                    f"run_from() for weight/constant updates")
            mask = sp.row_mask()
            if not mask.any():
                continue  # no row enters here; nothing to install
            entry_masks[name] = mask
            entry_sparse[name] = sp

        cone = self.graph.downstream_union(seeds) if seeds else frozenset()
        needed = self.graph.ancestors(requested)
        recompute = cone & frozenset(needed)
        if batch > 1:
            coupled = [name for name in (set(recompute) | set(overrides)
                                         | set(sparse_entries))
                       if not self.graph.node(name).op.batch_transparent]
            if coupled:
                ops = {name: type(self.graph.node(name).op).__name__
                       for name in sorted(coupled)}
                raise GraphError(
                    f"run_from_batched(): batch-coupled operators in the "
                    f"replay cone cannot stack independent trials: {ops} "
                    f"(training-mode BatchNorm/Dropout and axis-0 concats "
                    f"violate the batch-transparency contract)")

        # Sparse dirty-row representation: per node, a boolean row mask and
        # the packed values of *only* the dirty rows (in row order).  Rows
        # absent from the mask are implicitly golden — masked faults cost
        # nothing downstream, nothing is ever filled with B-row copies of
        # cached activations, and a consumer whose needed rows coincide
        # with an input's dirty rows reuses the packed array with zero
        # copies (the common case inside a batch that shares a fault site).
        #
        # With sparse deltas a node's dirty rows split into two stores:
        # ``dense_masks``/``dirty_rows_of`` hold the rows carried as whole
        # packed arrays, ``sparse_store`` the rows carried per element.
        # ``dirty_masks`` stays the *combined* mask (dense | sparse) so the
        # need computation below is representation-agnostic; when a node
        # has no sparse rows, its ``dense_masks`` entry is the same object.
        dirty_masks: Dict[str, np.ndarray] = {}
        dense_masks: Dict[str, np.ndarray] = {}
        dirty_rows_of: Dict[str, Array] = {}
        sparse_store: Dict[str, SparseRows] = {}
        recomputed: Set[str] = set()
        rows_evaluated = 0
        max_deviation = 0.0
        nodes_since_mask = 0
        big_checks_skipped = 0
        elements_evaluated = 0
        elements_full = 0
        dense_fallbacks = 0
        scatter_flag = [False]
        arena_on = (self.arena is not None and not self._output_hooks
                    and not self._observers)

        topo = self.graph.topo_index()

        def influence_horizon(name: str) -> int:
            return max((topo[c] for c in self.graph.successors(name)
                        if c in recompute), default=-1)

        last_dirty_use = -1
        for name, rows in overrides.items():
            cached = cached_values.get(name)
            if cached is not None and np.asarray(cached).shape[1:] != rows.shape[1:]:
                raise GraphError(
                    f"run_from_batched(): stacked value for '{name}' has row "
                    f"shape {rows.shape[1:]}, cache has "
                    f"{np.asarray(cached).shape[1:]}")
        # Entry nodes are installed when the topological walk reaches them
        # (another entry's dirt may flow *through* them first), so the walk
        # must not terminate while entries are still pending.  Entries
        # outside the requested outputs' ancestor set cannot influence any
        # output and are dropped with their rows.
        pending_entries = sum(1 for name in entry_masks if name in recompute)
        pending_seeds = len(reeval_seeds & recompute)

        def assemble_input(name: str, need: np.ndarray,
                           count: int) -> Array:
            """An input's rows for the ``count`` rows a consumer evaluates.

            Clean rows come from the (broadcast) golden cache; dirty rows
            from the packed store.  When the consumer needs exactly the
            input's dirty rows — the common case — the packed array is
            returned as-is, copy-free.  Rows carried sparsely are served as
            a golden copy with the delta scattered in (the densification
            frontier of the batched sparse path).
            """
            mask = dirty_masks.get(name)
            if (mask is None
                    or self.graph.node(name).op.batch_axis is None):
                return self._broadcast_cached(cached_values, name, count)
            sp = sparse_store.get(name)
            dmask = dense_masks.get(name)
            if sp is None:
                packed = dirty_rows_of[name]
                if mask is need or np.array_equal(mask, need):
                    return packed
            try:
                cached = cached_values[name]
            except KeyError:
                raise GraphError(
                    f"run_from_batched(): no cached value for partially "
                    f"dirty input '{name}'") from None
            cached = np.asarray(cached)
            # Fill an empty buffer row-class by row-class instead of
            # materializing a full golden broadcast first and overwriting
            # the dirty rows — every row is written exactly once.  ``need``
            # may exclude rows the input is dirty for (an entry node's own
            # rows are installed, not evaluated), so the dirty scatter
            # takes the mask ∩ need subset of the packed store.
            if dmask is not None:
                packed = np.asarray(dirty_rows_of[name])
                dtype = np.result_type(cached, packed)
            else:
                packed = None
                dtype = cached.dtype
            if arena_on:
                # Per-(input, batch-width) assembly buffer — every row is
                # (re)written below before the consumer reads it, so reuse
                # across trials is invisible.
                assembled = self.arena.buffer(("in", name, count),
                                              (count,) + cached.shape[1:],
                                              dtype)
            else:
                assembled = np.empty((count,) + cached.shape[1:],
                                     dtype=dtype)
            position_of = np.cumsum(need) - 1
            dense_part = (dmask if dmask is not None
                          else np.zeros(batch, dtype=bool))
            base = need & ~dense_part
            if base.any():
                assembled[position_of[base]] = cached
            take = dense_part & need
            if take.any():
                rows = (packed if np.array_equal(take, dense_part)
                        else packed[take[dense_part]])
                assembled[position_of[take]] = rows
            if sp is not None:
                sel = need[sp.rows]
                if sel.any():
                    flat = assembled.reshape(count, -1)
                    flat[position_of[sp.rows[sel]],
                         sp.indices[sel]] = sp.values[sel]
                    scatter_flag[0] = True
            return assembled

        for name in sorted(recompute, key=topo.__getitem__):
            if (not pending_seeds and not pending_entries
                    and topo[name] > last_dirty_use):
                break  # no remaining node can see a dirty row
            node = self.graph.node(name)
            is_seed = name in reeval_seeds
            entry = entry_masks.get(name)
            sp_entry = entry_sparse.get(name)
            if is_seed:
                need = np.ones(batch, dtype=bool)
            else:
                input_masks = [dirty_masks[inp] for inp in node.inputs
                               if inp in dirty_masks]
                if len(input_masks) == 1:
                    # Borrowed, treated read-only (the single-input chain is
                    # the hot case; assemble_input's identity fast path
                    # makes it copy-free end to end).
                    need = input_masks[0]
                elif input_masks:
                    need = np.logical_or.reduce(input_masks)
                else:
                    need = None
            if entry is not None:
                pending_entries -= 1
                # Rows entering here take their injected value as-is (the
                # stacked-dirty-value contract: it is a final, already
                # policy-processed activation); only rows that *another*
                # entry dirtied upstream re-evaluate through this node.
                need = None if need is None else need & ~entry
            if need is None or not need.any():
                if entry is None:
                    continue  # every input row is clean: the cache stands
                dirty_masks[name] = entry
                if sp_entry is not None:
                    sparse_store[name] = sp_entry
                else:
                    dense_masks[name] = entry
                    dirty_rows_of[name] = entry_rows[name]
                last_dirty_use = max(last_dirty_use, influence_horizon(name))
                continue
            if node.op.batch_axis is None:
                raise GraphError(
                    f"run_from_batched(): cannot re-evaluate batch-invariant "
                    f"node '{name}' ({type(node.op).__name__}) in a batched "
                    f"replay; use run_from() for weight/constant updates")
            cached = cached_values.get(name)

            # Partition the needed rows between representations: a row goes
            # sparse when the node is elementwise-exact, every dirty input
            # serving that row carries its delta sparsely, and the combined
            # delta stays under the density threshold.
            sparse_need = None
            row_size = 0
            if (sparse_active and not is_seed
                    and self._sparse_node_eligible(node, cached_values)):
                row_size = int(np.prod(
                    np.asarray(cached_values[name]).shape[1:],
                    dtype=np.int64))
                dense_any = np.zeros(batch, dtype=bool)
                has_sparse = np.zeros(batch, dtype=bool)
                nnz_per_row = np.zeros(batch, dtype=np.int64)
                for inp in set(node.inputs):
                    dm = dense_masks.get(inp)
                    if dm is not None:
                        dense_any |= dm
                    spi = sparse_store.get(inp)
                    if spi is not None:
                        has_sparse |= spi.row_mask()
                        nnz_per_row += spi.nnz_by_row()
                sparse_need = need & has_sparse & ~dense_any
                if sparse_need.any() and row_size:
                    sparse_need &= (nnz_per_row
                                    <= SPARSE_DENSITY_THRESHOLD * row_size)
                if (int(np.count_nonzero(sparse_need)) * row_size
                        < self.sparse_min_gain_elements):
                    # Too little displaced dense work to amortize the fixed
                    # sparse bookkeeping: evaluate these rows dense instead.
                    sparse_need = None
                elif not sparse_need.any():
                    sparse_need = None
            dense_need = need if sparse_need is None else need & ~sparse_need

            sparse_result = None  # surviving (rows, indices, values)
            if sparse_need is not None:
                dirty_parts: Dict[int, Tuple[Array, Array, Array]] = {}
                for pos, inp in enumerate(node.inputs):
                    spi = sparse_store.get(inp)
                    if spi is None:
                        continue
                    sub = spi.restrict(sparse_need)
                    if sub.rows.size:
                        dirty_parts[pos] = (sub.rows, sub.indices,
                                            sub.values)
                srows, sidx, svals = self._sparse_eval_node(
                    node, cached_values, dirty_parts)
                golden_flat = np.ascontiguousarray(
                    cached_values[name]).reshape(-1)
                keep = bitwise_neq(svals, golden_flat[sidx])
                scount = int(np.count_nonzero(sparse_need))
                rows_evaluated += scount
                recomputed.add(name)
                elements_evaluated += int(sidx.size)
                elements_full += scount * row_size
                if keep.any():
                    if not keep.all():
                        srows, sidx, svals = (srows[keep], sidx[keep],
                                              svals[keep])
                    sparse_result = (srows, sidx, svals)
                # Rows whose whole delta retired are masked faults, proven
                # with an O(changed) comparison — they simply drop out.

            count = 0
            need_idx = np.zeros(0, dtype=np.int64)
            dirty = np.zeros(0, dtype=bool)
            out_arr = None
            rs_triplet = None
            if dense_need.any():
                need_idx = np.flatnonzero(dense_need)
                count = len(need_idx)
                scatter_flag[0] = False
                if isinstance(node.op, Placeholder):
                    if name not in feed:
                        raise GraphError(
                            f"placeholder '{name}' is dirty but no value "
                            f"was fed")
                    fed = np.asarray(feed[name], dtype=np.float64)
                    if fed.shape[0] == 1:
                        fed = np.broadcast_to(fed, (batch,) + fed.shape[1:])
                    elif fed.shape[0] != batch:
                        raise GraphError(
                            f"fed value for dirty placeholder '{name}' has "
                            f"{fed.shape[0]} rows; expected 1 or {batch}")
                    out = np.array(fed[need_idx], dtype=np.float64)
                    buffer = None
                else:
                    try:
                        args = [assemble_input(inp, dense_need, count)
                                for inp in node.inputs]
                    except KeyError as exc:  # pragma: no cover - defensive
                        raise GraphError(
                            f"run_from_batched(): no cached value for input "
                            f"{exc} of node '{name}'") from None
                    buffer = self._arena_buffer(("out", name, count),
                                                cached, count)
                    if buffer is not None and node.op.supports_out:
                        out = node.op.forward_out(buffer, *args)
                    else:
                        out = node.op.forward(*args)
                out = self._evaluate(node, out, buffer)
                rows_evaluated += count
                recomputed.add(name)
                if scatter_flag[0]:
                    dense_fallbacks += 1
                out_arr = np.asarray(out)
                out_elements = out_arr.size // count if count else 0
                if sparse_active:
                    elements_evaluated += count * out_elements
                    elements_full += count * out_elements
                checked_big = False
                if cached is None:
                    # Without a golden value there is nothing to snap clean
                    # rows back to: keep every evaluated row dirty.
                    dirty = np.ones(count, dtype=bool)
                elif out_elements < DIVERGENCE_CHECK_MIN_ELEMENTS:
                    # Small outputs: one exact-equality comparison still
                    # terminates masked rows but skips the screening
                    # machinery — a conservative subset of _row_divergence
                    # (a row within ULP tolerance but not bit-equal simply
                    # stays dirty, carrying its exact value; under
                    # fixed-point policies masked rows are bit-equal
                    # anyway).
                    cached_arr = np.asarray(cached)
                    if (cached_arr.dtype == out_arr.dtype
                            and cached_arr.shape[1:] == out_arr.shape[1:]):
                        dirty = ~(out_arr == cached_arr).reshape(
                            count, -1).all(axis=1)
                    else:
                        dirty = np.ones(count, dtype=bool)
                elif (nodes_since_mask > DIVERGENCE_BACKOFF_NODES
                        and big_checks_skipped + 1
                        < DIVERGENCE_BACKOFF_STRIDE):
                    # Backed off (see DIVERGENCE_BACKOFF_NODES): nothing
                    # has masked in a while, so skip the bandwidth-bound
                    # screen and keep the rows dirty with their exact
                    # values.
                    big_checks_skipped += 1
                    dirty = np.ones(count, dtype=bool)
                else:
                    checked_big = True
                    big_checks_skipped = 0
                    dirty, deviation = self._row_divergence(out, cached,
                                                            threshold)
                    max_deviation = max(max_deviation, deviation)
                if cached is not None and (checked_big
                                           or out_elements
                                           < DIVERGENCE_CHECK_MIN_ELEMENTS):
                    nodes_since_mask = 0 if dirty.shape[0] > int(dirty.sum()) \
                        else nodes_since_mask + 1
                # Re-sparsification: after a densifying operator the diff
                # against golden is often narrow again (a k-element input
                # delta only touches the windows covering it — the resnet18
                # skip-connection case), so qualifying dirty rows move back
                # to the sparse store for their elementwise consumers.
                if (sparse_active and dirty.any() and cached is not None
                        and int(dirty.sum()) * out_elements
                        >= self.sparse_min_gain_elements
                        and not node.op.elementwise_exact
                        and out_arr.dtype == np.float64
                        and np.asarray(cached).dtype == np.float64
                        and np.asarray(cached).shape[1:] == out_arr.shape[1:]
                        and any(self.graph.node(c).op.elementwise_exact
                                for c in self.graph.successors(name)
                                if c in recompute)):
                    flat_out = out_arr.reshape(count, -1)
                    flat_cached = np.ascontiguousarray(cached).reshape(-1)
                    dirty_pos = np.flatnonzero(dirty)
                    diff = bitwise_neq(flat_out[dirty_pos], flat_cached)
                    nnz_rows = diff.sum(axis=1)
                    narrow = (nnz_rows
                              <= SPARSE_DENSITY_THRESHOLD * flat_out.shape[1])
                    if narrow.any():
                        sel = dirty_pos[narrow]
                        sub = diff[narrow]
                        local_rows, local_idx = np.nonzero(sub)
                        abs_rows = need_idx[sel]
                        if local_rows.size:
                            rs_triplet = (
                                abs_rows[local_rows].astype(np.int64),
                                local_idx.astype(np.int64),
                                flat_out[sel][sub])
                        # nnz == 0 rows are bit-equal to golden and retire
                        # entirely; the rest now travel sparsely.
                        dirty[sel] = False
                if is_seed:
                    pending_seeds -= 1
            elif is_seed:  # pragma: no cover - seeds always evaluate dense
                pending_seeds -= 1

            # Commit this node's dirty stores: the dense component (entry
            # rows merged with surviving dense-evaluated rows, ascending row
            # order) and the sparse component (sparse entry + surviving
            # sparse-evaluated + re-sparsified triplets, (row, index)
            # sorted) — plus the combined mask the need computation reads.
            dense_entry = entry if (entry is not None
                                    and sp_entry is None) else None
            new_dense_mask = None
            new_packed = None
            if dense_entry is not None:
                packed_entry = np.asarray(entry_rows[name])
                final_mask = dense_entry.copy()
                evaluated_abs = (need_idx[dirty] if count
                                 else np.zeros(0, dtype=np.int64))
                final_mask[evaluated_abs] = True
                dtype = (packed_entry.dtype if out_arr is None
                         else np.result_type(packed_entry, out_arr))
                combined = np.empty(
                    (int(np.count_nonzero(final_mask)),)
                    + packed_entry.shape[1:], dtype=dtype)
                position_of = np.cumsum(final_mask) - 1
                combined[position_of[dense_entry]] = packed_entry
                if evaluated_abs.size:
                    combined[position_of[evaluated_abs]] = out_arr[dirty]
                new_dense_mask, new_packed = final_mask, combined
            elif count and dirty.any():
                mask = np.zeros(batch, dtype=bool)
                mask[need_idx[dirty]] = True
                new_dense_mask = mask
                new_packed = out_arr[dirty]
            sparse_parts = []
            if sp_entry is not None:
                sparse_parts.append((sp_entry.rows, sp_entry.indices,
                                     sp_entry.values))
            if sparse_result is not None:
                sparse_parts.append(sparse_result)
            if rs_triplet is not None:
                sparse_parts.append(rs_triplet)
            new_sparse = (merge_sorted_triplets(sparse_parts)
                          if sparse_parts else None)
            if new_dense_mask is None and new_sparse is None:
                dirty_masks.pop(name, None)
                dense_masks.pop(name, None)
                dirty_rows_of.pop(name, None)
                sparse_store.pop(name, None)
                continue
            if new_dense_mask is not None:
                dense_masks[name] = new_dense_mask
                dirty_rows_of[name] = new_packed
            else:
                dense_masks.pop(name, None)
                dirty_rows_of.pop(name, None)
            if new_sparse is not None:
                sparse_store[name] = SparseRows(batch, *new_sparse)
                combined_mask = (np.zeros(batch, dtype=bool)
                                 if new_dense_mask is None
                                 else new_dense_mask.copy())
                combined_mask[new_sparse[0]] = True
                dirty_masks[name] = combined_mask
            else:
                sparse_store.pop(name, None)
                dirty_masks[name] = new_dense_mask
            last_dirty_use = max(last_dirty_use, influence_horizon(name))

        results: Dict[str, Array] = {}
        for name in requested:
            mask = dirty_masks.get(name)
            if mask is None:
                results[name] = np.array(self._broadcast_cached(
                    cached_values, name, batch))
                continue
            sp = sparse_store.get(name)
            dmask = dense_masks.get(name)
            if sp is None and mask.all():
                results[name] = np.ascontiguousarray(dirty_rows_of[name])
                continue
            try:
                cached = np.asarray(cached_values[name])
            except KeyError:
                raise GraphError(
                    f"run_from_batched(): requested output '{name}' has "
                    f"clean rows but no cached value to serve them "
                    f"from") from None
            full = np.array(np.broadcast_to(cached,
                                            (batch,) + cached.shape[1:]))
            if dmask is not None:
                full[dmask] = dirty_rows_of[name]
            if sp is not None:
                full.reshape(batch, -1)[sp.rows, sp.indices] = sp.values
            results[name] = full
        return BatchedExecutionResult(outputs=results, recomputed=recomputed,
                                      rows_evaluated=rows_evaluated,
                                      max_ulp_deviation=max_deviation,
                                      elements_evaluated=elements_evaluated,
                                      elements_full=elements_full,
                                      dense_fallback_nodes=dense_fallbacks)

    # -- training ---------------------------------------------------------------

    def run_with_gradients(self, feed: Mapping[str, Array],
                           loss_grad: Mapping[str, Array],
                           ) -> Tuple[ExecutionResult, Dict[str, Array]]:
        """Forward pass followed by reverse-mode backpropagation.

        Parameters
        ----------
        feed:
            Placeholder values.
        loss_grad:
            Mapping from output node names to the gradient of the scalar loss
            with respect to that output (the trainer computes these from the
            loss function).

        Returns
        -------
        The forward :class:`ExecutionResult` and a dict of gradients keyed by
        node name.  Gradients for :class:`Variable` nodes are also accumulated
        into the variables' ``grad`` attribute so optimizers can consume them.
        """
        result = self.run(feed, outputs=list(loss_grad.keys()))
        values = result.values
        grads: Dict[str, Array] = {
            name: np.asarray(g, dtype=np.float64) for name, g in loss_grad.items()
        }

        for node in reversed(self.graph.nodes()):
            if node.name not in grads:
                continue
            grad_out = grads[node.name]
            if isinstance(node.op, Variable):
                node.op.accumulate_grad(grad_out)
                continue
            if isinstance(node.op, Placeholder):
                continue
            inputs = [values[i] for i in node.inputs]
            input_grads = node.op.backward(grad_out, inputs, values[node.name])
            for inp_name, inp_grad in zip(node.inputs, input_grads):
                if inp_grad is None:
                    continue
                if inp_name in grads:
                    grads[inp_name] = grads[inp_name] + inp_grad
                else:
                    grads[inp_name] = inp_grad
        return result, grads


def set_training_mode(graph: Graph, training: bool) -> None:
    """Flip the ``training`` flag on every operator that has one."""
    for node in graph:
        if hasattr(node.op, "training"):
            node.op.training = training
