"""Graph executor: forward evaluation, hooks, dtype policies, backprop.

The executor is the single place where all of the reproduction's cross-cutting
concerns meet:

* the **fault injector** registers an output hook that flips bits in exactly
  one operator's output during one inference;
* the **profiler** registers an observation hook to collect activation ranges
  for Ranger's restriction bounds;
* the **fixed-point datatype policy** quantizes every operator output to the
  configured Qm.n format, reproducing the paper's 32-bit / 16-bit fixed-point
  evaluation configurations;
* the **trainer** runs forward with caching and then backpropagates through
  the recorded tape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Set, Tuple, Union)

import numpy as np

from ..ops.base import Array, Operator, Placeholder, Variable
from .graph import Graph, GraphError, Node

#: An output hook receives (node, output) and returns a possibly-modified
#: output array.  Hooks run in registration order after the operator executes.
OutputHook = Callable[[Node, Array], Array]

#: An observer receives (node, output) and returns nothing.  Observers run
#: after all output hooks.
Observer = Callable[[Node, Array], None]


class DTypePolicy:
    """Numeric policy applied to every operator output.

    The default policy is plain float64 (no transformation).  The fixed-point
    policies in :mod:`repro.quantization` subclass this to round every value
    to a Qm.n grid with saturation, which is how the paper's "32-bit
    fixed-point datatype" configuration is modelled.
    """

    name = "float64"

    def apply(self, node: Node, value: Array) -> Array:
        return value


def bit_identical(a: Array, b: Array) -> bool:
    """True when two arrays hold exactly the same bits.

    Raw-byte comparison, deliberately stricter than ``==``: NaNs with equal
    payloads compare equal (deterministic operators on identical bits give
    identical bits downstream), while ``-0.0`` and ``0.0`` compare unequal
    (they are different bit patterns).  Both directions are safe for change
    propagation, and a single memcmp is cheaper than an elementwise pass.
    """
    if a is b:
        return True
    a = np.asarray(a)
    b = np.asarray(b)
    return (a.shape == b.shape and a.dtype == b.dtype
            and a.tobytes() == b.tobytes())


@dataclass
class ExecutionResult:
    """Outputs of one forward pass plus the cached per-node values.

    ``recomputed`` is populated by partial re-execution
    (:meth:`Executor.run_from`) with the names of the nodes that were
    actually re-evaluated; everything else came from the supplied cache.
    """

    outputs: Dict[str, Array]
    values: Dict[str, Array]
    recomputed: Optional[Set[str]] = None

    def output(self, name: Optional[str] = None) -> Array:
        if name is not None:
            return self.outputs[name]
        if len(self.outputs) != 1:
            raise KeyError(
                f"graph has {len(self.outputs)} outputs; specify which one")
        return next(iter(self.outputs.values()))


class Executor:
    """Evaluates a :class:`~repro.graph.graph.Graph`.

    Parameters
    ----------
    graph:
        The graph to execute.
    dtype_policy:
        Numeric policy applied to every operator output (see
        :class:`DTypePolicy`).
    """

    def __init__(self, graph: Graph,
                 dtype_policy: Optional[DTypePolicy] = None) -> None:
        self.graph = graph
        self.dtype_policy = dtype_policy or DTypePolicy()
        self._output_hooks: List[OutputHook] = []
        self._observers: List[Observer] = []

    # -- hook management -----------------------------------------------------

    def add_output_hook(self, hook: OutputHook) -> None:
        self._output_hooks.append(hook)

    def remove_output_hook(self, hook: OutputHook) -> None:
        self._output_hooks.remove(hook)

    def add_observer(self, observer: Observer) -> None:
        self._observers.append(observer)

    def remove_observer(self, observer: Observer) -> None:
        self._observers.remove(observer)

    def clear_hooks(self) -> None:
        self._output_hooks.clear()
        self._observers.clear()

    # -- execution -------------------------------------------------------------

    def _evaluate(self, node: Node, out: Array) -> Array:
        """Apply the dtype policy, output hooks and observers to one output."""
        out = self.dtype_policy.apply(node, out)
        for hook in self._output_hooks:
            out = hook(node, out)
        for observer in self._observers:
            observer(node, out)
        return out

    def run(self, feed: Optional[Mapping[str, Array]] = None,
            outputs: Optional[Sequence[str]] = None,
            prune: bool = True) -> ExecutionResult:
        """Run a forward pass.

        Parameters
        ----------
        feed:
            Mapping from placeholder node names to input arrays.
        outputs:
            Node names to report; defaults to the graph's marked outputs.
        prune:
            When True (default), only the ancestor set of the requested
            outputs is evaluated — nodes the outputs do not depend on are
            skipped entirely (they are absent from ``result.values`` and
            hooks/observers never see them).  Pass False to force the old
            whole-graph evaluation.
        """
        feed = dict(feed or {})
        requested = list(outputs) if outputs is not None else list(self.graph.outputs)
        if not requested:
            raise GraphError("graph has no outputs and none were requested")
        missing = [name for name in requested if name not in self.graph]
        if missing:
            raise GraphError(f"requested outputs not in graph: {missing}")
        needed = self.graph.ancestors(requested) if prune else None
        values: Dict[str, Array] = {}

        for node in self.graph:
            if needed is not None and node.name not in needed:
                continue
            if isinstance(node.op, Placeholder):
                key = node.name
                if key not in feed:
                    raise GraphError(
                        f"no value fed for placeholder '{node.name}'")
                out = np.asarray(feed[key], dtype=np.float64)
            else:
                args = [values[i] for i in node.inputs]
                out = node.op.forward(*args)
            values[node.name] = self._evaluate(node, out)

        return ExecutionResult(
            outputs={name: values[name] for name in requested},
            values=values,
        )

    def run_from(self, cached_values: Mapping[str, Array],
                 dirty: Union[str, Iterable[str]] = (),
                 outputs: Optional[Sequence[str]] = None,
                 feed: Optional[Mapping[str, Array]] = None,
                 dirty_values: Optional[Mapping[str, Array]] = None,
                 ) -> ExecutionResult:
        """Partial re-execution from a per-node activation cache.

        Resumes a forward pass from ``cached_values`` (the ``values`` of a
        previous :meth:`run` over the same graph), re-evaluating only the
        downstream cone of the dirty set that the requested outputs depend
        on.  Everything upstream keeps its cached value bit-for-bit, which
        is what makes fault-injection campaigns cheap: a fault at node *k*
        can only perturb descendants of *k*.

        The dirty set is seeded two ways:

        * ``dirty`` — node names whose operators must be *re-evaluated*
          (e.g. a variable whose weights changed);
        * ``dirty_values`` — node name → replacement output.  The value is
          installed as-is, **without** re-running the operator or applying
          the dtype policy / hooks (it is taken to be a final, already
          policy-processed value).  This is how the fault injector swaps a
          corrupted copy of a cached activation in for free instead of
          paying for the fault node's forward pass again.

        Re-execution propagates *change* rather than mere reachability: a
        re-evaluated node whose output is bit-identical to its cached value
        (a fault squashed by a ReLU, a max-pool, or a Ranger clip) stops
        dirtying its consumers, and the pass terminates early once no dirty
        value remains — so the result is bit-identical to a full run while
        often touching only a handful of nodes.

        The dtype policy, output hooks and observers are applied to every
        re-evaluated node exactly as in :meth:`run`; cached nodes already
        carry their policy-processed values and are not revisited.  Note
        that non-deterministic operators (e.g. the ``"random"``
        out-of-bound policy) draw fresh randomness when re-evaluated, just
        as they would in any fresh full run.

        Parameters
        ----------
        cached_values:
            Node-name → activation mapping from a prior fault-free run.
        dirty:
            Node name(s) whose operators must be re-evaluated.
        outputs:
            Node names to report; defaults to the graph's marked outputs.
        feed:
            Only needed when a placeholder itself is marked dirty.
        dirty_values:
            Node name → replacement output installed without re-evaluation.
        """
        feed = dict(feed or {})
        requested = list(outputs) if outputs is not None else list(self.graph.outputs)
        if not requested:
            raise GraphError("graph has no outputs and none were requested")
        overrides = dict(dirty_values or {})
        reeval_seeds = ({dirty} if isinstance(dirty, str) else set(dirty))
        reeval_seeds -= set(overrides)
        seeds = reeval_seeds | set(overrides)
        for name in seeds:
            if name not in self.graph:
                raise GraphError(f"unknown dirty node '{name}'")

        values: Dict[str, Array] = dict(cached_values)
        recomputed: Set[str] = set()
        live_dirty: Set[str] = set()

        dirty_overrides: List[str] = []
        for name, value in overrides.items():
            values[name] = value
            cached = cached_values.get(name)
            if cached is None or not bit_identical(value, cached):
                live_dirty.add(name)
                dirty_overrides.append(name)

        if not seeds or (not live_dirty and not reeval_seeds):
            # Nothing can change: every requested output is cached.
            missing = [name for name in requested if name not in values]
            if missing:
                raise GraphError(
                    f"run_from(): requested outputs not in the cache: "
                    f"{missing}")
            return ExecutionResult(
                outputs={name: values[name] for name in requested},
                values=values, recomputed=recomputed)

        cone = self.graph.downstream(seeds)
        needed = self.graph.ancestors(requested)
        recompute = (cone & needed) - set(overrides)
        pending_seeds = len(reeval_seeds & recompute)
        topo = self.graph.topo_index()

        # A dirty value stops mattering once its last consumer inside the
        # recompute set has been visited; tracking that horizon lets the
        # loop break as soon as no remaining node can see a dirty input
        # (e.g. a fault masked by the first ReLU after the fault site).
        def influence_horizon(name: str) -> int:
            return max((topo[c] for c in self.graph.successors(name)
                        if c in recompute), default=-1)

        last_dirty_use = max((influence_horizon(name)
                              for name in dirty_overrides), default=-1)

        for name in sorted(recompute, key=topo.__getitem__):
            position = topo[name]
            if not pending_seeds and position > last_dirty_use:
                break  # no remaining node can have a dirty input
            node = self.graph.node(name)
            is_seed = name in reeval_seeds
            if not is_seed and not any(i in live_dirty for i in node.inputs):
                continue  # every input is clean: the cached value stands
            if isinstance(node.op, Placeholder):
                if name not in feed:
                    raise GraphError(
                        f"placeholder '{name}' is dirty but no value was fed")
                out = np.asarray(feed[name], dtype=np.float64)
            else:
                try:
                    args = [values[i] for i in node.inputs]
                except KeyError as exc:
                    raise GraphError(
                        f"run_from(): no cached value for input {exc} of "
                        f"node '{name}'") from None
                out = node.op.forward(*args)
            out = self._evaluate(node, out)
            values[name] = out
            recomputed.add(name)
            if is_seed:
                pending_seeds -= 1
            cached = cached_values.get(name)
            if cached is not None and bit_identical(out, cached):
                live_dirty.discard(name)  # the change was masked
            else:
                live_dirty.add(name)
                last_dirty_use = max(last_dirty_use, influence_horizon(name))

        missing = [name for name in requested if name not in values]
        if missing:
            raise GraphError(
                f"run_from(): requested outputs missing from both the cache "
                f"and the recomputed cone: {missing}")
        return ExecutionResult(
            outputs={name: values[name] for name in requested},
            values=values,
            recomputed=recomputed,
        )

    # -- training ---------------------------------------------------------------

    def run_with_gradients(self, feed: Mapping[str, Array],
                           loss_grad: Mapping[str, Array],
                           ) -> Tuple[ExecutionResult, Dict[str, Array]]:
        """Forward pass followed by reverse-mode backpropagation.

        Parameters
        ----------
        feed:
            Placeholder values.
        loss_grad:
            Mapping from output node names to the gradient of the scalar loss
            with respect to that output (the trainer computes these from the
            loss function).

        Returns
        -------
        The forward :class:`ExecutionResult` and a dict of gradients keyed by
        node name.  Gradients for :class:`Variable` nodes are also accumulated
        into the variables' ``grad`` attribute so optimizers can consume them.
        """
        result = self.run(feed, outputs=list(loss_grad.keys()))
        values = result.values
        grads: Dict[str, Array] = {
            name: np.asarray(g, dtype=np.float64) for name, g in loss_grad.items()
        }

        for node in reversed(self.graph.nodes()):
            if node.name not in grads:
                continue
            grad_out = grads[node.name]
            if isinstance(node.op, Variable):
                node.op.accumulate_grad(grad_out)
                continue
            if isinstance(node.op, Placeholder):
                continue
            inputs = [values[i] for i in node.inputs]
            input_grads = node.op.backward(grad_out, inputs, values[node.name])
            for inp_name, inp_grad in zip(node.inputs, input_grads):
                if inp_grad is None:
                    continue
                if inp_name in grads:
                    grads[inp_name] = grads[inp_name] + inp_grad
                else:
                    grads[inp_name] = inp_grad
        return result, grads


def set_training_mode(graph: Graph, training: bool) -> None:
    """Flip the ``training`` flag on every operator that has one."""
    for node in graph:
        if hasattr(node.op, "training"):
            node.op.training = training
