"""Graph executor: forward evaluation, hooks, dtype policies, backprop.

The executor is the single place where all of the reproduction's cross-cutting
concerns meet:

* the **fault injector** registers an output hook that flips bits in exactly
  one operator's output during one inference;
* the **profiler** registers an observation hook to collect activation ranges
  for Ranger's restriction bounds;
* the **fixed-point datatype policy** quantizes every operator output to the
  configured Qm.n format, reproducing the paper's 32-bit / 16-bit fixed-point
  evaluation configurations;
* the **trainer** runs forward with caching and then backpropagates through
  the recorded tape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..ops.base import Array, Operator, Placeholder, Variable
from .graph import Graph, GraphError, Node

#: An output hook receives (node, output) and returns a possibly-modified
#: output array.  Hooks run in registration order after the operator executes.
OutputHook = Callable[[Node, Array], Array]

#: An observer receives (node, output) and returns nothing.  Observers run
#: after all output hooks.
Observer = Callable[[Node, Array], None]


class DTypePolicy:
    """Numeric policy applied to every operator output.

    The default policy is plain float64 (no transformation).  The fixed-point
    policies in :mod:`repro.quantization` subclass this to round every value
    to a Qm.n grid with saturation, which is how the paper's "32-bit
    fixed-point datatype" configuration is modelled.
    """

    name = "float64"

    def apply(self, node: Node, value: Array) -> Array:
        return value


@dataclass
class ExecutionResult:
    """Outputs of one forward pass plus the cached per-node values."""

    outputs: Dict[str, Array]
    values: Dict[str, Array]

    def output(self, name: Optional[str] = None) -> Array:
        if name is not None:
            return self.outputs[name]
        if len(self.outputs) != 1:
            raise KeyError(
                f"graph has {len(self.outputs)} outputs; specify which one")
        return next(iter(self.outputs.values()))


class Executor:
    """Evaluates a :class:`~repro.graph.graph.Graph`.

    Parameters
    ----------
    graph:
        The graph to execute.
    dtype_policy:
        Numeric policy applied to every operator output (see
        :class:`DTypePolicy`).
    """

    def __init__(self, graph: Graph,
                 dtype_policy: Optional[DTypePolicy] = None) -> None:
        self.graph = graph
        self.dtype_policy = dtype_policy or DTypePolicy()
        self._output_hooks: List[OutputHook] = []
        self._observers: List[Observer] = []

    # -- hook management -----------------------------------------------------

    def add_output_hook(self, hook: OutputHook) -> None:
        self._output_hooks.append(hook)

    def remove_output_hook(self, hook: OutputHook) -> None:
        self._output_hooks.remove(hook)

    def add_observer(self, observer: Observer) -> None:
        self._observers.append(observer)

    def remove_observer(self, observer: Observer) -> None:
        self._observers.remove(observer)

    def clear_hooks(self) -> None:
        self._output_hooks.clear()
        self._observers.clear()

    # -- execution -------------------------------------------------------------

    def run(self, feed: Optional[Mapping[str, Array]] = None,
            outputs: Optional[Sequence[str]] = None) -> ExecutionResult:
        """Run a forward pass.

        Parameters
        ----------
        feed:
            Mapping from placeholder node names to input arrays.
        outputs:
            Node names to report; defaults to the graph's marked outputs.
        """
        feed = dict(feed or {})
        requested = list(outputs) if outputs is not None else list(self.graph.outputs)
        if not requested:
            raise GraphError("graph has no outputs and none were requested")
        values: Dict[str, Array] = {}

        for node in self.graph:
            if isinstance(node.op, Placeholder):
                key = node.name
                if key not in feed:
                    raise GraphError(
                        f"no value fed for placeholder '{node.name}'")
                out = np.asarray(feed[key], dtype=np.float64)
            else:
                args = [values[i] for i in node.inputs]
                out = node.op.forward(*args)
            out = self.dtype_policy.apply(node, out)
            for hook in self._output_hooks:
                out = hook(node, out)
            for observer in self._observers:
                observer(node, out)
            values[node.name] = out

        missing = [name for name in requested if name not in values]
        if missing:
            raise GraphError(f"requested outputs not in graph: {missing}")
        return ExecutionResult(
            outputs={name: values[name] for name in requested},
            values=values,
        )

    # -- training ---------------------------------------------------------------

    def run_with_gradients(self, feed: Mapping[str, Array],
                           loss_grad: Mapping[str, Array],
                           ) -> Tuple[ExecutionResult, Dict[str, Array]]:
        """Forward pass followed by reverse-mode backpropagation.

        Parameters
        ----------
        feed:
            Placeholder values.
        loss_grad:
            Mapping from output node names to the gradient of the scalar loss
            with respect to that output (the trainer computes these from the
            loss function).

        Returns
        -------
        The forward :class:`ExecutionResult` and a dict of gradients keyed by
        node name.  Gradients for :class:`Variable` nodes are also accumulated
        into the variables' ``grad`` attribute so optimizers can consume them.
        """
        result = self.run(feed, outputs=list(loss_grad.keys()))
        values = result.values
        grads: Dict[str, Array] = {
            name: np.asarray(g, dtype=np.float64) for name, g in loss_grad.items()
        }

        for node in reversed(self.graph.nodes()):
            if node.name not in grads:
                continue
            grad_out = grads[node.name]
            if isinstance(node.op, Variable):
                node.op.accumulate_grad(grad_out)
                continue
            if isinstance(node.op, Placeholder):
                continue
            inputs = [values[i] for i in node.inputs]
            input_grads = node.op.backward(grad_out, inputs, values[node.name])
            for inp_name, inp_grad in zip(node.inputs, input_grads):
                if inp_grad is None:
                    continue
                if inp_name in grads:
                    grads[inp_name] = grads[inp_name] + inp_grad
                else:
                    grads[inp_name] = inp_grad
        return result, grads


def set_training_mode(graph: Graph, training: bool) -> None:
    """Flip the ``training`` flag on every operator that has one."""
    for node in graph:
        if hasattr(node.op, "training"):
            node.op.training = training
