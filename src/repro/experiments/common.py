"""Shared infrastructure for the per-table / per-figure experiments.

Every experiment module exposes ``run_*`` functions that take an
:class:`ExperimentScale` and return an :class:`ExperimentResult`.  The scale
object controls how much work is done (fault-injection trials, number of
evaluation inputs, which models are included) so the same experiment
definition can be run as a seconds-long smoke test, the committed benchmark
configuration, or a paper-scale overnight campaign.
"""

from __future__ import annotations

import atexit
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core import ProtectionInfo, Ranger
from ..injection import (
    CampaignPool,
    FaultInjectionCampaign,
    FaultModel,
    SingleBitFlip,
    compare_protection,
)
from ..models import CLASSIFIER_MODELS, STEERING_MODELS, PreparedModel, prepare_model
from ..quantization import FIXED16, FIXED32, fixed16_policy, fixed32_policy
from ..service import ArtifactStore, CampaignServer, request_from_campaign

#: Training configuration per model used by all experiments, calibrated so
#: the small presets reach usable accuracy in minutes on a laptop.
TRAINING_CONFIG: Dict[str, Dict[str, Any]] = {
    "lenet": {"epochs": 6, "learning_rate": 2e-3},
    "alexnet": {"epochs": 5, "learning_rate": 2e-3},
    "vgg11": {"epochs": 10, "learning_rate": 4e-3},
    "vgg16": {"epochs": 10, "learning_rate": 4e-3, "num_classes": 10},
    "resnet18": {"epochs": 3, "learning_rate": 2e-3},
    "squeezenet": {"epochs": 12, "learning_rate": 6e-3, "num_classes": 10,
                   "width_scale": 0.5},
    "dave": {"epochs": 12, "learning_rate": 3e-3},
    "comma": {"epochs": 8, "learning_rate": 2e-3},
}


@dataclass
class ExperimentScale:
    """How much work each experiment does.

    The defaults are the committed benchmark configuration; ``smoke()``
    returns a seconds-scale configuration used by the test suite and
    ``paper()`` approaches the paper's trial counts.
    """

    trials: int = 120
    num_inputs: int = 8
    classifier_models: Sequence[str] = ("lenet", "alexnet", "vgg11")
    large_classifier_models: Sequence[str] = ("vgg16", "resnet18", "squeezenet")
    steering_models: Sequence[str] = ("dave", "comma")
    include_large_models: bool = True
    profile_samples: int = 120
    seed: int = 0
    #: Worker processes for fault-injection campaigns (``run(workers=N)``).
    #: Campaign results are bit-identical for every value, so this is purely
    #: a wall-clock knob; 1 keeps everything in-process.
    workers: int = 1
    #: Route the sweep grids' paired campaigns through the process-wide
    #: campaign service (:func:`campaign_server`) — repeated
    #: (model × dtype × protection) cells across figures are then served
    #: from the content-addressed artifact store instead of re-running.
    #: Results are bit-identical either way; False calls the campaign
    #: engine directly.
    use_service: bool = True
    #: When set, each sweep cell runs **adaptively**: trials execute in
    #: waves and the cell stops once every criterion's CI half-width fits
    #: the target (``trials`` stays the hard budget).  Each stopped cell
    #: is a bit-exact prefix of its own fixed-budget run.
    target_half_width: Optional[float] = None
    #: Trials per adaptive wave (defaults to the engine's 10%-of-budget).
    wave_trials: Optional[int] = None
    #: With a target set, False lets the two arms of each paired cell stop
    #: independently (the protected arm's near-zero rates converge waves
    #: earlier); True stops both arms together, preserving full pairing.
    joint_stop: bool = True

    @classmethod
    def smoke(cls) -> "ExperimentScale":
        return cls(trials=25, num_inputs=4,
                   classifier_models=("lenet",),
                   large_classifier_models=(),
                   steering_models=("comma",),
                   include_large_models=False, profile_samples=40)

    @classmethod
    def paper(cls) -> "ExperimentScale":
        return cls(trials=3000, num_inputs=10, profile_samples=2000)

    def all_classifiers(self) -> List[str]:
        models = list(self.classifier_models)
        if self.include_large_models:
            models.extend(self.large_classifier_models)
        return models

    def all_models(self) -> List[str]:
        return self.all_classifiers() + list(self.steering_models)


@dataclass
class ExperimentResult:
    """One reproduced table or figure."""

    name: str
    paper_reference: str
    data: Dict[str, Any]
    rendered: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"=== {self.name} ({self.paper_reference}) ===\n{self.rendered}"


def get_prepared(model_name: str, scale: ExperimentScale,
                 **overrides) -> PreparedModel:
    """Build + train a model with the experiment-wide training config."""
    config = dict(TRAINING_CONFIG.get(model_name, {}))
    config.update(overrides)
    epochs = config.pop("epochs", 6)
    learning_rate = config.pop("learning_rate", 2e-3)
    return prepare_model(model_name, epochs=epochs,
                         learning_rate=learning_rate, seed=scale.seed,
                         **config)


def protect_with_ranger(prepared: PreparedModel, scale: ExperimentScale,
                        percentile: float = 100.0, policy: str = "clip"):
    """Profile on a training-set sample and apply Ranger.

    The activation profile is cached in the process-wide artifact store
    (keyed by model, profiling inputs and seed): the bound-percentile
    sweeps re-protect the same model many times, and the profile — the
    expensive part, one forward pass per profiling input — is identical
    across percentiles because the percentile is applied at bound
    *selection* time.
    """
    ranger = Ranger(percentile=percentile, policy=policy, seed=scale.seed)
    sample, _ = prepared.dataset.sample_train(scale.profile_samples,
                                              seed=scale.seed)
    store = artifact_store()
    key = ArtifactStore.ranger_profile_key(prepared.model, sample, scale.seed)
    profile = store.get("ranger_profile", key)
    if profile is None:
        profile = ranger.profile(prepared.model, sample)
        store.put("ranger_profile", key, profile)
    bounds = ranger.select_bounds(profile)
    protected, report = ranger.transform(prepared.model, bounds)
    return protected, ProtectionInfo(bounds=bounds, report=report,
                                     profile=profile)


#: Process-wide persistent campaign pools, one per worker count, shared by
#: every experiment in the process (see :func:`campaign_pool`).
_CAMPAIGN_POOLS: Dict[int, CampaignPool] = {}


def campaign_pool(scale: ExperimentScale) -> Optional[CampaignPool]:
    """The shared persistent worker pool for ``scale.workers``, or None.

    Experiment sweeps run campaigns back-to-back (every paired SDC figure
    is a grid of model × datatype × protection campaigns), so when the
    scale asks for worker processes the runner keeps one
    :class:`~repro.injection.pool.CampaignPool` alive per worker count
    instead of spawning (and warming) a fresh process pool per campaign.
    Returns ``None`` for ``workers <= 1`` — campaigns then run in-process
    exactly as before.  Pools are created lazily and shut down at
    interpreter exit; results are bit-identical with and without the pool.
    """
    if scale.workers <= 1:
        return None
    pool = _CAMPAIGN_POOLS.get(scale.workers)
    if pool is None or pool.closed:
        pool = CampaignPool(workers=scale.workers)
        _CAMPAIGN_POOLS[scale.workers] = pool
        atexit.register(pool.close)
    return pool


def campaign_pool_stats() -> Dict[int, Dict[str, int]]:
    """Aggregated :meth:`CampaignPool.stats` per live pool worker count.

    The runner prints these next to the artifact-store summary so the
    worker-cache hit rate and the shared-memory dispatch payload are
    observable per sweep.
    """
    return {workers: pool.stats()
            for workers, pool in sorted(_CAMPAIGN_POOLS.items())
            if not pool.closed}


#: One content-addressed artifact store shared by every experiment (and
#: every campaign server) in the process — cross-figure reuse of results,
#: golden caches and Ranger profiles happens through it.
_ARTIFACT_STORE: Optional[ArtifactStore] = None

#: Process-wide campaign servers, one per worker count (each borrows the
#: matching persistent pool and shares :data:`_ARTIFACT_STORE`).
_CAMPAIGN_SERVERS: Dict[int, CampaignServer] = {}


def artifact_store() -> ArtifactStore:
    """The process-wide artifact store (created lazily, in-memory)."""
    global _ARTIFACT_STORE
    if _ARTIFACT_STORE is None:
        _ARTIFACT_STORE = ArtifactStore()
    return _ARTIFACT_STORE


def campaign_server(scale: ExperimentScale) -> CampaignServer:
    """The shared campaign server for ``scale.workers``.

    Sweep grids submit their paired campaigns here instead of calling the
    engine directly: every server shares one artifact store, so a
    (model × dtype × protection) cell that already ran — in *any*
    experiment of the process — is served from the result cache, and
    overlapping cells reuse stored golden activation caches.  Servers are
    created lazily per worker count (borrowing the matching persistent
    :func:`campaign_pool`) and close at interpreter exit.
    """
    server = _CAMPAIGN_SERVERS.get(scale.workers)
    if server is None or server._closed:
        server = CampaignServer(store=artifact_store(),
                                pool=campaign_pool(scale))
        _CAMPAIGN_SERVERS[scale.workers] = server
        atexit.register(server.close)
    return server


def paired_sdc_rates(prepared: PreparedModel, protected, scale: ExperimentScale,
                     fault_model: Optional[FaultModel] = None,
                     dtype_policy=None, criteria=None
                     ) -> Tuple[Dict[str, float], Dict[str, float]]:
    """SDC rates (percent) per criterion for the original and protected model,
    using the same fault plans on both.

    By default the paired campaign is submitted to the process-wide
    campaign service (:func:`campaign_server`): results are bit-identical
    to the direct path, and cells repeated across figures come back from
    the artifact store's result cache.  ``scale.target_half_width`` makes
    each cell stop adaptively on its own criteria
    (``scale.joint_stop=False`` additionally lets the two arms stop
    independently).
    """
    inputs, _ = prepared.correctly_predicted_inputs(scale.num_inputs,
                                                    seed=scale.seed)
    fault_model = fault_model or SingleBitFlip(FIXED32)
    dtype_policy = (dtype_policy if dtype_policy is not None
                    else fixed32_policy())
    if scale.use_service:
        request = request_from_campaign(
            prepared.model, inputs, fault_model=fault_model,
            criteria=criteria, dtype_policy=dtype_policy, seed=scale.seed,
            protected_model=protected, trials=scale.trials,
            workers=scale.workers, use_pool=scale.workers > 1,
            target_half_width=scale.target_half_width,
            wave_trials=scale.wave_trials, joint_stop=scale.joint_stop)
        base, guarded = campaign_server(scale).submit(request).result()
    else:
        base, guarded = compare_protection(
            prepared.model, protected, inputs, fault_model=fault_model,
            criteria=criteria, dtype_policy=dtype_policy,
            trials=scale.trials, seed=scale.seed, workers=scale.workers,
            pool=campaign_pool(scale),
            target_half_width=scale.target_half_width,
            wave_trials=scale.wave_trials, joint_stop=scale.joint_stop)
    original = {c: base.sdc_rate_percent(c) for c in base.criteria}
    with_ranger = {c: guarded.sdc_rate_percent(c) for c in guarded.criteria}
    return original, with_ranger
