"""Campaign-throughput experiments: incremental execution and worker fan-out.

The paper's headline results are all driven by fault-injection campaigns of
thousands of trials.  Two engine features accelerate those campaigns, and
each has its own experiment here:

* **Incremental execution** (``run_campaign_throughput``) — golden activation
  cache + partial re-execution of the fault's downstream cone (see
  ``Executor.run_from``) replays each trial bit-identically to a full faulty
  run while re-evaluating only the nodes the fault can actually reach.  The
  speedup is strongly model- and datatype-dependent, because partial
  re-execution wins exactly where faults get *masked* (a corrupted value
  squashed by a ReLU, a max-pool, a Ranger clip, or fixed-point quantization
  kills the cone early): SqueezeNet-style feed-forward chains mask
  aggressively (up to ~8x under fixed16), while ResNet's skip connections
  carry every surviving fault to the output (~2x).

* **Batched multi-trial replay** (the ``batched`` section of
  ``run_campaign_throughput``) — trials that share an *input* are stacked
  along the batch dimension and replayed in one executor call
  (``run(batch_trials=B)``), so every re-evaluated node costs one BLAS
  call over its dirty rows instead of one call per trial.  Since the
  union-cone packer (``pack_batches``), trials no longer need to share a
  fault site: each row enters the replay at its own site and batches fill
  to (near) the full width B, which is why the table reports the *batch
  occupancy* (mean rows per batched call), the fraction of trials batched,
  the union-cone overhead (extra cone nodes the union walks beyond the
  largest member) and the packing cost as a fraction of campaign wall
  time.  Batched results carry the ``ULP_TOLERANT`` equivalence mode (BLAS
  kernels are not bit-stable across batch shapes); the experiment asserts
  per-criterion SDC-count agreement with the bit-exact incremental
  reference on every run, so verdict-set equivalence is re-checked
  wherever the benchmark executes.  The section also times the batched
  replay with the sparse elementwise delta frontier (the default) against
  the legacy dense frontier, reporting the sparse-vs-dense ratio, the
  fraction of per-element work the sparse path skipped, and the number of
  node evaluations that had to densify a delta.

* **Persistent campaign pool** (the ``pool`` section) — experiment sweeps
  run campaigns back-to-back, and a fresh ``run(workers=N)`` pays the
  process-pool spawn plus per-worker campaign rebuild every time.
  ``CampaignPool`` keeps workers (and their models + golden caches) alive
  across campaigns; the experiment times repeated same-config campaigns
  under both backends and asserts the pooled counts stay bit-identical to
  the fresh ones.

* **Multiprocess fan-out** (``run_parallel_scaling``) — once the
  ``(input, plan)`` pairs are pre-sampled, trials are embarrassingly
  parallel: ``FaultInjectionCampaign.run(workers=N)`` shards them across N
  worker processes that each rebuild model, executor and golden caches from
  a picklable campaign spec.  Per-trial RNG streams derived from the
  campaign seed make the sharded results bit-identical to the serial path
  for every worker count (this experiment asserts exactly that while it
  times the configurations), so scaling is purely a wall-clock knob.  The
  measured speedup is bounded by the machine's cores and by the per-worker
  fixed cost of rebuilding the golden caches.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis import render_table
from ..injection import CampaignPool, FaultInjectionCampaign, SingleBitFlip
from ..quantization import FIXED16, FIXED32, fixed16_policy, fixed32_policy
from .common import (
    ExperimentResult,
    ExperimentScale,
    get_prepared,
    protect_with_ranger,
)

#: Models the throughput benchmark targets, in preference order (the deep
#: models of the zoo).  Models absent from the scale's classifier list are
#: skipped, falling back to the first available classifier so the smoke
#: configuration still exercises the pipeline.
DEEP_MODELS = ("resnet18", "squeezenet")

#: Fixed-point configurations measured: the paper's primary 32-bit format
#: and the Section-V 16-bit format.
DATATYPE_CONFIGS = {
    "fixed32": (FIXED32, fixed32_policy),
    "fixed16": (FIXED16, fixed16_policy),
}


def _timed_run(campaign: FaultInjectionCampaign, plans, incremental: bool):
    start = time.perf_counter()
    result = campaign.run(plans=plans, incremental=incremental)
    return result, time.perf_counter() - start


def _measure_pair(model, inputs: np.ndarray, fmt, policy, trials: int,
                  seed: int) -> Dict[str, float]:
    """Full vs. incremental timings for one (model, datatype) campaign.

    Two same-seed campaigns are built so the full and incremental paths
    replay the exact same fault sequence; their per-trial SDC classifications
    must then agree exactly (the engine's bit-identity guarantee).
    """
    full_campaign = FaultInjectionCampaign(
        model, inputs, fault_model=SingleBitFlip(fmt), dtype_policy=policy,
        seed=seed)
    inc_campaign = FaultInjectionCampaign(
        model, inputs, fault_model=SingleBitFlip(fmt), dtype_policy=policy,
        seed=seed)
    plans = full_campaign.generate_plans(trials)
    inc_campaign.generate_plans(trials)  # consume the same RNG draws
    full_result, full_seconds = _timed_run(full_campaign, plans,
                                           incremental=False)
    inc_result, inc_seconds = _timed_run(inc_campaign, plans,
                                         incremental=True)
    if full_result.sdc_counts != inc_result.sdc_counts:
        raise RuntimeError(
            f"incremental replay diverged from full re-execution on "
            f"'{model.name}': {inc_result.sdc_counts} != "
            f"{full_result.sdc_counts}")
    return {
        "full_seconds": full_seconds,
        "incremental_seconds": inc_seconds,
        "full_trials_per_sec": trials / full_seconds,
        "incremental_trials_per_sec": trials / inc_seconds,
        "speedup": full_seconds / inc_seconds,
        "recompute_fraction": inc_result.recompute_fraction or 0.0,
    }


#: Batch width of the batched-replay throughput section.
BATCH_WIDTH = 32

#: Timing repeats per path in the batched section; the fastest repeat is
#: reported (deterministic replay engines — repeats only shed machine
#: noise, which otherwise dominates the single-CPU container's ratios:
#: identical configs measured ±10-15% wall clock run to run).
BATCHED_TIMING_REPEATS = 3

#: Models of the batched-replay section: the deep models plus VGG-11,
#: whose full-width convolutions give the BLAS the most to amortize per
#: stacked batch (measured ~2-3x; the width-0.5 SqueezeNet preset and
#: ResNet's skip-kept-alive cones sit lower).
BATCHED_MODELS = ("vgg11",) + DEEP_MODELS

#: Trials of the batched section, as a multiple of the scale's trial count:
#: batching pays off proportionally to how many trials share an
#: (input, fault site), so the batched comparison runs a longer campaign
#: (the regime real SDC studies operate in — the paper uses 3000/model).
BATCHED_TRIALS_FACTOR = 5

#: Inputs of the batched section (kept small for the same occupancy reason).
BATCHED_NUM_INPUTS = 2


def _measure_batched(model, inputs: np.ndarray, fmt, policy, trials: int,
                     seed: int) -> Dict[str, float]:
    """Incremental vs. batched timings for one (model, datatype) campaign.

    Both campaigns replay the same pre-sampled plans; the batched run's
    per-criterion SDC counts must equal the bit-exact incremental
    reference's (the ULP_TOLERANT verdict-agreement guarantee), which is
    asserted on every benchmark run.

    The batched path is timed twice — with sparse elementwise deltas (the
    default) and with the legacy dense frontier (``sparse_delta=False``) —
    so the table reports the sparse-vs-dense ratio alongside the fraction
    of per-element work the sparse representation skipped and how many
    node evaluations had to densify a delta.  Both runs must agree with
    the incremental reference, re-checking the sparse path's verdict
    guarantee wherever the benchmark executes.
    """
    inc_campaign = FaultInjectionCampaign(
        model, inputs, fault_model=SingleBitFlip(fmt), dtype_policy=policy,
        seed=seed)
    batched_campaign = FaultInjectionCampaign(
        model, inputs, fault_model=SingleBitFlip(fmt), dtype_policy=policy,
        seed=seed)
    plans = inc_campaign.generate_plans(trials)
    batched_campaign.generate_plans(trials)  # consume the same RNG draws
    # Both campaigns are deterministic replay engines, so the ratio is
    # timing-noise bound: time each path BATCHED_TIMING_REPEATS times and
    # keep the fastest (standard best-of-N benchmarking; later repeats
    # reuse the lazily-built golden caches, which both paths share).
    inc_result = inc_seconds = None
    for _ in range(BATCHED_TIMING_REPEATS):
        result, seconds = _timed_run(inc_campaign, plans, incremental=True)
        if inc_result is not None and result.sdc_counts != inc_result.sdc_counts:
            raise RuntimeError(
                f"incremental replay is not deterministic on "
                f"'{model.name}': {result.sdc_counts} != "
                f"{inc_result.sdc_counts}")
        inc_result = result
        inc_seconds = seconds if inc_seconds is None else min(inc_seconds,
                                                              seconds)
    # Cold packing cost, timed apart from the replay (the 2%-of-wall-time
    # budget guard in benchmarks/test_campaign_throughput.py watches it).
    start = time.perf_counter()
    packing = batched_campaign.pack_batches(plans, BATCH_WIDTH)
    pack_seconds = time.perf_counter() - start
    batched_result = batched_seconds = None
    for _ in range(BATCHED_TIMING_REPEATS):
        start = time.perf_counter()
        result = batched_campaign.run(plans=plans, batch_trials=BATCH_WIDTH,
                                      packing=packing)
        seconds = time.perf_counter() - start
        if result.sdc_counts != inc_result.sdc_counts:
            raise RuntimeError(
                f"batched replay verdicts diverged from the incremental "
                f"reference on '{model.name}': {result.sdc_counts} != "
                f"{inc_result.sdc_counts}")
        batched_result = result
        batched_seconds = seconds if batched_seconds is None \
            else min(batched_seconds, seconds)
    dense_seconds = None
    for _ in range(BATCHED_TIMING_REPEATS):
        start = time.perf_counter()
        result = batched_campaign.run(plans=plans, batch_trials=BATCH_WIDTH,
                                      packing=packing, sparse_delta=False)
        seconds = time.perf_counter() - start
        if result.sdc_counts != inc_result.sdc_counts:
            raise RuntimeError(
                f"dense batched replay verdicts diverged from the "
                f"incremental reference on '{model.name}': "
                f"{result.sdc_counts} != {inc_result.sdc_counts}")
        dense_seconds = seconds if dense_seconds is None \
            else min(dense_seconds, seconds)
    return {
        "incremental_seconds": inc_seconds,
        "batched_seconds": batched_seconds,
        "incremental_trials_per_sec": trials / inc_seconds,
        "batched_trials_per_sec": trials / batched_seconds,
        "speedup": inc_seconds / batched_seconds,
        "max_ulp_deviation": batched_result.max_ulp_deviation,
        "mean_occupancy": batched_result.mean_batch_occupancy or 0.0,
        "batched_fraction": batched_result.batched_fraction,
        "union_overhead_nodes": batched_result.union_overhead_nodes,
        "pack_seconds": pack_seconds,
        "pack_fraction": pack_seconds / (batched_seconds + pack_seconds),
        "dense_batched_seconds": dense_seconds,
        "sparse_speedup": dense_seconds / batched_seconds,
        "sparse_fraction": batched_result.sparse_evaluated_fraction or 0.0,
        "dense_fallback_nodes": batched_result.dense_fallback_nodes,
    }


#: Pool-reuse section: back-to-back same-config campaigns and worker count.
POOL_REPEATS = 3
POOL_WORKERS = 2


def _measure_pool_reuse(prepared, scale) -> Dict[str, float]:
    """Fresh per-campaign fan-out vs. one persistent pool, back-to-back.

    Runs the same pre-sampled plans ``POOL_REPEATS`` times under each
    backend with a fresh same-seed campaign per repeat (every fresh run
    pays its own pool spawn and worker-side campaign rebuild; the pooled
    runs share one spawn and reuse the worker-side campaign after the
    first).  Per-criterion counts must stay identical across every run —
    the pool's bit-identity guarantee, asserted wherever the benchmark
    executes.
    """
    inputs, _ = prepared.correctly_predicted_inputs(scale.num_inputs,
                                                    seed=scale.seed)

    def fresh_campaign() -> FaultInjectionCampaign:
        return FaultInjectionCampaign(
            prepared.model, inputs, fault_model=SingleBitFlip(FIXED32),
            dtype_policy=fixed32_policy(), seed=scale.seed)

    campaign = fresh_campaign()
    plans = campaign.generate_plans(scale.trials)
    reference = None

    def check(result) -> None:
        nonlocal reference
        if reference is None:
            reference = result
        elif result.sdc_counts != reference.sdc_counts:
            raise RuntimeError(
                f"pooled campaign diverged from the fresh reference on "
                f"'{prepared.model.name}': {result.sdc_counts} != "
                f"{reference.sdc_counts}")

    start = time.perf_counter()
    for position in range(POOL_REPEATS):
        check((campaign if position == 0 else fresh_campaign()).run(
            plans=plans, workers=POOL_WORKERS))
    fresh_seconds = time.perf_counter() - start
    with CampaignPool(workers=POOL_WORKERS) as pool:
        start = time.perf_counter()
        for _ in range(POOL_REPEATS):
            check(fresh_campaign().run(plans=plans, pool=pool))
        pooled_seconds = time.perf_counter() - start
    return {
        "fresh_seconds": fresh_seconds,
        "pooled_seconds": pooled_seconds,
        "speedup": fresh_seconds / pooled_seconds,
        "campaigns": POOL_REPEATS,
        "workers": POOL_WORKERS,
    }


def run_campaign_throughput(scale: Optional[ExperimentScale] = None,
                            models: Optional[Sequence[str]] = None,
                            ) -> ExperimentResult:
    """Trials/sec of incremental vs. full campaigns on the deep models."""
    scale = scale or ExperimentScale()
    available = scale.all_classifiers()
    if models is None:
        models = [m for m in DEEP_MODELS if m in available]
        if not models:
            models = list(available[:1])
    trials = scale.trials

    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for model_name in models:
        prepared = get_prepared(model_name, scale)
        protected, _ = protect_with_ranger(prepared, scale)
        inputs, _ = prepared.correctly_predicted_inputs(scale.num_inputs,
                                                        seed=scale.seed)
        data[model_name] = {}
        for dtype_name, (fmt, policy_factory) in DATATYPE_CONFIGS.items():
            entry: Dict[str, Dict[str, float]] = {}
            for variant, target in (("unprotected", prepared.model),
                                    ("protected", protected)):
                stats = _measure_pair(target, inputs, fmt, policy_factory(),
                                      trials, seed=scale.seed)
                entry[variant] = stats
                rows.append([model_name, dtype_name, variant,
                             stats["full_trials_per_sec"],
                             stats["incremental_trials_per_sec"],
                             stats["speedup"],
                             stats["recompute_fraction"]])
            paired_full = (entry["unprotected"]["full_seconds"]
                           + entry["protected"]["full_seconds"])
            paired_inc = (entry["unprotected"]["incremental_seconds"]
                          + entry["protected"]["incremental_seconds"])
            entry["paired_speedup"] = paired_full / paired_inc
            data[model_name][dtype_name] = entry
            rows.append([model_name, dtype_name, "paired",
                         2 * trials / paired_full, 2 * trials / paired_inc,
                         entry["paired_speedup"], float("nan")])

    rendered = render_table(
        ["model", "datatype", "variant", "full trials/s", "incr trials/s",
         "speedup", "recompute frac"],
        rows,
        title=(f"Campaign throughput — incremental vs. full re-execution "
               f"({trials} trials, {scale.num_inputs} inputs)"))

    # Batched multi-trial replay vs. the incremental reference, on a
    # longer plan list (batching amortizes with per-site occupancy).
    batched_trials = trials * BATCHED_TRIALS_FACTOR
    batched_rows: List[List] = []
    batched_models = [m for m in BATCHED_MODELS if m in available]
    if not batched_models:
        batched_models = list(models)
    for model_name in batched_models:
        prepared = get_prepared(model_name, scale)
        inputs, _ = prepared.correctly_predicted_inputs(BATCHED_NUM_INPUTS,
                                                        seed=scale.seed)
        for dtype_name, (fmt, policy_factory) in DATATYPE_CONFIGS.items():
            stats = _measure_batched(prepared.model, inputs, fmt,
                                     policy_factory(), batched_trials,
                                     seed=scale.seed)
            data.setdefault(model_name, {}).setdefault(dtype_name,
                                                       {})["batched"] = stats
            batched_rows.append([model_name, dtype_name,
                                 stats["incremental_trials_per_sec"],
                                 stats["batched_trials_per_sec"],
                                 stats["speedup"],
                                 stats["sparse_speedup"],
                                 100.0 * stats["sparse_fraction"],
                                 stats["dense_fallback_nodes"],
                                 stats["mean_occupancy"],
                                 stats["batched_fraction"],
                                 stats["union_overhead_nodes"],
                                 100.0 * stats["pack_fraction"],
                                 stats["max_ulp_deviation"]])
    rendered += "\n\n" + render_table(
        ["model", "datatype", "incr trials/s",
         f"batched[B={BATCH_WIDTH}] trials/s", "speedup",
         "sparse speedup", "sparse skip %", "fallback evals",
         "occupancy rows/batch", "batched frac", "union overhead",
         "pack %", "max ulp dev"],
        batched_rows,
        title=(f"Campaign throughput — union-cone batched (ULP_TOLERANT, "
               f"sparse deltas) vs. incremental replay ({batched_trials} "
               f"trials, {BATCHED_NUM_INPUTS} inputs)"))

    # Persistent pool vs. fresh fan-out over back-to-back campaigns.
    pool_model = "squeezenet" if "squeezenet" in available else models[0]
    pool_stats = _measure_pool_reuse(get_prepared(pool_model, scale), scale)
    data["pool"] = dict(pool_stats, model=pool_model)
    rendered += "\n\n" + render_table(
        ["model", "campaigns", "workers", "fresh s", "pooled s",
         "pool speedup"],
        [[pool_model, POOL_REPEATS, POOL_WORKERS,
          pool_stats["fresh_seconds"], pool_stats["pooled_seconds"],
          pool_stats["speedup"]]],
        title=("Campaign throughput — persistent CampaignPool vs. fresh "
               "per-campaign worker pools (same-config back-to-back "
               "campaigns, bit-identity asserted)"))
    return ExperimentResult(name="campaign_throughput",
                            paper_reference="Sec. IV campaign methodology",
                            data=data, rendered=rendered)


#: Worker counts the scaling experiment sweeps.
PARALLEL_WORKER_COUNTS = (1, 2, 4)


def run_parallel_scaling(scale: Optional[ExperimentScale] = None,
                         models: Optional[Sequence[str]] = None,
                         worker_counts: Optional[Sequence[int]] = None,
                         ) -> ExperimentResult:
    """Trials/sec of multiprocess campaign fan-out vs. the serial path.

    One set of plans is pre-sampled per model and replayed at every worker
    count by a *fresh* same-seed campaign (so each configuration pays its
    own golden-cache build, exactly like a worker process does).  The run
    raises if any configuration's per-criterion counts deviate from the
    serial reference — the determinism guarantee, checked en passant on
    every benchmark run.
    """
    scale = scale or ExperimentScale()
    worker_counts = tuple(worker_counts or PARALLEL_WORKER_COUNTS)
    available = scale.all_classifiers()
    if models is None:
        models = [m for m in ("squeezenet",) if m in available]
        if not models:
            models = list(available[:1])
    trials = scale.trials
    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)

    rows: List[List] = []
    data: Dict[str, Dict] = {"cpus": cpus}
    for model_name in models:
        prepared = get_prepared(model_name, scale)
        inputs, _ = prepared.correctly_predicted_inputs(scale.num_inputs,
                                                        seed=scale.seed)

        def fresh_campaign() -> FaultInjectionCampaign:
            return FaultInjectionCampaign(
                prepared.model, inputs, fault_model=SingleBitFlip(FIXED32),
                dtype_policy=fixed32_policy(), seed=scale.seed)

        # The plan-sampling campaign doubles as the first timed configuration
        # (its lazy golden caches are still unbuilt, so it is indistinguishable
        # from a fresh one); later configurations get fresh same-seed campaigns
        # so each pays its own cache build.
        campaign = fresh_campaign()
        plans = campaign.generate_plans(trials)
        entry: Dict[int, Dict[str, float]] = {}
        reference = None
        for position, workers in enumerate(worker_counts):
            if position:
                campaign = fresh_campaign()
            start = time.perf_counter()
            result = campaign.run(plans=plans, workers=workers)
            seconds = time.perf_counter() - start
            if reference is None:
                reference = result
            elif result.sdc_counts != reference.sdc_counts:
                raise RuntimeError(
                    f"parallel campaign diverged from the "
                    f"workers={worker_counts[0]} reference on "
                    f"'{model_name}' with workers={workers}: "
                    f"{result.sdc_counts} != {reference.sdc_counts}")
            entry[workers] = {
                "seconds": seconds,
                "trials_per_sec": trials / seconds,
            }
        base_tps = entry[worker_counts[0]]["trials_per_sec"]
        for workers in worker_counts:
            stats = entry[workers]
            stats["speedup"] = stats["trials_per_sec"] / base_tps
            rows.append([model_name, workers, stats["trials_per_sec"],
                         stats["speedup"]])
        data[model_name] = entry

    rendered = render_table(
        ["model", "workers", "trials/s",
         f"speedup vs {worker_counts[0]} worker(s)"],
        rows,
        title=(f"Campaign fan-out scaling — {trials} trials, "
               f"{scale.num_inputs} inputs, {cpus} CPU(s) available"))
    return ExperimentResult(name="parallel_scaling",
                            paper_reference="Sec. IV campaign methodology",
                            data=data, rendered=rendered)
