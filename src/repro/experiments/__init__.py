"""Experiment definitions — one per table / figure of the paper."""

from .adaptive_experiments import run_adaptive_efficiency
from .common import (
    ExperimentResult,
    ExperimentScale,
    TRAINING_CONFIG,
    get_prepared,
    paired_sdc_rates,
    protect_with_ranger,
)
from .comparison_experiments import (
    run_fig8_hong_comparison,
    run_table6_technique_comparison,
)
from .overhead_experiments import (
    run_memory_overhead,
    run_table2_accuracy,
    run_table3_insertion_time,
    run_table4_flops_overhead,
)
from .profiling_experiments import run_fig4_bound_convergence
from .runner import EXPERIMENT_REGISTRY, results_to_markdown, run_all_experiments
from .sdc_experiments import (
    run_fig6_classifier_sdc,
    run_fig7_steering_sdc,
    run_fig9_fixed16_sdc,
    run_fig11_multibit_classifiers,
    run_fig12_multibit_steering,
)
from .throughput_experiments import run_campaign_throughput, run_parallel_scaling
from .tradeoff_experiments import (
    run_fig10_bound_tradeoff,
    run_sec6c_design_alternatives,
)

__all__ = [
    "EXPERIMENT_REGISTRY",
    "ExperimentResult",
    "ExperimentScale",
    "TRAINING_CONFIG",
    "get_prepared",
    "paired_sdc_rates",
    "protect_with_ranger",
    "results_to_markdown",
    "run_adaptive_efficiency",
    "run_all_experiments",
    "run_campaign_throughput",
    "run_fig4_bound_convergence",
    "run_fig6_classifier_sdc",
    "run_fig7_steering_sdc",
    "run_fig8_hong_comparison",
    "run_fig9_fixed16_sdc",
    "run_fig10_bound_tradeoff",
    "run_fig11_multibit_classifiers",
    "run_fig12_multibit_steering",
    "run_memory_overhead",
    "run_parallel_scaling",
    "run_sec6c_design_alternatives",
    "run_table2_accuracy",
    "run_table3_insertion_time",
    "run_table4_flops_overhead",
    "run_table6_technique_comparison",
]
