"""SDC-rate experiments: Figures 6, 7, 9, 11 and 12 of the paper.

* Fig. 6 — SDC rates of the classifier models, original vs. Ranger, under
  single bit flips with the 32-bit fixed-point datatype.
* Fig. 7 — SDC rates of the two steering models at the four deviation
  thresholds (15/30/60/120 degrees).
* Fig. 9 — the same comparison under the 16-bit (Q14.2) fixed-point datatype
  (RQ4).
* Figs. 11/12 — multi-bit flips (2–5 independent bit flips) on classifier and
  steering models respectively.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.reporting import render_series, render_table
from ..injection import MultiBitFlip, SingleBitFlip, SteeringDeviation
from ..injection.sdc import STEERING_THRESHOLDS, TopKMisclassification
from ..quantization import FIXED16, FIXED32, fixed16_policy, fixed32_policy
from .common import (
    ExperimentResult,
    ExperimentScale,
    get_prepared,
    paired_sdc_rates,
    protect_with_ranger,
)


def run_fig6_classifier_sdc(scale: Optional[ExperimentScale] = None
                            ) -> ExperimentResult:
    """Fig. 6: classifier SDC rates with and without Ranger (top-1 and top-5)."""
    scale = scale or ExperimentScale()
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for model_name in scale.all_classifiers():
        prepared = get_prepared(model_name, scale)
        protected, _ = protect_with_ranger(prepared, scale)
        criteria = [TopKMisclassification(k=1)]
        if prepared.dataset.num_classes and prepared.dataset.num_classes >= 5:
            criteria.append(TopKMisclassification(k=5))
        original, with_ranger = paired_sdc_rates(prepared, protected, scale,
                                                 criteria=criteria)
        data[model_name] = {"original": original, "ranger": with_ranger}
        for criterion in original:
            rows.append([model_name, criterion, original[criterion],
                         with_ranger[criterion]])
    rendered = render_table(
        ["model", "criterion", "original SDC %", "Ranger SDC %"], rows,
        title="Fig. 6 — classifier SDC rates (single bit flip, 32-bit fixed point)")
    return ExperimentResult(name="fig6_classifier_sdc", paper_reference="Fig. 6",
                            data=data, rendered=rendered)


def run_fig7_steering_sdc(scale: Optional[ExperimentScale] = None,
                          dave_output_mode: str = "radians"
                          ) -> ExperimentResult:
    """Fig. 7: steering-model SDC rates at 15/30/60/120-degree thresholds."""
    scale = scale or ExperimentScale()
    rows = []
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    for model_name in scale.steering_models:
        overrides = {}
        if model_name == "dave":
            overrides["output_mode"] = dave_output_mode
        prepared = get_prepared(model_name, scale, **overrides)
        protected, _ = protect_with_ranger(prepared, scale)
        criteria = [SteeringDeviation(threshold_degrees=t,
                                      angle_unit=prepared.model.angle_unit)
                    for t in STEERING_THRESHOLDS]
        original, with_ranger = paired_sdc_rates(prepared, protected, scale,
                                                 criteria=criteria)
        data[model_name] = {"original": original, "ranger": with_ranger}
        for criterion in original:
            rows.append([model_name, criterion, original[criterion],
                         with_ranger[criterion]])
    rendered = render_table(
        ["model", "threshold", "original SDC %", "Ranger SDC %"], rows,
        title="Fig. 7 — steering-model SDC rates by deviation threshold")
    return ExperimentResult(name="fig7_steering_sdc", paper_reference="Fig. 7",
                            data=data, rendered=rendered)


def run_fig9_fixed16_sdc(scale: Optional[ExperimentScale] = None
                         ) -> ExperimentResult:
    """Fig. 9: SDC rates under the 16-bit (Q14.2) fixed-point datatype."""
    scale = scale or ExperimentScale()
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for model_name in scale.all_models():
        prepared = get_prepared(model_name, scale)
        protected, _ = protect_with_ranger(prepared, scale)
        original, with_ranger = paired_sdc_rates(
            prepared, protected, scale,
            fault_model=SingleBitFlip(FIXED16),
            dtype_policy=fixed16_policy())
        # Report the average over the model's criteria (the paper reports
        # per-model averages in Fig. 9).
        avg_original = float(np.mean(list(original.values())))
        avg_ranger = float(np.mean(list(with_ranger.values())))
        data[model_name] = {"original": avg_original, "ranger": avg_ranger}
        rows.append([model_name, avg_original, avg_ranger])
    rendered = render_table(
        ["model", "original SDC %", "Ranger SDC %"], rows,
        title="Fig. 9 — SDC rates with the 16-bit fixed-point datatype")
    return ExperimentResult(name="fig9_fixed16_sdc", paper_reference="Fig. 9",
                            data=data, rendered=rendered)


def _multibit_experiment(model_names: Sequence[str],
                         scale: ExperimentScale,
                         bit_counts: Sequence[int]) -> Dict[str, Dict[str, List[float]]]:
    data: Dict[str, Dict[str, List[float]]] = {}
    for model_name in model_names:
        prepared = get_prepared(model_name, scale)
        protected, _ = protect_with_ranger(prepared, scale)
        original_series: List[float] = []
        ranger_series: List[float] = []
        for bits in bit_counts:
            original, with_ranger = paired_sdc_rates(
                prepared, protected, scale,
                fault_model=MultiBitFlip(num_bits=bits, fmt=FIXED32))
            original_series.append(float(np.mean(list(original.values()))))
            ranger_series.append(float(np.mean(list(with_ranger.values()))))
        data[model_name] = {"original": original_series,
                            "ranger": ranger_series}
    return data


def run_fig11_multibit_classifiers(scale: Optional[ExperimentScale] = None,
                                   bit_counts: Sequence[int] = (2, 3, 4, 5),
                                   models: Optional[Sequence[str]] = None
                                   ) -> ExperimentResult:
    """Fig. 11: classifier SDC rates under 2–5 independent bit flips.

    The paper evaluates LeNet and ResNet-18; the default here follows the
    scale's classifier list restricted to those two when available.
    """
    scale = scale or ExperimentScale()
    if models is None:
        preferred = [m for m in ("lenet", "resnet18") if m in scale.all_classifiers()]
        models = preferred or list(scale.classifier_models)[:1]
    data = _multibit_experiment(models, scale, bit_counts)
    series = {}
    for model_name, values in data.items():
        series[f"{model_name} (original)"] = values["original"]
        series[f"{model_name} (ranger)"] = values["ranger"]
    rendered = render_series(series, [f"{b} bit" for b in bit_counts],
                             title="Fig. 11 — classifier SDC % under multi-bit flips")
    return ExperimentResult(name="fig11_multibit_classifiers",
                            paper_reference="Fig. 11",
                            data={"bit_counts": list(bit_counts), "models": data},
                            rendered=rendered)


def run_fig12_multibit_steering(scale: Optional[ExperimentScale] = None,
                                bit_counts: Sequence[int] = (2, 3, 4, 5)
                                ) -> ExperimentResult:
    """Fig. 12: steering-model SDC rates under 2–5 independent bit flips."""
    scale = scale or ExperimentScale()
    data = _multibit_experiment(scale.steering_models, scale, bit_counts)
    series = {}
    for model_name, values in data.items():
        series[f"{model_name} (original)"] = values["original"]
        series[f"{model_name} (ranger)"] = values["ranger"]
    rendered = render_series(series, [f"{b} bit" for b in bit_counts],
                             title="Fig. 12 — steering-model SDC % under multi-bit flips")
    return ExperimentResult(name="fig12_multibit_steering",
                            paper_reference="Fig. 12",
                            data={"bit_counts": list(bit_counts), "models": data},
                            rendered=rendered)
