"""Profiling experiment: Fig. 4 — convergence of restriction bounds.

The paper's Fig. 4 shows, for VGG16's 13 activation layers, the maximum
activation value observed as a function of how much training data is
profiled, normalized to the global maximum.  The claim is that a ~20% sample
of the training data already captures the full value range, so deriving
bounds is a cheap one-time cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.reporting import render_series
from ..core.profiler import ActivationProfiler
from .common import ExperimentResult, ExperimentScale, get_prepared


def run_fig4_bound_convergence(scale: Optional[ExperimentScale] = None,
                               model_name: str = "vgg16",
                               fractions: Sequence[float] = (0.05, 0.1, 0.2,
                                                             0.4, 0.6, 0.8, 1.0)
                               ) -> ExperimentResult:
    """Fig. 4: per-layer observed-maximum convergence vs. profiling fraction."""
    scale = scale or ExperimentScale()
    prepared = get_prepared(model_name, scale)
    profiler = ActivationProfiler(prepared.model, seed=scale.seed)
    sample, _ = prepared.dataset.sample_train(
        max(scale.profile_samples, 20), seed=scale.seed)
    curves = profiler.convergence_curve(sample, fractions=fractions)

    # Also report the mean curve across layers (the visual takeaway of Fig. 4).
    mean_curve = np.mean(np.array(list(curves.values())), axis=0).tolist()
    series = dict(curves)
    series["mean over layers"] = mean_curve
    rendered = render_series(series, [f"{f:.0%}" for f in sorted(set(fractions))],
                             title=f"Fig. 4 — normalized max activation vs. "
                                   f"profiling fraction ({model_name})")
    data = {"model": model_name, "fractions": sorted(set(float(f) for f in fractions)),
            "curves": curves, "mean_curve": mean_curve,
            "samples": len(sample)}
    return ExperimentResult(name="fig4_bound_convergence",
                            paper_reference="Fig. 4", data=data,
                            rendered=rendered)
