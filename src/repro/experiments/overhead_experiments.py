"""Accuracy and overhead experiments: Tables II, III and IV.

* Table II — fault-free accuracy of every model with and without Ranger
  (the paper's claim: identical, occasionally marginally better).
* Table III — wall-clock time to insert Ranger into each model.
* Table IV — FLOPs overhead of the inserted range-restriction operators.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..analysis import evaluate_accuracy, protection_overhead, render_table
from .common import (
    ExperimentResult,
    ExperimentScale,
    get_prepared,
    protect_with_ranger,
)


def run_table2_accuracy(scale: Optional[ExperimentScale] = None
                        ) -> ExperimentResult:
    """Table II: validation accuracy with and without Ranger (no faults)."""
    scale = scale or ExperimentScale()
    rows = []
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    for model_name in scale.all_models():
        prepared = get_prepared(model_name, scale)
        protected, _ = protect_with_ranger(prepared, scale)
        x_val, y_val = prepared.dataset.x_val, prepared.dataset.y_val
        without = evaluate_accuracy(prepared.model, x_val, y_val)
        with_ranger = evaluate_accuracy(protected, x_val, y_val)
        data[model_name] = {"without": without.as_dict(),
                            "with": with_ranger.as_dict()}
        for metric in without.as_dict():
            before = without.as_dict()[metric]
            after = with_ranger.as_dict()[metric]
            rows.append([model_name, metric, before, after, after - before])
    rendered = render_table(
        ["model", "metric", "w/o Ranger", "w/ Ranger", "diff"], rows,
        title="Table II — fault-free accuracy with and without Ranger",
        precision=4)
    return ExperimentResult(name="table2_accuracy", paper_reference="Table II",
                            data=data, rendered=rendered)


def run_table3_insertion_time(scale: Optional[ExperimentScale] = None
                              ) -> ExperimentResult:
    """Table III: time to automatically insert Ranger into each model."""
    scale = scale or ExperimentScale()
    rows = []
    data: Dict[str, float] = {}
    for model_name in scale.all_models():
        prepared = get_prepared(model_name, scale)
        _, info = protect_with_ranger(prepared, scale)
        data[model_name] = info.insertion_seconds
        rows.append([model_name, info.insertion_seconds * 1000.0,
                     info.num_protected_layers])
    rendered = render_table(
        ["model", "insertion time (ms)", "protected layers"], rows,
        title="Table III — Ranger insertion time", precision=3)
    return ExperimentResult(name="table3_insertion_time",
                            paper_reference="Table III", data=data,
                            rendered=rendered)


def run_table4_flops_overhead(scale: Optional[ExperimentScale] = None
                              ) -> ExperimentResult:
    """Table IV: FLOPs with and without Ranger, and the relative overhead."""
    scale = scale or ExperimentScale()
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for model_name in scale.all_models():
        prepared = get_prepared(model_name, scale)
        protected, _ = protect_with_ranger(prepared, scale)
        overhead = protection_overhead(prepared.model, protected)
        data[model_name] = overhead
        rows.append([model_name, overhead["flops_without"] / 1e6,
                     overhead["flops_with"] / 1e6,
                     100.0 * overhead["overhead"]])
    average = float(np.mean([d["overhead"] for d in data.values()])) * 100.0
    rows.append(["average", "", "", average])
    rendered = render_table(
        ["model", "MFLOPs w/o Ranger", "MFLOPs w/ Ranger", "overhead %"], rows,
        title="Table IV — computation overhead of Ranger (FLOPs)", precision=3)
    data["average_overhead_percent"] = average
    return ExperimentResult(name="table4_flops_overhead",
                            paper_reference="Table IV", data=data,
                            rendered=rendered)


def run_memory_overhead(scale: Optional[ExperimentScale] = None
                        ) -> ExperimentResult:
    """RQ3 memory overhead: stored bound values vs. model parameters."""
    scale = scale or ExperimentScale()
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for model_name in scale.all_models():
        prepared = get_prepared(model_name, scale)
        _, info = protect_with_ranger(prepared, scale)
        stored = info.memory_overhead_values()
        params = prepared.model.num_parameters
        ratio = stored / max(params, 1)
        data[model_name] = {"bound_values": stored, "parameters": params,
                            "ratio": ratio}
        rows.append([model_name, stored, params, 100.0 * ratio])
    rendered = render_table(
        ["model", "stored bounds", "parameters", "overhead %"], rows,
        title="RQ3 — memory overhead of Ranger (stored bound values)",
        precision=4)
    return ExperimentResult(name="memory_overhead", paper_reference="RQ3 (text)",
                            data=data, rendered=rendered)
