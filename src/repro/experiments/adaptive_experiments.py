"""Adaptive-campaign efficiency: trials consumed to reach a target CI.

The statistical counterpart of the throughput experiments: instead of
making each trial cheaper, adaptive campaigns run *fewer* trials.  A
fixed-budget campaign that must guarantee a ±τ confidence half-width for
**any** SDC rate has to size for the worst case ``p = 0.5`` —
``N(τ) = ceil(z² / (4 τ²))`` trials (385 at τ = 5%, z = 1.96) — while a
sequentially-stopped campaign quits as soon as the interval around the
*observed* rate is tight enough, which for the near-zero SDC rates of
Ranger-protected models happens after a small fraction of that budget
(the Wilson half-width at 0 observed SDCs is ``z² / 2(n + z²)``, already
under 5% by n ≈ 35).  The trials-consumed numbers below are exact
deterministic functions of the campaign seed — the stopping rule fires
at the same wave on every machine — so the benchmark guards on them are
noise-free, unlike the wall-clock guards of the throughput suite.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from ..analysis import render_table
from ..injection import (FaultInjectionCampaign, SingleBitFlip,
                         Stratification)
from ..quantization import FIXED32, fixed32_policy
from .common import (ExperimentResult, ExperimentScale, campaign_pool,
                     get_prepared, protect_with_ranger)

#: Stopping target: CI half-width of 5 percentage points at 95%.
TARGET_HALF_WIDTH = 0.05
Z = 1.96
#: Trials per adaptive wave.  Small enough to stop promptly once the
#: interval tightens, large enough that wave overhead stays negligible.
WAVE_TRIALS = 32


def fixed_budget_for(target_half_width: float = TARGET_HALF_WIDTH,
                     z: float = Z) -> int:
    """Worst-case (p = 0.5) trial budget guaranteeing the target width."""
    return math.ceil(z ** 2 / (4.0 * target_half_width ** 2))


def _campaign(model, inputs, seed: int) -> FaultInjectionCampaign:
    """A fresh campaign for one run.

    Fresh per run (not reused) because plan sampling consumes the
    injector's RNG: same-seed fresh campaigns draw identical plans, which
    is what makes the adaptive run a bit-exact prefix of the fixed one.
    """
    return FaultInjectionCampaign(model, inputs,
                                  fault_model=SingleBitFlip(FIXED32),
                                  dtype_policy=fixed32_policy(), seed=seed)


def run_adaptive_efficiency(scale: Optional[ExperimentScale] = None
                            ) -> ExperimentResult:
    """Trials-to-target-CI: adaptive and stratified vs. fixed budget.

    For each model × {unprotected, ranger} the same campaign runs three
    ways — fixed budget ``N(τ)``, sequential early stopping, and early
    stopping with (layer × bit-band) stratified allocation — and the
    table reports the trials each consumed to reach the ±τ target
    half-width, plus the rate estimates (Horvitz–Thompson for the
    stratified run) so the speedup is visibly not changing the answer.
    """
    scale = scale or ExperimentScale()
    pool = campaign_pool(scale)
    budget = fixed_budget_for()
    models = list(scale.large_classifier_models[:2]
                  or scale.classifier_models[:1])
    strata = Stratification(layer_bands=4, bit_bands=4)

    headers = ["model", "variant", "fixed trials", "fixed rate%",
               "adaptive trials", "adaptive rate%", "waves", "speedup",
               "stratified trials", "ht rate%", "strat speedup"]
    rows = []
    data: Dict[str, Any] = {"target_half_width": TARGET_HALF_WIDTH, "z": Z,
                            "wave_trials": WAVE_TRIALS,
                            "fixed_trials": budget, "models": {}}

    for name in models:
        prepared = get_prepared(name, scale)
        protected, _ = protect_with_ranger(prepared, scale)
        inputs, _ = prepared.correctly_predicted_inputs(scale.num_inputs,
                                                        seed=scale.seed)
        data["models"][name] = {}
        for variant, model in (("unprotected", prepared.model),
                               ("ranger", protected)):
            fixed = _campaign(model, inputs, scale.seed).run(
                trials=budget, workers=scale.workers, pool=pool)
            adaptive = _campaign(model, inputs, scale.seed).run(
                trials=budget, target_half_width=TARGET_HALF_WIDTH,
                wave_trials=WAVE_TRIALS, z=Z, workers=scale.workers,
                pool=pool)
            stratified = _campaign(model, inputs, scale.seed).run(
                trials=budget, target_half_width=TARGET_HALF_WIDTH,
                wave_trials=WAVE_TRIALS, z=Z, strata=strata,
                workers=scale.workers, pool=pool)
            criterion = fixed.criteria[0]

            # The adaptive run replays a prefix of the fixed run's plans,
            # so its count can never exceed the fixed run's, and both must
            # hit the target the fixed budget was sized for.
            assert adaptive.trials <= fixed.trials
            assert adaptive.sdc_counts[criterion] <= fixed.sdc_counts[criterion]
            assert adaptive.half_width(criterion, z=Z) <= TARGET_HALF_WIDTH
            assert stratified.half_width(criterion, z=Z) <= TARGET_HALF_WIDTH

            speedup = fixed.trials / adaptive.trials
            strat_speedup = fixed.trials / stratified.trials
            rows.append([name, variant, fixed.trials,
                         fixed.sdc_rate_percent(criterion),
                         adaptive.trials,
                         adaptive.sdc_rate_percent(criterion),
                         adaptive.waves, speedup, stratified.trials,
                         stratified.sdc_rate_percent(criterion),
                         strat_speedup])
            data["models"][name][variant] = {
                "fixed_trials": fixed.trials,
                "fixed_rate": fixed.sdc_rate(criterion),
                "fixed_half_width": fixed.half_width(criterion, z=Z),
                "adaptive_trials": adaptive.trials,
                "adaptive_rate": adaptive.sdc_rate(criterion),
                "adaptive_half_width": adaptive.half_width(criterion, z=Z),
                "adaptive_waves": adaptive.waves,
                "speedup": speedup,
                "stratified_trials": stratified.trials,
                "stratified_rate": stratified.sdc_rate(criterion),
                "stratified_speedup": strat_speedup,
            }

    rendered = render_table(
        headers, rows,
        title=f"Trials to reach ±{100 * TARGET_HALF_WIDTH:.0f}% CI "
              f"half-width (fixed budget N = {budget}, wave = {WAVE_TRIALS})")
    return ExperimentResult(
        name="adaptive_efficiency",
        paper_reference="campaign methodology (sequential stopping + "
                        "stratified importance sampling)",
        data=data, rendered=rendered)
