"""Run every reproduced table and figure and collect the results.

``run_all_experiments`` is the entry point used by ``examples/full_evaluation.py``
and by the EXPERIMENTS.md generation; each experiment can also be run on its
own through the functions re-exported from :mod:`repro.experiments`.

When the scale requests worker processes (``ExperimentScale.workers > 1``),
the campaign-driven experiments share one persistent
:class:`~repro.injection.pool.CampaignPool` per worker count (see
:func:`repro.experiments.common.campaign_pool`), so a sweep's back-to-back
campaigns stop paying the per-campaign pool spawn and worker-side
model/golden-cache rebuild.  Results are bit-identical with and without
the pool.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from .adaptive_experiments import run_adaptive_efficiency
from .common import (ExperimentResult, ExperimentScale, artifact_store,
                     campaign_pool_stats)
from .comparison_experiments import (
    run_fig8_hong_comparison,
    run_table6_technique_comparison,
)
from .overhead_experiments import (
    run_memory_overhead,
    run_table2_accuracy,
    run_table3_insertion_time,
    run_table4_flops_overhead,
)
from .profiling_experiments import run_fig4_bound_convergence
from .sdc_experiments import (
    run_fig6_classifier_sdc,
    run_fig7_steering_sdc,
    run_fig9_fixed16_sdc,
    run_fig11_multibit_classifiers,
    run_fig12_multibit_steering,
)
from .throughput_experiments import run_campaign_throughput, run_parallel_scaling
from .tradeoff_experiments import (
    run_fig10_bound_tradeoff,
    run_sec6c_design_alternatives,
)

#: Registry of every experiment, in paper order.
EXPERIMENT_REGISTRY: Dict[str, Callable[[ExperimentScale], ExperimentResult]] = {
    "fig4_bound_convergence": run_fig4_bound_convergence,
    "fig6_classifier_sdc": run_fig6_classifier_sdc,
    "fig7_steering_sdc": run_fig7_steering_sdc,
    "fig8_hong_comparison": run_fig8_hong_comparison,
    "fig9_fixed16_sdc": run_fig9_fixed16_sdc,
    "fig10_bound_tradeoff": run_fig10_bound_tradeoff,
    "fig11_multibit_classifiers": run_fig11_multibit_classifiers,
    "fig12_multibit_steering": run_fig12_multibit_steering,
    "table2_accuracy": run_table2_accuracy,
    "table3_insertion_time": run_table3_insertion_time,
    "table4_flops_overhead": run_table4_flops_overhead,
    "table6_technique_comparison": run_table6_technique_comparison,
    "memory_overhead": run_memory_overhead,
    "sec6c_design_alternatives": run_sec6c_design_alternatives,
    "campaign_throughput": run_campaign_throughput,
    "parallel_scaling": run_parallel_scaling,
    "adaptive_efficiency": run_adaptive_efficiency,
}


def run_all_experiments(scale: Optional[ExperimentScale] = None,
                        only: Optional[Sequence[str]] = None,
                        verbose: bool = True) -> List[ExperimentResult]:
    """Run the registered experiments and return their results in order."""
    scale = scale or ExperimentScale()
    names = list(only) if only else list(EXPERIMENT_REGISTRY)
    unknown = [n for n in names if n not in EXPERIMENT_REGISTRY]
    if unknown:
        raise ValueError(f"unknown experiments: {unknown}")
    results: List[ExperimentResult] = []
    for name in names:
        start = time.perf_counter()
        result = EXPERIMENT_REGISTRY[name](scale)
        elapsed = time.perf_counter() - start
        if verbose:
            print(f"[{elapsed:7.1f}s] {result.name} ({result.paper_reference})")
            print(result.rendered)
            print()
        results.append(result)
    if verbose:
        # Cross-experiment artifact reuse (results / golden caches /
        # Ranger profiles served by the process-wide store).
        stats = artifact_store().stats()
        if stats:
            print("artifact store:", ", ".join(
                f"{kind}: {s['hits']} hits / {s['misses']} misses"
                for kind, s in stats.items()))
        # Worker-side campaign-cache reuse and shared-memory dispatch
        # economics of the persistent pools (one line per worker count).
        for workers, pool_stats in campaign_pool_stats().items():
            print(f"campaign pool ({workers} workers): "
                  f"{pool_stats['hits']} hits / {pool_stats['misses']} "
                  f"misses / {pool_stats['remaps']} remaps, "
                  f"{pool_stats['shm_tasks']}/{pool_stats['tasks']} tasks "
                  f"via shm, {pool_stats['payload_bytes']} payload bytes")
    return results


def results_to_markdown(results: Sequence[ExperimentResult],
                        title: str = "Reproduced results") -> str:
    """Format experiment results as a markdown report."""
    lines = [f"# {title}", ""]
    for result in results:
        lines.append(f"## {result.paper_reference} — {result.name}")
        lines.append("")
        lines.append("```")
        lines.append(result.rendered)
        lines.append("```")
        lines.append("")
    return "\n".join(lines)
