"""Trade-off and design-alternative experiments: Fig. 10, Table V, Sec. VI-C.

* Fig. 10 / Table V — the Dave (degrees-output) model protected with
  restriction bounds at the 100 / 99.9 / 99 / 98th percentiles: tighter
  bounds give lower SDC rates at a small accuracy cost.
* Section VI-C — out-of-bound handling alternatives: clip to the bound
  (Ranger's choice), reset to zero (degrades accuracy), replace with a random
  in-range value (keeps accuracy but is non-deterministic).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis import evaluate_accuracy, render_table
from ..core import Ranger
from ..injection.sdc import STEERING_THRESHOLDS, SteeringDeviation
from .common import (
    ExperimentResult,
    ExperimentScale,
    get_prepared,
    paired_sdc_rates,
)

PERCENTILES = (100.0, 99.9, 99.0, 98.0)


def run_fig10_bound_tradeoff(scale: Optional[ExperimentScale] = None,
                             percentiles: Sequence[float] = PERCENTILES
                             ) -> ExperimentResult:
    """Fig. 10 + Table V: Dave (degrees) under different bound percentiles."""
    scale = scale or ExperimentScale()
    prepared = get_prepared("dave", scale, output_mode="degrees")
    sample, _ = prepared.dataset.sample_train(scale.profile_samples,
                                              seed=scale.seed)
    criteria = [SteeringDeviation(threshold_degrees=t, angle_unit="degrees")
                for t in STEERING_THRESHOLDS]

    # Profile once, select bounds at each percentile from the same profile.
    ranger = Ranger(seed=scale.seed)
    profile = ranger.profile(prepared.model, sample)

    sdc_rows: List[List] = []
    accuracy_rows: List[List] = []
    data: Dict[str, Dict] = {"percentiles": list(percentiles), "sdc": {},
                             "accuracy": {}}

    baseline_accuracy = evaluate_accuracy(prepared.model,
                                          prepared.dataset.x_val,
                                          prepared.dataset.y_val)
    accuracy_rows.append(["original", baseline_accuracy.rmse_degrees,
                          baseline_accuracy.avg_deviation_degrees])
    data["accuracy"]["original"] = baseline_accuracy.as_dict()

    original_rates: Optional[Dict[str, float]] = None
    for percentile in percentiles:
        bounds = profile.select_bounds(percentile)
        protected, _ = ranger.transform(prepared.model, bounds)
        original, with_ranger = paired_sdc_rates(prepared, protected, scale,
                                                 criteria=criteria)
        if original_rates is None:
            original_rates = original
            sdc_rows.append(["original"] + [original[c.name] for c in criteria])
            data["sdc"]["original"] = original
        label = f"bound-{percentile:g}%"
        sdc_rows.append([label] + [with_ranger[c.name] for c in criteria])
        data["sdc"][label] = with_ranger

        accuracy = evaluate_accuracy(protected, prepared.dataset.x_val,
                                     prepared.dataset.y_val)
        accuracy_rows.append([label, accuracy.rmse_degrees,
                              accuracy.avg_deviation_degrees])
        data["accuracy"][label] = accuracy.as_dict()

    sdc_table = render_table(
        ["configuration"] + [c.name for c in criteria], sdc_rows,
        title="Fig. 10 — Dave (degrees) SDC % by restriction-bound percentile")
    accuracy_table = render_table(
        ["configuration", "RMSE (deg)", "avg deviation (deg)"], accuracy_rows,
        title="Table V — Dave (degrees) accuracy by restriction-bound percentile")
    rendered = sdc_table + "\n\n" + accuracy_table
    return ExperimentResult(name="fig10_bound_tradeoff",
                            paper_reference="Fig. 10 / Table V", data=data,
                            rendered=rendered)


def run_sec6c_design_alternatives(scale: Optional[ExperimentScale] = None,
                                  model_name: str = "vgg16",
                                  policies: Sequence[str] = ("clip", "zero",
                                                             "random")
                                  ) -> ExperimentResult:
    """Section VI-C: clip vs. zero-reset vs. random replacement policies."""
    scale = scale or ExperimentScale()
    if model_name not in scale.all_models():
        model_name = scale.all_classifiers()[0]
    prepared = get_prepared(model_name, scale)
    sample, _ = prepared.dataset.sample_train(scale.profile_samples,
                                              seed=scale.seed)

    rows: List[List] = []
    data: Dict[str, Dict[str, float]] = {}
    baseline_accuracy = evaluate_accuracy(prepared.model,
                                          prepared.dataset.x_val,
                                          prepared.dataset.y_val)
    baseline_top1 = baseline_accuracy.top1 if prepared.model.is_classifier \
        else baseline_accuracy.rmse_degrees

    for policy in policies:
        ranger = Ranger(policy=policy, seed=scale.seed)
        protected, _ = ranger.protect(prepared.model, profile_inputs=sample)
        original, with_policy = paired_sdc_rates(prepared, protected, scale)
        accuracy = evaluate_accuracy(protected, prepared.dataset.x_val,
                                     prepared.dataset.y_val)
        acc_metric = accuracy.top1 if prepared.model.is_classifier \
            else accuracy.rmse_degrees
        avg_original = float(np.mean(list(original.values())))
        avg_policy = float(np.mean(list(with_policy.values())))
        data[policy] = {"original_sdc": avg_original, "sdc": avg_policy,
                        "accuracy": acc_metric,
                        "baseline_accuracy": baseline_top1}
        rows.append([policy, avg_original, avg_policy, baseline_top1,
                     acc_metric])

    metric_name = "top-1 accuracy" if prepared.model.is_classifier else "RMSE (deg)"
    rendered = render_table(
        ["policy", "original SDC %", "protected SDC %",
         f"baseline {metric_name}", f"protected {metric_name}"], rows,
        title=f"Sec. VI-C — out-of-bound policy alternatives ({model_name})",
        precision=3)
    return ExperimentResult(name="sec6c_design_alternatives",
                            paper_reference="Section VI-C", data=data,
                            rendered=rendered)
