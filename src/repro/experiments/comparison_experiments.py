"""Comparison experiments: Fig. 8 (Hong et al.) and Table VI (all techniques).

* Fig. 8 — relative SDC reduction of the Hong et al. defense (swap ReLU for
  Tanh) versus Ranger, evaluated on both the ReLU and Tanh variants of each
  model.  The expected shape: the defense gives ~0% reduction on models that
  already use Tanh, and much less reduction than Ranger on ReLU models.
* Table VI — SDC coverage vs. overhead of every implemented protection
  technique on a common fault-injection workload.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.reporting import relative_reduction_percent, render_table
from ..baselines import (
    ComparisonConfig,
    TechniqueComparison,
    prepare_activation_variant,
)
from ..injection import FaultInjectionCampaign, SingleBitFlip, criteria_for_model
from ..quantization import FIXED32
from .common import (
    ExperimentResult,
    ExperimentScale,
    TRAINING_CONFIG,
    get_prepared,
    paired_sdc_rates,
    protect_with_ranger,
)


def _campaign_sdc_rate(prepared, scale: ExperimentScale) -> float:
    """Average SDC rate (%) of an unprotected model over its default criteria."""
    inputs, _ = prepared.correctly_predicted_inputs(scale.num_inputs,
                                                    seed=scale.seed)
    campaign = FaultInjectionCampaign(prepared.model, inputs,
                                      fault_model=SingleBitFlip(FIXED32),
                                      seed=scale.seed)
    result = campaign.run(trials=scale.trials)
    return float(np.mean([result.sdc_rate_percent(c) for c in result.criteria]))


def run_fig8_hong_comparison(scale: Optional[ExperimentScale] = None,
                             models: Optional[Sequence[str]] = None
                             ) -> ExperimentResult:
    """Fig. 8: relative SDC reduction — Hong et al. vs. Ranger.

    For each model we build a ReLU variant and a Tanh variant (both trained):

    * ``hong`` on the ReLU variant means "switch to the Tanh variant" — its
      reduction is measured between the two unprotected campaigns;
    * ``hong`` on the Tanh variant is a no-op (0% reduction by construction);
    * ``ranger`` is applied to each variant and measured with paired plans.
    """
    scale = scale or ExperimentScale()
    if models is None:
        models = [m for m in ("lenet", "alexnet", "vgg11", "dave", "comma")
                  if m in scale.all_models()]
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for model_name in models:
        overrides = {}
        if model_name == "dave":
            overrides["output_mode"] = "radians"
        relu_prepared = get_prepared(model_name, scale, **overrides)

        config = dict(TRAINING_CONFIG.get(model_name, {}))
        config.update(overrides)
        epochs = config.pop("epochs", 6)
        learning_rate = config.pop("learning_rate", 2e-3)
        tanh_prepared = prepare_activation_variant(
            model_name, "tanh", epochs=epochs, seed=scale.seed,
            learning_rate=learning_rate, **config)

        relu_rate = _campaign_sdc_rate(relu_prepared, scale)
        tanh_rate = _campaign_sdc_rate(tanh_prepared, scale)

        # Ranger on each variant (paired campaigns).
        relu_protected, _ = protect_with_ranger(relu_prepared, scale)
        relu_orig, relu_ranger = paired_sdc_rates(relu_prepared, relu_protected,
                                                  scale)
        tanh_protected, _ = protect_with_ranger(tanh_prepared, scale)
        tanh_orig, tanh_ranger = paired_sdc_rates(tanh_prepared, tanh_protected,
                                                  scale)

        relu_ranger_reduction = relative_reduction_percent(
            float(np.mean(list(relu_orig.values()))),
            float(np.mean(list(relu_ranger.values()))))
        tanh_ranger_reduction = relative_reduction_percent(
            float(np.mean(list(tanh_orig.values()))),
            float(np.mean(list(tanh_ranger.values()))))
        hong_on_relu = relative_reduction_percent(relu_rate, tanh_rate)
        hong_on_tanh = 0.0   # replacing Tanh with Tanh changes nothing

        data[model_name] = {
            "relu_hong": hong_on_relu, "relu_ranger": relu_ranger_reduction,
            "tanh_hong": hong_on_tanh, "tanh_ranger": tanh_ranger_reduction,
        }
        rows.append([model_name, hong_on_tanh, tanh_ranger_reduction,
                     hong_on_relu, relu_ranger_reduction])

    rendered = render_table(
        ["model", "Tanh: Hong %", "Tanh: Ranger %", "ReLU: Hong %",
         "ReLU: Ranger %"], rows,
        title="Fig. 8 — relative SDC reduction: Hong et al. vs. Ranger")
    return ExperimentResult(name="fig8_hong_comparison",
                            paper_reference="Fig. 8", data=data,
                            rendered=rendered)


def run_table6_technique_comparison(scale: Optional[ExperimentScale] = None,
                                    model_name: str = "lenet",
                                    include_hong: bool = True
                                    ) -> ExperimentResult:
    """Table VI: SDC coverage and overhead of every protection technique."""
    scale = scale or ExperimentScale()
    prepared = get_prepared(model_name, scale)
    inputs, _ = prepared.correctly_predicted_inputs(scale.num_inputs,
                                                    seed=scale.seed)
    config = ComparisonConfig(trials=scale.trials,
                              ml_training_trials=max(60, scale.trials // 2),
                              seed=scale.seed)
    comparison = TechniqueComparison(prepared, inputs, config=config)

    hong_variant = None
    if include_hong:
        training = dict(TRAINING_CONFIG.get(model_name, {}))
        epochs = training.pop("epochs", 6)
        learning_rate = training.pop("learning_rate", 2e-3)
        from ..models import prepare_model
        hong_variant = prepare_model(model_name, epochs=epochs,
                                     learning_rate=learning_rate,
                                     seed=scale.seed, activation="tanh",
                                     **training)

    results = comparison.run(include_hong=hong_variant)
    rows = [r.as_row() for r in results]
    rendered = render_table(
        ["technique", "SDC coverage %", "overhead %", "notes"], rows,
        title=f"Table VI — protection techniques compared ({model_name})")
    data = {r.technique: {"coverage": r.sdc_coverage, "overhead": r.overhead}
            for r in results}
    return ExperimentResult(name="table6_technique_comparison",
                            paper_reference="Table VI", data=data,
                            rendered=rendered)
