"""Model zoo: the eight DNNs of the paper's evaluation (Table I)."""

from .base import Model, scaled
from .classifiers import build_alexnet, build_lenet, build_vgg11, build_vgg16
from .registry import (
    ALL_MODELS,
    CLASSIFIER_MODELS,
    MODEL_BUILDERS,
    STEERING_MODELS,
    build_model,
)
from .resnet import build_resnet18
from .squeezenet import build_squeezenet
from .steering import build_comma, build_dave
from .zoo import PreparedModel, clear_cache, dataset_for_model, prepare_model

__all__ = [
    "ALL_MODELS",
    "CLASSIFIER_MODELS",
    "MODEL_BUILDERS",
    "Model",
    "PreparedModel",
    "STEERING_MODELS",
    "build_alexnet",
    "build_comma",
    "build_dave",
    "build_lenet",
    "build_model",
    "build_resnet18",
    "build_squeezenet",
    "build_vgg11",
    "build_vgg16",
    "clear_cache",
    "dataset_for_model",
    "prepare_model",
    "scaled",
]
