"""Model wrapper and shared configuration for the model zoo.

A :class:`Model` bundles the dataflow graph with the node names the rest of
the system needs (input placeholder, pre-softmax logits, final output), plus
metadata used by the experiments (task type, activation function, which
dataset it is trained on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from ..graph import DTypePolicy, Executor, Graph


@dataclass
class Model:
    """A built (possibly trained) DNN.

    Attributes
    ----------
    name:
        Model identifier (``lenet``, ``alexnet``, ``vgg11``, ``vgg16``,
        ``resnet18``, ``squeezenet``, ``dave``, ``comma``).
    graph:
        The model's dataflow graph.
    input_name:
        Name of the input placeholder node.
    logits_name:
        Node producing the pre-softmax logits (classifiers) or the raw
        regression output (steering models).  This is the node the trainer
        attaches the loss to and the node the paper excludes from protection
        ("we exclude the last FC layer").
    output_name:
        Node producing the user-facing output (softmax probabilities or the
        steering angle).
    task:
        ``"classification"`` or ``"regression"``.
    activation:
        Name of the dominant hidden activation function (``relu``, ``tanh``,
        ``elu``); used by the Hong et al. baseline and by Ranger's profiler.
    dataset:
        Name of the dataset the model is meant to be trained on.
    angle_unit:
        For steering models: ``"degrees"`` or ``"radians"``.
    config:
        Free-form architecture parameters (width scale, input size, ...).
    """

    name: str
    graph: Graph
    input_name: str
    logits_name: str
    output_name: str
    task: str
    activation: str
    dataset: str
    angle_unit: Optional[str] = None
    config: Dict[str, Any] = field(default_factory=dict)

    def executor(self, dtype_policy: Optional[DTypePolicy] = None) -> Executor:
        """A fresh executor for this model's graph."""
        return Executor(self.graph, dtype_policy=dtype_policy)

    def predict(self, inputs: np.ndarray,
                dtype_policy: Optional[DTypePolicy] = None,
                executor: Optional[Executor] = None) -> np.ndarray:
        """Run a forward pass and return the user-facing output."""
        ex = executor or self.executor(dtype_policy)
        result = ex.run({self.input_name: inputs}, outputs=[self.output_name])
        return result.output(self.output_name)

    def predict_logits(self, inputs: np.ndarray,
                       dtype_policy: Optional[DTypePolicy] = None) -> np.ndarray:
        """Run a forward pass and return the pre-softmax / raw output."""
        ex = self.executor(dtype_policy)
        result = ex.run({self.input_name: inputs}, outputs=[self.logits_name])
        return result.output(self.logits_name)

    def with_graph(self, graph: Graph, suffix: str = "protected") -> "Model":
        """A copy of this model description pointing at a transformed graph.

        Used by Ranger and the baselines, whose graph transformations keep
        node names stable (they only splice new nodes in between).
        """
        return Model(
            name=f"{self.name}_{suffix}",
            graph=graph,
            input_name=self.input_name,
            logits_name=self.logits_name,
            output_name=self.output_name,
            task=self.task,
            activation=self.activation,
            dataset=self.dataset,
            angle_unit=self.angle_unit,
            config=dict(self.config),
        )

    @property
    def is_classifier(self) -> bool:
        return self.task == "classification"

    @property
    def num_parameters(self) -> int:
        return self.graph.num_parameters()


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    """Scale a channel/unit count, keeping it at least ``minimum``."""
    return max(minimum, int(round(value * scale)))
