"""Convenience layer that builds, trains, and caches models with their data.

Experiments need *trained* models: the paper injects faults only into inputs
the network classifies correctly in the fault-free case, and Ranger's bounds
are profiled from the training data the model actually learned from.  This
module pairs each model with its dataset, trains it with the in-repo trainer,
and memoizes the result so a benchmark run trains each model at most once per
process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..datasets import Dataset, load_dataset
from ..nn import Adam, MeanSquaredError, SoftmaxCrossEntropy, Trainer
from .base import Model
from .registry import build_model

#: Default dataset-generator arguments keyed by dataset name; tuned so that
#: the small model presets reach usable accuracy within a few epochs.
_DATASET_DEFAULTS: Dict[str, Dict[str, Any]] = {
    "digits": {"num_samples": 400, "image_size": 20},
    "objects": {"num_samples": 400, "image_size": 24},
    "traffic_signs": {"num_samples": 400, "image_size": 24},
    "imagenet_like": {"num_samples": 400, "image_size": 32, "num_classes": 20},
    "driving_degrees": {"num_samples": 300, "height": 24, "width": 48,
                        "angle_unit": "degrees"},
    "driving_radians": {"num_samples": 300, "height": 24, "width": 48,
                        "angle_unit": "radians"},
}


def dataset_for_model(model: Model, **overrides) -> Dataset:
    """Build the dataset a model is meant to be trained on."""
    name = model.dataset
    kwargs = dict(_DATASET_DEFAULTS.get(name, {}))
    kwargs.update(overrides)
    if name.startswith("driving"):
        return load_dataset("driving", **kwargs)
    # Match the dataset image size to the model's expected input.
    input_shape = model.config.get("input_shape")
    if input_shape is not None and "image_size" in kwargs:
        kwargs["image_size"] = input_shape[0]
    if name == "imagenet_like" and "num_classes" in model.config:
        kwargs["num_classes"] = model.config["num_classes"]
    if name == "traffic_signs" and "num_classes" in model.config:
        kwargs["num_classes"] = model.config["num_classes"]
    return load_dataset(name, **kwargs)


@dataclass
class PreparedModel:
    """A trained model together with its dataset and training diagnostics."""

    model: Model
    dataset: Dataset
    final_loss: Optional[float]

    def correctly_predicted_inputs(self, count: int, seed: int = 0,
                                   from_validation: bool = True
                                   ) -> Tuple[np.ndarray, np.ndarray]:
        """Inputs the model handles correctly in the fault-free case.

        Classification: correctly classified validation inputs.  Regression:
        validation inputs whose prediction error is below the dataset's 25th
        percentile (the paper requires "correct predictions" on the FI
        inputs; for continuous outputs we take the best-predicted frames).
        """
        x = self.dataset.x_val if from_validation else self.dataset.x_train
        y = self.dataset.y_val if from_validation else self.dataset.y_train
        predictions = self.model.predict(x)
        if self.model.is_classifier:
            predicted = predictions.argmax(axis=1)
            mask = predicted == y
            candidates = np.nonzero(mask)[0]
        else:
            errors = np.abs(predictions.reshape(-1) - y.reshape(-1))
            cutoff = np.percentile(errors, 25)
            candidates = np.nonzero(errors <= cutoff)[0]
        if len(candidates) == 0:
            raise RuntimeError(
                f"model '{self.model.name}' has no correctly-predicted "
                f"inputs; train it for more epochs")
        rng = np.random.default_rng(seed)
        chosen = rng.choice(candidates, size=min(count, len(candidates)),
                            replace=False)
        return x[chosen], y[chosen]


_CACHE: Dict[Tuple, PreparedModel] = {}


def prepare_model(name: str, preset: str = "small", train: bool = True,
                  epochs: int = 6, batch_size: int = 32,
                  learning_rate: float = 2e-3, seed: int = 0,
                  dataset_overrides: Optional[Dict[str, Any]] = None,
                  use_cache: bool = True, **model_overrides) -> PreparedModel:
    """Build (and optionally train) a model together with its dataset.

    Results are cached per argument combination so experiment harnesses can
    call this freely.
    """
    cache_key = (name, preset, train, epochs, batch_size, learning_rate, seed,
                 tuple(sorted((dataset_overrides or {}).items())),
                 tuple(sorted(model_overrides.items())))
    if use_cache and cache_key in _CACHE:
        return _CACHE[cache_key]

    model = build_model(name, preset=preset, **model_overrides)
    dataset = dataset_for_model(model, **(dataset_overrides or {}))

    final_loss: Optional[float] = None
    if train:
        loss = (SoftmaxCrossEntropy() if model.is_classifier
                else MeanSquaredError())
        trainer = Trainer(model.graph, loss, Adam(learning_rate=learning_rate),
                          output_node=model.logits_name)
        history = trainer.fit(dataset.x_train, dataset.y_train, epochs=epochs,
                              batch_size=batch_size, seed=seed)
        final_loss = history.final_loss

    prepared = PreparedModel(model=model, dataset=dataset,
                             final_loss=final_loss)
    if use_cache:
        _CACHE[cache_key] = prepared
    return prepared


def clear_cache() -> None:
    """Drop all cached prepared models (used by tests)."""
    _CACHE.clear()
