"""Steering-angle regression models: Nvidia Dave-2 and Comma.ai.

These are the two AV models in the paper's evaluation.  Two properties of the
originals are preserved because the paper's analysis depends on them:

* **Dave** outputs the steering angle through a ``2 * atan(x)`` head and is
  trained in **radians** in its original form.  The paper shows this head is
  the reason Ranger helps Dave less (a small deviation at the atan input
  saturates the output); it then retrains Dave to output **degrees**, which
  both improves accuracy and restores Ranger's effectiveness.  The
  ``output_mode`` argument selects between the two variants.
* **Comma.ai** uses ELU activations and outputs degrees directly.
"""

from __future__ import annotations

from typing import Tuple

from .. import ops
from ..graph.builder import GraphBuilder
from ..ops.conv import conv_output_size
from .base import Model, scaled


def build_dave(input_shape: Tuple[int, int, int] = (24, 48, 3),
               width_scale: float = 0.5, output_mode: str = "radians",
               activation: str = "relu", seed: int = 16,
               name: str = "dave") -> Model:
    """Nvidia Dave-2: five convolutions followed by four dense layers.

    Parameters
    ----------
    output_mode:
        ``"radians"`` — the original model: the final scalar passes through a
        ``2 * atan`` head and the label unit is radians.
        ``"degrees"`` — the retrained model of Section VI-A: a linear output
        head predicting the angle in degrees directly.
    """
    if output_mode not in ("radians", "degrees"):
        raise ValueError(f"output_mode must be 'radians' or 'degrees', "
                         f"got '{output_mode}'")
    h, w, c = input_shape
    b = GraphBuilder(name, seed=seed)
    x = b.input(input_shape, "input")

    conv_plan = [
        ("conv1", scaled(24, width_scale), 5, 2),
        ("conv2", scaled(36, width_scale), 5, 2),
        ("conv3", scaled(48, width_scale), 5, 2),
        ("conv4", scaled(64, width_scale), 3, 1),
        ("conv5", scaled(64, width_scale), 3, 1),
    ]
    node = x
    in_channels = c
    for conv_name, out_channels, kernel, stride in conv_plan:
        # Fall back to stride 1 once the feature map is too small to halve.
        effective_stride = stride if min(h, w) > kernel else 1
        node = b.conv2d(node, in_channels, out_channels, kernel,
                        name=conv_name, stride=effective_stride,
                        padding="same", activation=activation)
        h = conv_output_size(h, kernel, effective_stride, "same")
        w = conv_output_size(w, kernel, effective_stride, "same")
        in_channels = out_channels

    node = b.flatten(node, "flatten")
    features = h * w * in_channels
    fc_plan = [
        ("fc1", scaled(1164, width_scale * 0.25)),
        ("fc2", scaled(100, width_scale)),
        ("fc3", scaled(50, width_scale)),
        ("fc4", scaled(10, width_scale)),
    ]
    in_features = features
    for fc_name, units in fc_plan:
        node = b.dense(node, in_features, units, name=fc_name,
                       activation=activation)
        in_features = units
    raw = b.dense(node, in_features, 1, name="fc_out", activation=None)

    if output_mode == "radians":
        output = b.activation(raw, "atan", "atan_head")
        output = b.scale(output, 2.0, "output")
        angle_unit = "radians"
    else:
        output = b.graph.add("output", ops.Identity(), [raw])
        angle_unit = "degrees"

    b.output(output)
    b.graph.mark_output(raw)

    return Model(name=name, graph=b.graph, input_name="input",
                 logits_name=raw, output_name=output,
                 task="regression", activation=activation,
                 dataset=f"driving_{angle_unit}", angle_unit=angle_unit,
                 config={"input_shape": input_shape, "width_scale": width_scale,
                         "output_mode": output_mode})


def build_comma(input_shape: Tuple[int, int, int] = (24, 48, 3),
                width_scale: float = 0.5, activation: str = "elu",
                seed: int = 17, name: str = "comma") -> Model:
    """Comma.ai steering model: three strided convolutions + two dense layers."""
    h, w, c = input_shape
    b = GraphBuilder(name, seed=seed)
    x = b.input(input_shape, "input")

    conv_plan = [
        ("conv1", scaled(16, width_scale), 8, 4),
        ("conv2", scaled(32, width_scale), 5, 2),
        ("conv3", scaled(64, width_scale), 5, 2),
    ]
    node = x
    in_channels = c
    for conv_name, out_channels, kernel, stride in conv_plan:
        effective_stride = stride if min(h, w) // stride >= 2 else 1
        node = b.conv2d(node, in_channels, out_channels, kernel,
                        name=conv_name, stride=effective_stride,
                        padding="same", activation=activation)
        h = conv_output_size(h, kernel, effective_stride, "same")
        w = conv_output_size(w, kernel, effective_stride, "same")
        in_channels = out_channels

    node = b.flatten(node, "flatten")
    features = h * w * in_channels
    fc_units = scaled(512, width_scale * 0.25)
    node = b.dense(node, features, fc_units, name="fc1", activation=activation)
    raw = b.dense(node, fc_units, 1, name="fc_out", activation=None)
    output = b.graph.add("output", ops.Identity(), [raw])

    b.output(output)
    b.graph.mark_output(raw)

    return Model(name=name, graph=b.graph, input_name="input",
                 logits_name=raw, output_name=output,
                 task="regression", activation=activation,
                 dataset="driving_degrees", angle_unit="degrees",
                 config={"input_shape": input_shape,
                         "width_scale": width_scale})
