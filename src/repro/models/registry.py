"""Model registry: build any of the paper's eight DNNs by name.

Two presets are provided for every model:

* ``"small"`` (default) — reduced widths and input sizes so the full
  experiment matrix runs on a laptop in minutes.  Architectures are otherwise
  identical (same layer sequence, same operator types).
* ``"paper"`` — the full-width architectures on paper-sized inputs.  These
  are buildable and runnable but far too slow for the committed benchmark
  settings; they exist so the reproduction's model definitions can be checked
  against the originals.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from .base import Model
from .classifiers import build_alexnet, build_lenet, build_vgg11, build_vgg16
from .resnet import build_resnet18
from .squeezenet import build_squeezenet
from .steering import build_comma, build_dave

MODEL_BUILDERS: Dict[str, Callable[..., Model]] = {
    "lenet": build_lenet,
    "alexnet": build_alexnet,
    "vgg11": build_vgg11,
    "vgg16": build_vgg16,
    "resnet18": build_resnet18,
    "squeezenet": build_squeezenet,
    "dave": build_dave,
    "comma": build_comma,
}

#: The six classifier models of Table I, in the paper's order.
CLASSIFIER_MODELS = ["lenet", "alexnet", "vgg11", "vgg16", "resnet18",
                     "squeezenet"]

#: The two AV steering models of Table I.
STEERING_MODELS = ["dave", "comma"]

ALL_MODELS = CLASSIFIER_MODELS + STEERING_MODELS

#: Per-model overrides for the "paper" preset (full architecture sizes).
_PAPER_PRESET: Dict[str, Dict[str, Any]] = {
    "lenet": {"input_shape": (28, 28, 1), "num_classes": 10, "width_scale": 1.0},
    "alexnet": {"input_shape": (32, 32, 3), "num_classes": 10, "width_scale": 1.0},
    "vgg11": {"input_shape": (48, 48, 3), "num_classes": 12, "width_scale": 1.0},
    "vgg16": {"input_shape": (224, 224, 3), "num_classes": 40, "width_scale": 1.0},
    "resnet18": {"input_shape": (224, 224, 3), "num_classes": 40, "width_scale": 1.0},
    "squeezenet": {"input_shape": (224, 224, 3), "num_classes": 40, "width_scale": 1.0},
    "dave": {"input_shape": (66, 200, 3), "width_scale": 1.0},
    "comma": {"input_shape": (80, 160, 3), "width_scale": 1.0},
}


def build_model(name: str, preset: str = "small", **overrides) -> Model:
    """Build a model by name.

    Parameters
    ----------
    name:
        One of :data:`ALL_MODELS`.
    preset:
        ``"small"`` (laptop-scale defaults) or ``"paper"`` (full sizes).
    overrides:
        Keyword arguments forwarded to the model builder, overriding the
        preset (e.g. ``width_scale=0.5``, ``activation="tanh"``,
        ``output_mode="degrees"``).
    """
    key = name.lower()
    if key not in MODEL_BUILDERS:
        raise ValueError(f"unknown model '{name}'; "
                         f"expected one of {sorted(MODEL_BUILDERS)}")
    if preset not in ("small", "paper"):
        raise ValueError(f"unknown preset '{preset}'")
    kwargs: Dict[str, Any] = {}
    if preset == "paper":
        kwargs.update(_PAPER_PRESET[key])
    kwargs.update(overrides)
    return MODEL_BUILDERS[key](**kwargs)
