"""ResNet-18 with basic residual blocks (He et al., 2016).

The residual (shortcut) additions matter for the reproduction: a fault that
corrupts one branch still reaches the output through the addition, and
Ranger's bounds on the activations that feed the addition are what dampens
it.  Batch normalization runs in inference mode (moving statistics) during
fault-injection experiments, matching frozen deployment graphs.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..graph.builder import GraphBuilder
from .base import Model, scaled


def _basic_block(b: GraphBuilder, node: str, in_channels: int,
                 out_channels: int, stride: int, name: str,
                 activation: str) -> Tuple[str, int]:
    """One ResNet basic block: two 3x3 convs with a shortcut connection."""
    shortcut = node
    out = b.conv2d(node, in_channels, out_channels, 3, name=f"{name}/conv1",
                   stride=stride, activation=None, use_bias=False)
    out = b.batch_norm(out, out_channels, name=f"{name}/bn1")
    out = b.activation(out, activation, f"{name}/{activation}1")
    out = b.conv2d(out, out_channels, out_channels, 3, name=f"{name}/conv2",
                   activation=None, use_bias=False)
    out = b.batch_norm(out, out_channels, name=f"{name}/bn2")

    if stride != 1 or in_channels != out_channels:
        shortcut = b.conv2d(shortcut, in_channels, out_channels, 1,
                            name=f"{name}/downsample", stride=stride,
                            activation=None, use_bias=False)
        shortcut = b.batch_norm(shortcut, out_channels,
                                name=f"{name}/downsample_bn")

    out = b.add(out, shortcut, name=f"{name}/add")
    out = b.activation(out, activation, f"{name}/{activation}2")
    return out, out_channels


def build_resnet18(input_shape: Tuple[int, int, int] = (32, 32, 3),
                   num_classes: int = 20, width_scale: float = 0.25,
                   activation: str = "relu", seed: int = 14,
                   name: str = "resnet18") -> Model:
    """ResNet-18: a stem conv followed by four stages of two basic blocks."""
    h, w, c = input_shape
    b = GraphBuilder(name, seed=seed)
    x = b.input(input_shape, "input")

    stem_channels = scaled(64, width_scale)
    node = b.conv2d(x, c, stem_channels, 3, name="stem/conv",
                    activation=None, use_bias=False)
    node = b.batch_norm(node, stem_channels, name="stem/bn")
    node = b.activation(node, activation, f"stem/{activation}")

    stage_plan = [
        ("stage1", scaled(64, width_scale), 1),
        ("stage2", scaled(128, width_scale), 2),
        ("stage3", scaled(256, width_scale), 2),
        ("stage4", scaled(512, width_scale), 2),
    ]
    in_channels = stem_channels
    for stage_name, channels, first_stride in stage_plan:
        node, in_channels = _basic_block(b, node, in_channels, channels,
                                         first_stride, f"{stage_name}/block1",
                                         activation)
        node, in_channels = _basic_block(b, node, in_channels, channels, 1,
                                         f"{stage_name}/block2", activation)

    node = b.global_avg_pool(node, "global_pool")
    logits = b.dense(node, in_channels, num_classes, name="fc",
                     activation=None)
    probs = b.softmax(logits, "softmax")
    b.output(probs)
    b.graph.mark_output(logits)

    return Model(name=name, graph=b.graph, input_name="input",
                 logits_name=logits, output_name=probs,
                 task="classification", activation=activation,
                 dataset="imagenet_like",
                 config={"input_shape": input_shape, "num_classes": num_classes,
                         "width_scale": width_scale})
