"""SqueezeNet (Iandola et al., 2016) with fire modules.

SqueezeNet matters to the reproduction because its fire modules end in a
channel-axis **concatenation** of the two expand branches — the case for
which the paper's Algorithm 1 defines the merged restriction bound
``(min(low_{j-1}, low_j), max(up_{j-1}, up_j))``.
"""

from __future__ import annotations

from typing import Tuple

from ..graph.builder import GraphBuilder
from .base import Model, scaled


def _fire_module(b: GraphBuilder, node: str, in_channels: int,
                 squeeze_channels: int, expand_channels: int, name: str,
                 activation: str) -> Tuple[str, int]:
    """Fire module: 1x1 squeeze, then parallel 1x1 and 3x3 expands, concat."""
    squeezed = b.conv2d(node, in_channels, squeeze_channels, 1,
                        name=f"{name}/squeeze", activation=activation)
    expand1 = b.conv2d(squeezed, squeeze_channels, expand_channels, 1,
                       name=f"{name}/expand1x1", activation=activation)
    expand3 = b.conv2d(squeezed, squeeze_channels, expand_channels, 3,
                       name=f"{name}/expand3x3", activation=activation)
    out = b.concat([expand1, expand3], name=f"{name}/concat", axis=-1)
    return out, 2 * expand_channels


def build_squeezenet(input_shape: Tuple[int, int, int] = (32, 32, 3),
                     num_classes: int = 20, width_scale: float = 0.25,
                     activation: str = "relu", seed: int = 15,
                     name: str = "squeezenet") -> Model:
    """SqueezeNet v1.1-style network scaled for laptop experiments."""
    h, w, c = input_shape
    b = GraphBuilder(name, seed=seed)
    x = b.input(input_shape, "input")

    stem_channels = scaled(64, width_scale)
    node = b.conv2d(x, c, stem_channels, 3, name="stem/conv",
                    activation=activation)
    node = b.max_pool(node, 2, name="stem/pool")
    h, w = h // 2, w // 2
    in_channels = stem_channels

    fire_plan = [
        ("fire2", scaled(16, width_scale), scaled(64, width_scale), False),
        ("fire3", scaled(16, width_scale), scaled(64, width_scale), True),
        ("fire4", scaled(32, width_scale), scaled(128, width_scale), False),
        ("fire5", scaled(32, width_scale), scaled(128, width_scale), True),
        ("fire6", scaled(48, width_scale), scaled(192, width_scale), False),
        ("fire7", scaled(48, width_scale), scaled(192, width_scale), False),
    ]
    for fire_name, squeeze_ch, expand_ch, pool_after in fire_plan:
        node, in_channels = _fire_module(b, node, in_channels, squeeze_ch,
                                         expand_ch, fire_name, activation)
        if pool_after and h >= 2 and w >= 2:
            node = b.max_pool(node, 2, name=f"{fire_name}/pool")
            h, w = h // 2, w // 2

    # Classification head: 1x1 conv producing one map per class, then global
    # average pooling (no fully-connected layer, as in the original).
    node = b.conv2d(node, in_channels, num_classes, 1, name="head/conv",
                    activation=activation)
    logits = b.global_avg_pool(node, "head/global_pool")
    probs = b.softmax(logits, "softmax")
    b.output(probs)
    b.graph.mark_output(logits)

    return Model(name=name, graph=b.graph, input_name="input",
                 logits_name=logits, output_name=probs,
                 task="classification", activation=activation,
                 dataset="imagenet_like",
                 config={"input_shape": input_shape, "num_classes": num_classes,
                         "width_scale": width_scale})
