"""Classifier architectures: LeNet, AlexNet, VGG-11, VGG-16.

Each builder reproduces the layer sequence of the named architecture while
exposing two scale knobs so the reproduction runs on a laptop:

* ``width_scale`` multiplies every channel / unit count;
* ``input_shape`` sets the image size (pooling layers are skipped when the
  spatial size can no longer be halved, so the same code path supports both
  paper-sized and reduced inputs).

The layer granularity (separate conv / bias / activation / pooling nodes) is
what Ranger's Algorithm 1 and the fault injector operate on, so it is kept
faithful to the TensorFlow graphs the paper instruments.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..graph.builder import GraphBuilder
from ..ops.conv import conv_output_size
from .base import Model, scaled


def _pool_if_possible(builder: GraphBuilder, node: str, h: int, w: int,
                      name: str, pool: int = 2) -> Tuple[str, int, int]:
    """Apply max pooling when the spatial size allows it."""
    if h >= pool and w >= pool:
        node = builder.max_pool(node, pool, name=name)
        return node, h // pool, w // pool
    return node, h, w


def build_lenet(input_shape: Tuple[int, int, int] = (20, 20, 1),
                num_classes: int = 10, width_scale: float = 1.0,
                activation: str = "relu", seed: int = 10,
                name: str = "lenet") -> Model:
    """LeNet-5: two conv+pool stages followed by three dense layers."""
    h, w, c = input_shape
    b = GraphBuilder(name, seed=seed)
    x = b.input(input_shape, "input")

    c1 = scaled(6, width_scale)
    node = b.conv2d(x, c, c1, 5, name="conv1", activation=activation)
    node, h, w = _pool_if_possible(b, node, h, w, "pool1")

    c2 = scaled(16, width_scale)
    node = b.conv2d(node, c1, c2, 5, name="conv2", activation=activation)
    node, h, w = _pool_if_possible(b, node, h, w, "pool2")

    node = b.flatten(node, "flatten")
    features = h * w * c2
    node = b.dense(node, features, scaled(120, width_scale), name="fc1",
                   activation=activation)
    node = b.dense(node, scaled(120, width_scale), scaled(84, width_scale),
                   name="fc2", activation=activation)
    logits = b.dense(node, scaled(84, width_scale), num_classes, name="fc3",
                     activation=None)
    probs = b.softmax(logits, "softmax")
    b.output(probs)
    b.graph.mark_output(logits)

    return Model(name=name, graph=b.graph, input_name="input",
                 logits_name=logits, output_name=probs,
                 task="classification", activation=activation,
                 dataset="digits",
                 config={"input_shape": input_shape, "num_classes": num_classes,
                         "width_scale": width_scale})


def build_alexnet(input_shape: Tuple[int, int, int] = (24, 24, 3),
                  num_classes: int = 10, width_scale: float = 0.5,
                  activation: str = "relu", seed: int = 11,
                  name: str = "alexnet") -> Model:
    """AlexNet (CIFAR variant): conv/LRN/pool stages + three dense layers."""
    h, w, c = input_shape
    b = GraphBuilder(name, seed=seed)
    x = b.input(input_shape, "input")

    c1 = scaled(64, width_scale)
    node = b.conv2d(x, c, c1, 5, name="conv1", activation=activation)
    node, h, w = _pool_if_possible(b, node, h, w, "pool1")
    node = b.local_response_norm(node, "lrn1")

    c2 = scaled(64, width_scale)
    node = b.conv2d(node, c1, c2, 5, name="conv2", activation=activation)
    node = b.local_response_norm(node, "lrn2")
    node, h, w = _pool_if_possible(b, node, h, w, "pool2")

    node = b.flatten(node, "flatten")
    features = h * w * c2
    f1 = scaled(384, width_scale)
    f2 = scaled(192, width_scale)
    node = b.dense(node, features, f1, name="fc1", activation=activation)
    node = b.dense(node, f1, f2, name="fc2", activation=activation)
    logits = b.dense(node, f2, num_classes, name="fc3", activation=None)
    probs = b.softmax(logits, "softmax")
    b.output(probs)
    b.graph.mark_output(logits)

    return Model(name=name, graph=b.graph, input_name="input",
                 logits_name=logits, output_name=probs,
                 task="classification", activation=activation,
                 dataset="objects",
                 config={"input_shape": input_shape, "num_classes": num_classes,
                         "width_scale": width_scale})


#: Convolution plans for the two VGG variants: each entry is a block (list of
#: output channel counts); a max-pool follows every block.
VGG_PLANS = {
    "vgg11": [[64], [128], [256, 256], [512, 512], [512, 512]],
    "vgg16": [[64, 64], [128, 128], [256, 256, 256], [512, 512, 512],
              [512, 512, 512]],
}


def _build_vgg(variant: str, input_shape: Tuple[int, int, int],
               num_classes: int, width_scale: float, activation: str,
               seed: int, name: Optional[str], dataset: str,
               fc_units: int = 4096) -> Model:
    plan = VGG_PLANS[variant]
    h, w, c = input_shape
    model_name = name or variant
    b = GraphBuilder(model_name, seed=seed)
    x = b.input(input_shape, "input")

    node = x
    in_channels = c
    for block_idx, block in enumerate(plan, start=1):
        for conv_idx, out_channels in enumerate(block, start=1):
            out_channels = scaled(out_channels, width_scale)
            node = b.conv2d(node, in_channels, out_channels, 3,
                            name=f"block{block_idx}/conv{conv_idx}",
                            activation=activation)
            in_channels = out_channels
        node, h, w = _pool_if_possible(b, node, h, w, f"block{block_idx}/pool")

    node = b.flatten(node, "flatten")
    features = h * w * in_channels
    fc = scaled(fc_units, width_scale)
    node = b.dense(node, features, fc, name="fc1", activation=activation)
    node = b.dense(node, fc, fc, name="fc2", activation=activation)
    logits = b.dense(node, fc, num_classes, name="fc3", activation=None)
    probs = b.softmax(logits, "softmax")
    b.output(probs)
    b.graph.mark_output(logits)

    return Model(name=model_name, graph=b.graph, input_name="input",
                 logits_name=logits, output_name=probs,
                 task="classification", activation=activation,
                 dataset=dataset,
                 config={"input_shape": input_shape, "num_classes": num_classes,
                         "width_scale": width_scale, "variant": variant})


def build_vgg11(input_shape: Tuple[int, int, int] = (24, 24, 3),
                num_classes: int = 12, width_scale: float = 0.125,
                activation: str = "relu", seed: int = 12,
                name: Optional[str] = None) -> Model:
    """VGG-11 (configuration A), trained on the traffic-sign dataset."""
    return _build_vgg("vgg11", input_shape, num_classes, width_scale,
                      activation, seed, name, dataset="traffic_signs",
                      fc_units=512)


def build_vgg16(input_shape: Tuple[int, int, int] = (32, 32, 3),
                num_classes: int = 20, width_scale: float = 0.125,
                activation: str = "relu", seed: int = 13,
                name: Optional[str] = None) -> Model:
    """VGG-16 (configuration D), trained on the ImageNet stand-in."""
    return _build_vgg("vgg16", input_shape, num_classes, width_scale,
                      activation, seed, name, dataset="imagenet_like",
                      fc_units=512)
