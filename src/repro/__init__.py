"""Ranger reproduction: low-cost fault correction for DNNs via range restriction.

The package layout mirrors the system inventory in ``DESIGN.md``:

* :mod:`repro.graph`, :mod:`repro.ops`, :mod:`repro.nn` — the dataflow-graph
  substrate (the TensorFlow analogue) with a small training engine.
* :mod:`repro.quantization` — fixed-point datatypes (32-bit and 16-bit).
* :mod:`repro.datasets`, :mod:`repro.models` — synthetic datasets and the
  eight-model zoo of the paper's Table I.
* :mod:`repro.injection` — the TensorFI-analogue fault injector and SDC
  campaign runner.
* :mod:`repro.core` — Ranger itself: activation profiling, restriction-bound
  selection, and the Algorithm-1 graph transformation.
* :mod:`repro.baselines` — the comparison techniques of Fig. 8 and Table VI.
* :mod:`repro.analysis`, :mod:`repro.experiments` — metrics, FLOPs
  accounting, and one experiment definition per table/figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
