"""Dataset containers and split handling.

All datasets in the reproduction are procedurally generated: the paper's
evaluation needs (a) inputs the trained model classifies correctly in the
fault-free case, and (b) training data whose activation ranges can be
profiled.  Synthetic data provides both while keeping the repository fully
offline and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class Dataset:
    """A supervised dataset with a train/validation split.

    Attributes
    ----------
    name:
        Dataset identifier (``digits``, ``objects``, ``traffic_signs``,
        ``imagenet_like``, ``driving``).
    x_train, y_train:
        Training inputs and targets.
    x_val, y_val:
        Held-out validation inputs and targets, used to evaluate accuracy and
        (per the paper) to simulate unseen data when checking that Ranger's
        profiled bounds do not clip legitimate values.
    task:
        ``"classification"`` or ``"regression"``.
    num_classes:
        Number of classes for classification tasks; ``None`` for regression.
    """

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_val: np.ndarray
    y_val: np.ndarray
    task: str
    num_classes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.task not in ("classification", "regression"):
            raise ValueError(f"unknown task '{self.task}'")
        if len(self.x_train) != len(self.y_train):
            raise ValueError("x_train and y_train lengths differ")
        if len(self.x_val) != len(self.y_val):
            raise ValueError("x_val and y_val lengths differ")

    @property
    def input_shape(self) -> Tuple[int, ...]:
        return tuple(self.x_train.shape[1:])

    @property
    def train_size(self) -> int:
        return len(self.x_train)

    @property
    def val_size(self) -> int:
        return len(self.x_val)

    def sample_train(self, n: int, seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
        """A random subset of the training split (used for bound profiling)."""
        n = min(n, self.train_size)
        rng = np.random.default_rng(seed)
        idx = rng.choice(self.train_size, size=n, replace=False)
        return self.x_train[idx], self.y_train[idx]

    def sample_val(self, n: int, seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
        """A random subset of the validation split."""
        n = min(n, self.val_size)
        rng = np.random.default_rng(seed)
        idx = rng.choice(self.val_size, size=n, replace=False)
        return self.x_val[idx], self.y_val[idx]


def train_val_split(x: np.ndarray, y: np.ndarray, val_fraction: float,
                    seed: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split arrays into train and validation portions."""
    if not 0.0 < val_fraction < 1.0:
        raise ValueError(f"val_fraction must be in (0, 1), got {val_fraction}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(x))
    x, y = x[order], y[order]
    n_val = max(1, int(round(len(x) * val_fraction)))
    return x[n_val:], y[n_val:], x[:n_val], y[:n_val]
