"""Procedural image-generation primitives shared by the synthetic datasets.

Every generator works on a normalized coordinate grid and produces float
images in ``[0, 1]``.  The goal is not photorealism; it is to produce
class-conditional structure that small instances of the paper's architectures
can actually learn, so that the profiled activation ranges and the
fault-injection outcomes are meaningful.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def coordinate_grid(height: int, width: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return (yy, xx) grids normalized to [-1, 1]."""
    ys = np.linspace(-1.0, 1.0, height)
    xs = np.linspace(-1.0, 1.0, width)
    return np.meshgrid(ys, xs, indexing="ij")


def draw_disk(height: int, width: int, cy: float, cx: float,
              radius: float) -> np.ndarray:
    """Filled disk mask centred at (cy, cx) in normalized coordinates."""
    yy, xx = coordinate_grid(height, width)
    return ((yy - cy) ** 2 + (xx - cx) ** 2 <= radius ** 2).astype(np.float64)


def draw_ring(height: int, width: int, cy: float, cx: float,
              radius: float, thickness: float) -> np.ndarray:
    """Ring (annulus) mask."""
    yy, xx = coordinate_grid(height, width)
    dist = np.sqrt((yy - cy) ** 2 + (xx - cx) ** 2)
    return ((dist <= radius) & (dist >= radius - thickness)).astype(np.float64)


def draw_rectangle(height: int, width: int, cy: float, cx: float,
                   half_h: float, half_w: float) -> np.ndarray:
    """Axis-aligned filled rectangle mask."""
    yy, xx = coordinate_grid(height, width)
    return ((np.abs(yy - cy) <= half_h)
            & (np.abs(xx - cx) <= half_w)).astype(np.float64)


def draw_bar(height: int, width: int, angle: float, offset: float,
             thickness: float) -> np.ndarray:
    """A straight bar crossing the image at ``angle`` (radians)."""
    yy, xx = coordinate_grid(height, width)
    dist = np.abs(np.cos(angle) * xx + np.sin(angle) * yy - offset)
    return (dist <= thickness).astype(np.float64)


def draw_triangle(height: int, width: int, cy: float, cx: float,
                  size: float, inverted: bool = False) -> np.ndarray:
    """Filled upward (or inverted) triangle mask."""
    yy, xx = coordinate_grid(height, width)
    y = (yy - cy) * (-1.0 if inverted else 1.0)
    x = xx - cx
    # Upward triangle: apex at -size, base at +size/2.
    inside = (y <= size / 2.0) & (np.abs(x) <= (y + size) / 3.0 + 1e-9)
    return inside.astype(np.float64)


def draw_cross(height: int, width: int, cy: float, cx: float,
               size: float, thickness: float) -> np.ndarray:
    """A plus-shaped cross mask."""
    horizontal = draw_rectangle(height, width, cy, cx, thickness, size)
    vertical = draw_rectangle(height, width, cy, cx, size, thickness)
    return np.clip(horizontal + vertical, 0.0, 1.0)


def draw_checkerboard(height: int, width: int, cells: int) -> np.ndarray:
    """A checkerboard pattern with ``cells`` squares along each side."""
    yy, xx = coordinate_grid(height, width)
    return (((np.floor((yy + 1.0) / 2.0 * cells)
              + np.floor((xx + 1.0) / 2.0 * cells)) % 2)).astype(np.float64)


def sinusoidal_texture(height: int, width: int, freq_y: float, freq_x: float,
                       phase: float = 0.0) -> np.ndarray:
    """A directional sinusoidal texture in [0, 1]."""
    yy, xx = coordinate_grid(height, width)
    wave = np.sin(np.pi * (freq_y * yy + freq_x * xx) + phase)
    return 0.5 * (wave + 1.0)


def radial_gradient(height: int, width: int, cy: float = 0.0,
                    cx: float = 0.0) -> np.ndarray:
    """Radial gradient, 1.0 at the centre decaying to 0 at the corners."""
    yy, xx = coordinate_grid(height, width)
    dist = np.sqrt((yy - cy) ** 2 + (xx - cx) ** 2)
    return np.clip(1.0 - dist / np.sqrt(2.0), 0.0, 1.0)


def add_noise(image: np.ndarray, rng: np.random.Generator,
              scale: float) -> np.ndarray:
    """Add Gaussian pixel noise and clip back to [0, 1]."""
    return np.clip(image + rng.normal(0.0, scale, size=image.shape), 0.0, 1.0)


def colorize(mask: np.ndarray, color: Tuple[float, float, float],
             background: Tuple[float, float, float] = (0.0, 0.0, 0.0)) -> np.ndarray:
    """Turn a single-channel mask into an RGB image."""
    fg = np.asarray(color, dtype=np.float64)
    bg = np.asarray(background, dtype=np.float64)
    return mask[..., None] * fg + (1.0 - mask[..., None]) * bg
