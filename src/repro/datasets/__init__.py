"""Synthetic datasets standing in for MNIST / CIFAR-10 / GTSRB / ImageNet and
the real-world driving dataset used in the paper's evaluation."""

from .base import Dataset, train_val_split
from .driving import (
    MAX_STEERING_DEGREES,
    degrees_from_output,
    make_driving,
    render_road_frame,
)
from .vision import (
    make_digits,
    make_imagenet_like,
    make_objects,
    make_traffic_signs,
)

DATASET_FACTORIES = {
    "digits": make_digits,
    "objects": make_objects,
    "traffic_signs": make_traffic_signs,
    "imagenet_like": make_imagenet_like,
    "driving": make_driving,
}


def load_dataset(name: str, **kwargs) -> Dataset:
    """Build a dataset by name with the given generator parameters."""
    if name not in DATASET_FACTORIES:
        raise ValueError(f"unknown dataset '{name}'; "
                         f"expected one of {sorted(DATASET_FACTORIES)}")
    return DATASET_FACTORIES[name](**kwargs)


__all__ = [
    "DATASET_FACTORIES",
    "Dataset",
    "MAX_STEERING_DEGREES",
    "degrees_from_output",
    "load_dataset",
    "make_digits",
    "make_driving",
    "make_imagenet_like",
    "make_objects",
    "make_traffic_signs",
    "render_road_frame",
    "train_val_split",
]
