"""Synthetic driving-scene dataset for the steering-angle regression models.

The paper evaluates two AV models (Nvidia Dave and Comma.ai) on a real-world
driving dataset whose labels are steering angles.  This module generates
driving-like frames — a road whose curvature determines the steering angle —
so the regression task has exactly the structure the AV experiments need:

* the target is a continuous steering angle,
* it can be expressed either in **degrees** or in **radians** (the paper's
  Section VI-A retrains Dave to output degrees because the radian/atan head is
  far more fault-sensitive), and
* SDCs are judged by thresholding the angle deviation (15/30/60/120 degrees).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import Dataset, train_val_split
from . import synthetic as syn

#: Maximum steering magnitude in degrees used by the generator; real steering
#: datasets (e.g. the SullyChen dataset used by the paper) span roughly this
#: range.
MAX_STEERING_DEGREES = 180.0


def render_road_frame(height: int, width: int, curvature: float,
                      lane_offset: float, rng: np.random.Generator) -> np.ndarray:
    """Render one road frame.

    Parameters
    ----------
    curvature:
        Normalized road curvature in [-1, 1]; positive curves to the right.
    lane_offset:
        Lateral offset of the vehicle within the lane, in [-0.3, 0.3].
    """
    yy, xx = syn.coordinate_grid(height, width)
    # Road centreline: x position as a function of depth (y).  The bottom of
    # the image (y = 1) is nearest the vehicle.
    depth = (1.0 - yy) / 2.0           # 0 at the bottom, 1 at the horizon
    centre = lane_offset + curvature * depth ** 2 * 1.5
    half_width = 0.55 * (1.0 - 0.75 * depth)     # road narrows with distance

    road = (np.abs(xx - centre) <= half_width).astype(np.float64)
    lane_marking = (np.abs(xx - centre) <= 0.03 * (1.0 - 0.6 * depth)).astype(np.float64)
    sky = (yy < -0.2).astype(np.float64)

    image = np.zeros((height, width, 3))
    image += syn.colorize(road, (0.35, 0.35, 0.38))
    image += syn.colorize(lane_marking, (0.9, 0.9, 0.6)) * 0.8
    image += syn.colorize(sky * (1 - road), (0.45, 0.65, 0.9)) * 0.9
    grass = (1.0 - road) * (1.0 - sky)
    image += syn.colorize(grass, (0.15, 0.45, 0.2)) * 0.8
    image = np.clip(image, 0.0, 1.0)
    return syn.add_noise(image, rng, 0.03)


def make_driving(num_samples: int = 500, height: int = 24, width: int = 48,
                 angle_unit: str = "degrees", val_fraction: float = 0.2,
                 seed: int = 4) -> Dataset:
    """Driving dataset: frames labelled with the steering angle.

    Parameters
    ----------
    angle_unit:
        ``"degrees"`` (Comma.ai and the retrained Dave model) or
        ``"radians"`` (the original Dave model, whose atan output head the
        paper shows to be much more fault-sensitive).
    """
    if angle_unit not in ("degrees", "radians"):
        raise ValueError(f"angle_unit must be 'degrees' or 'radians', "
                         f"got '{angle_unit}'")
    rng = np.random.default_rng(seed)
    images = np.zeros((num_samples, height, width, 3))
    angles = np.zeros((num_samples, 1))
    for i in range(num_samples):
        curvature = float(rng.uniform(-1.0, 1.0))
        lane_offset = float(rng.uniform(-0.25, 0.25))
        images[i] = render_road_frame(height, width, curvature, lane_offset, rng)
        # The steering command follows the curvature with a small contribution
        # from the lane offset (the driver recentres the vehicle).
        degrees = (curvature * 0.85 + lane_offset * 0.6) * MAX_STEERING_DEGREES
        degrees += float(rng.normal(0.0, 2.0))      # label noise
        if angle_unit == "degrees":
            angles[i, 0] = degrees
        else:
            angles[i, 0] = np.deg2rad(degrees)
    x_train, y_train, x_val, y_val = train_val_split(images, angles,
                                                     val_fraction, seed)
    name = f"driving_{angle_unit}"
    return Dataset(name, x_train, y_train, x_val, y_val, task="regression")


def degrees_from_output(values: np.ndarray, angle_unit: str) -> np.ndarray:
    """Convert model outputs to degrees for SDC thresholding."""
    if angle_unit == "degrees":
        return np.asarray(values, dtype=np.float64)
    if angle_unit == "radians":
        return np.rad2deg(np.asarray(values, dtype=np.float64))
    raise ValueError(f"unknown angle unit '{angle_unit}'")
