"""Synthetic classification datasets.

Four generators standing in for the paper's classification datasets:

* :func:`make_digits` — MNIST stand-in (grayscale glyphs, 10 classes), used by
  LeNet.
* :func:`make_objects` — CIFAR-10 stand-in (colored shapes on textured
  backgrounds, 10 classes), used by AlexNet.
* :func:`make_traffic_signs` — GTSRB stand-in (sign shapes with colored
  borders and inner glyphs), used by VGG11.
* :func:`make_imagenet_like` — many-class textured-image stand-in, used by
  VGG16, ResNet-18 and SqueezeNet.

All generators are deterministic given a seed and return a
:class:`~repro.datasets.base.Dataset`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import Dataset, train_val_split
from . import synthetic as syn


# ---------------------------------------------------------------------------
# Digits (MNIST stand-in)
# ---------------------------------------------------------------------------

def _digit_glyph(height: int, width: int, digit: int,
                 rng: np.random.Generator) -> np.ndarray:
    """Draw a stylized glyph for one of ten digit classes."""
    jitter = lambda: rng.uniform(-0.12, 0.12)  # noqa: E731 - local shorthand
    cy, cx = jitter(), jitter()
    thickness = rng.uniform(0.10, 0.16)
    if digit == 0:
        glyph = syn.draw_ring(height, width, cy, cx, 0.65, thickness * 2)
    elif digit == 1:
        glyph = syn.draw_rectangle(height, width, cy, cx, 0.65, thickness)
    elif digit == 2:
        glyph = (syn.draw_bar(height, width, 0.0, -0.5 + cy, thickness)
                 + syn.draw_bar(height, width, np.pi / 4, cy, thickness)
                 + syn.draw_bar(height, width, 0.0, 0.5 + cy, thickness))
    elif digit == 3:
        glyph = (syn.draw_bar(height, width, 0.0, -0.5 + cy, thickness)
                 + syn.draw_bar(height, width, 0.0, cy, thickness)
                 + syn.draw_bar(height, width, 0.0, 0.5 + cy, thickness)
                 + syn.draw_rectangle(height, width, cy, cx + 0.5, 0.6, thickness))
    elif digit == 4:
        glyph = (syn.draw_rectangle(height, width, cy - 0.3, cx - 0.3, 0.35, thickness)
                 + syn.draw_rectangle(height, width, cy, cx + 0.2, 0.65, thickness)
                 + syn.draw_bar(height, width, 0.0, cy, thickness))
    elif digit == 5:
        glyph = (syn.draw_bar(height, width, 0.0, -0.5 + cy, thickness)
                 + syn.draw_rectangle(height, width, cy - 0.25, cx - 0.3, 0.3, thickness)
                 + syn.draw_bar(height, width, 0.0, cy, thickness)
                 + syn.draw_rectangle(height, width, cy + 0.25, cx + 0.3, 0.3, thickness)
                 + syn.draw_bar(height, width, 0.0, 0.5 + cy, thickness))
    elif digit == 6:
        glyph = (syn.draw_ring(height, width, cy + 0.25, cx, 0.42, thickness * 2)
                 + syn.draw_rectangle(height, width, cy - 0.25, cx - 0.35, 0.4, thickness))
    elif digit == 7:
        glyph = (syn.draw_bar(height, width, 0.0, -0.5 + cy, thickness)
                 + syn.draw_bar(height, width, np.pi / 3, cy, thickness))
    elif digit == 8:
        glyph = (syn.draw_ring(height, width, cy - 0.3, cx, 0.35, thickness * 2)
                 + syn.draw_ring(height, width, cy + 0.3, cx, 0.35, thickness * 2))
    else:  # 9
        glyph = (syn.draw_ring(height, width, cy - 0.25, cx, 0.42, thickness * 2)
                 + syn.draw_rectangle(height, width, cy + 0.25, cx + 0.35, 0.4, thickness))
    return np.clip(glyph, 0.0, 1.0)


def make_digits(num_samples: int = 600, image_size: int = 20,
                noise: float = 0.08, val_fraction: float = 0.2,
                seed: int = 0) -> Dataset:
    """MNIST stand-in: grayscale digit glyphs, 10 classes."""
    rng = np.random.default_rng(seed)
    images = np.zeros((num_samples, image_size, image_size, 1))
    labels = np.zeros(num_samples, dtype=np.int64)
    for i in range(num_samples):
        digit = int(rng.integers(10))
        glyph = _digit_glyph(image_size, image_size, digit, rng)
        images[i, :, :, 0] = syn.add_noise(glyph, rng, noise)
        labels[i] = digit
    x_train, y_train, x_val, y_val = train_val_split(images, labels,
                                                     val_fraction, seed)
    return Dataset("digits", x_train, y_train, x_val, y_val,
                   task="classification", num_classes=10)


# ---------------------------------------------------------------------------
# Objects (CIFAR-10 stand-in)
# ---------------------------------------------------------------------------

_OBJECT_COLORS = [
    (0.9, 0.2, 0.2), (0.2, 0.9, 0.2), (0.2, 0.2, 0.9), (0.9, 0.9, 0.2),
    (0.9, 0.2, 0.9), (0.2, 0.9, 0.9), (0.95, 0.6, 0.1), (0.6, 0.3, 0.8),
    (0.5, 0.8, 0.3), (0.8, 0.8, 0.8),
]


def _object_image(size: int, label: int, rng: np.random.Generator) -> np.ndarray:
    """A colored shape class on a textured background."""
    shape_kind = label % 5
    color = _OBJECT_COLORS[label]
    cy, cx = rng.uniform(-0.2, 0.2, size=2)
    scale = rng.uniform(0.45, 0.65)
    if shape_kind == 0:
        mask = syn.draw_disk(size, size, cy, cx, scale)
    elif shape_kind == 1:
        mask = syn.draw_rectangle(size, size, cy, cx, scale * 0.7, scale * 0.7)
    elif shape_kind == 2:
        mask = syn.draw_triangle(size, size, cy, cx, scale, inverted=False)
    elif shape_kind == 3:
        mask = syn.draw_cross(size, size, cy, cx, scale, scale * 0.25)
    else:
        mask = syn.draw_ring(size, size, cy, cx, scale, scale * 0.35)
    background = syn.sinusoidal_texture(size, size,
                                        freq_y=1.0 + (label // 5) * 2.0,
                                        freq_x=2.0,
                                        phase=rng.uniform(0, np.pi))
    image = syn.colorize(mask, color,
                         background=(0.25, 0.25, 0.25))
    image += 0.3 * background[..., None]
    return np.clip(image, 0.0, 1.0)


def make_objects(num_samples: int = 600, image_size: int = 24,
                 noise: float = 0.05, val_fraction: float = 0.2,
                 seed: int = 1) -> Dataset:
    """CIFAR-10 stand-in: 10 classes of colored shapes on textures."""
    rng = np.random.default_rng(seed)
    images = np.zeros((num_samples, image_size, image_size, 3))
    labels = np.zeros(num_samples, dtype=np.int64)
    for i in range(num_samples):
        label = int(rng.integers(10))
        images[i] = syn.add_noise(_object_image(image_size, label, rng), rng, noise)
        labels[i] = label
    x_train, y_train, x_val, y_val = train_val_split(images, labels,
                                                     val_fraction, seed)
    return Dataset("objects", x_train, y_train, x_val, y_val,
                   task="classification", num_classes=10)


# ---------------------------------------------------------------------------
# Traffic signs (GTSRB stand-in)
# ---------------------------------------------------------------------------

def _traffic_sign_image(size: int, label: int, num_classes: int,
                        rng: np.random.Generator) -> np.ndarray:
    """A sign: border shape determined by class group, inner glyph by class."""
    group = label % 3  # circle / triangle / rectangle signs
    cy, cx = rng.uniform(-0.1, 0.1, size=2)
    if group == 0:
        border = syn.draw_ring(size, size, cy, cx, 0.8, 0.22)
        fill = syn.draw_disk(size, size, cy, cx, 0.6)
        border_color = (0.85, 0.1, 0.1)
    elif group == 1:
        border = syn.draw_triangle(size, size, cy, cx, 1.0)
        fill = syn.draw_triangle(size, size, cy, cx, 0.7)
        border_color = (0.85, 0.1, 0.1)
    else:
        border = syn.draw_rectangle(size, size, cy, cx, 0.75, 0.75)
        fill = syn.draw_rectangle(size, size, cy, cx, 0.55, 0.55)
        border_color = (0.1, 0.2, 0.85)
    inner_kind = (label // 3) % 4
    if inner_kind == 0:
        glyph = syn.draw_bar(size, size, np.pi / 2, cy, 0.12)
    elif inner_kind == 1:
        glyph = syn.draw_bar(size, size, np.pi / 4, cy, 0.12)
    elif inner_kind == 2:
        glyph = syn.draw_cross(size, size, cy, cx, 0.4, 0.1)
    else:
        glyph = syn.draw_disk(size, size, cy, cx, 0.25)
    glyph = glyph * fill
    image = syn.colorize(border, border_color, background=(0.35, 0.4, 0.35))
    image += syn.colorize(fill, (0.95, 0.95, 0.95)) * 0.8
    image -= syn.colorize(glyph, (0.9, 0.9, 0.9)) * 0.9
    return np.clip(image, 0.0, 1.0)


def make_traffic_signs(num_samples: int = 600, image_size: int = 24,
                       num_classes: int = 12, noise: float = 0.05,
                       val_fraction: float = 0.2, seed: int = 2) -> Dataset:
    """GTSRB stand-in: traffic-sign-like images.

    The real GTSRB has 43 classes; the default here is 12 (three border
    shapes x four inner glyphs) to keep laptop-scale training fast, and can be
    raised via ``num_classes``.
    """
    if num_classes > 12:
        raise ValueError("the synthetic traffic-sign generator supports at "
                         "most 12 distinguishable classes")
    rng = np.random.default_rng(seed)
    images = np.zeros((num_samples, image_size, image_size, 3))
    labels = np.zeros(num_samples, dtype=np.int64)
    for i in range(num_samples):
        label = int(rng.integers(num_classes))
        images[i] = syn.add_noise(
            _traffic_sign_image(image_size, label, num_classes, rng), rng, noise)
        labels[i] = label
    x_train, y_train, x_val, y_val = train_val_split(images, labels,
                                                     val_fraction, seed)
    return Dataset("traffic_signs", x_train, y_train, x_val, y_val,
                   task="classification", num_classes=num_classes)


# ---------------------------------------------------------------------------
# ImageNet stand-in
# ---------------------------------------------------------------------------

def _imagenet_like_image(size: int, label: int, rng: np.random.Generator) -> np.ndarray:
    """Class-conditional multi-scale texture with a class-colored object."""
    freq = 1.0 + (label % 5) * 1.5
    orientation = (label // 5) * np.pi / 4.0
    texture = syn.sinusoidal_texture(size, size,
                                     freq_y=freq * np.sin(orientation),
                                     freq_x=freq * np.cos(orientation),
                                     phase=rng.uniform(0, np.pi))
    color = _OBJECT_COLORS[label % len(_OBJECT_COLORS)]
    cy, cx = rng.uniform(-0.3, 0.3, size=2)
    mask = syn.draw_disk(size, size, cy, cx, rng.uniform(0.3, 0.5))
    image = 0.55 * texture[..., None] * np.asarray([0.8, 0.9, 1.0])
    image += syn.colorize(mask, color) * 0.7
    image += 0.2 * syn.radial_gradient(size, size, cy, cx)[..., None]
    return np.clip(image, 0.0, 1.0)


def make_imagenet_like(num_samples: int = 800, image_size: int = 32,
                       num_classes: int = 20, noise: float = 0.04,
                       val_fraction: float = 0.2, seed: int = 3) -> Dataset:
    """ImageNet stand-in: many-class textured images for the large CNNs."""
    if num_classes > 40:
        raise ValueError("the synthetic ImageNet generator supports at most "
                         "40 distinguishable classes")
    rng = np.random.default_rng(seed)
    images = np.zeros((num_samples, image_size, image_size, 3))
    labels = np.zeros(num_samples, dtype=np.int64)
    for i in range(num_samples):
        label = int(rng.integers(num_classes))
        images[i] = syn.add_noise(_imagenet_like_image(image_size, label, rng),
                                  rng, noise)
        labels[i] = label
    x_train, y_train, x_val, y_val = train_val_split(images, labels,
                                                     val_fraction, seed)
    return Dataset("imagenet_like", x_train, y_train, x_val, y_val,
                   task="classification", num_classes=num_classes)
