"""SDC (silent data corruption) criteria.

The paper classifies a faulty run as an SDC when the program's output deviates
from the fault-free output in a way that matters for the task:

* **Classifiers** — the predicted label changes (top-1), or the correct label
  drops out of the top-5 predictions (for the ImageNet models the paper
  reports both).
* **Steering models** — the predicted steering angle deviates from the
  fault-free angle by more than a threshold; the paper uses 15, 30, 60 and
  120 degrees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..datasets.driving import degrees_from_output

#: The steering-angle deviation thresholds (degrees) used throughout the
#: paper's AV-model evaluation.
STEERING_THRESHOLDS = (15.0, 30.0, 60.0, 120.0)


class SDCCriterion:
    """Decides whether a faulty output constitutes an SDC.

    Criteria are **equivalence-mode robust by construction**: every verdict
    is an argmax or threshold comparison, which the batched replay engine's
    ULP-level deviations cannot realistically flip — that is what lets
    `ULP_TOLERANT` campaigns assert SDC-*verdict* agreement with the
    bit-exact incremental path rather than bit identity
    (see :class:`repro.graph.EquivalenceMode`).
    """

    name = "sdc"

    def is_sdc(self, golden: np.ndarray, faulty: np.ndarray) -> bool:
        raise NotImplementedError

    def is_sdc_rows(self, golden: np.ndarray,
                    faulty_rows: np.ndarray) -> np.ndarray:
        """Vectorized verdicts for B stacked faulty outputs.

        ``faulty_rows`` has shape ``(B, ...)`` where each row is one trial's
        output; ``golden`` is the shared batch-1 golden output.  The default
        implementation loops over :meth:`is_sdc`; subclasses override it
        with a vectorized equivalent so batched campaigns classify a whole
        stack in one pass.
        """
        faulty_rows = np.asarray(faulty_rows)
        return np.array([self.is_sdc(golden, faulty_rows[i:i + 1])
                         for i in range(faulty_rows.shape[0])], dtype=bool)


@dataclass
class TopKMisclassification(SDCCriterion):
    """SDC when the golden top-1 label leaves the faulty top-k predictions.

    With ``k=1`` this is plain misclassification relative to the fault-free
    run; with ``k=5`` it is the top-5 criterion used for the ImageNet models.
    Outputs are class-probability (or logit) vectors of shape
    ``(1, num_classes)``.
    """

    k: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be positive, got {self.k}")
        self.name = f"top{self.k}"

    def is_sdc(self, golden: np.ndarray, faulty: np.ndarray) -> bool:
        golden = np.asarray(golden).reshape(-1)
        faulty = np.asarray(faulty).reshape(-1)
        golden_label = int(np.argmax(golden))
        if self.k == 1:
            return int(np.argmax(faulty)) != golden_label
        # kind="stable" pins the tie order (equal scores rank by index,
        # which the reversal turns into higher-index-first); the default
        # introsort is only incidentally stable below ~16 elements, and the
        # vectorized is_sdc_rows must agree with this path on tied outputs
        # — routine under fixed-point quantization — for any class count.
        top_k = np.argsort(faulty, kind="stable")[::-1][:self.k]
        return golden_label not in top_k

    def is_sdc_rows(self, golden: np.ndarray,
                    faulty_rows: np.ndarray) -> np.ndarray:
        golden_label = int(np.argmax(np.asarray(golden).reshape(-1)))
        rows = np.asarray(faulty_rows).reshape(len(faulty_rows), -1)
        if self.k == 1:
            return np.argmax(rows, axis=1) != golden_label
        # Rank of the golden label within each faulty row: SDC when at
        # least k entries rank ahead of it.  Ties resolve exactly like the
        # scalar path's reversed stable argsort, where an equal value at a
        # *higher* index ranks first.
        golden_scores = rows[:, golden_label][:, None]
        beats = (rows > golden_scores).sum(axis=1)
        tied_after = ((rows == golden_scores)[:, golden_label + 1:]).sum(axis=1)
        return (beats + tied_after) >= self.k


@dataclass
class SteeringDeviation(SDCCriterion):
    """SDC when the steering angle deviates by more than ``threshold`` degrees.

    ``angle_unit`` describes the unit of the model's output so the deviation
    can always be thresholded in degrees (the paper's thresholds are 15, 30,
    60 and 120 degrees regardless of the model's native unit).
    """

    threshold_degrees: float = 15.0
    angle_unit: str = "degrees"

    def __post_init__(self) -> None:
        if self.threshold_degrees <= 0:
            raise ValueError("threshold must be positive")
        self.name = f"steering>{self.threshold_degrees:g}deg"

    def deviation_degrees(self, golden: np.ndarray, faulty: np.ndarray) -> float:
        golden_deg = degrees_from_output(np.asarray(golden).reshape(-1),
                                         self.angle_unit)
        faulty_deg = degrees_from_output(np.asarray(faulty).reshape(-1),
                                         self.angle_unit)
        return float(np.max(np.abs(golden_deg - faulty_deg)))

    def is_sdc(self, golden: np.ndarray, faulty: np.ndarray) -> bool:
        deviation = self.deviation_degrees(golden, faulty)
        if not np.isfinite(deviation):
            return True
        return deviation > self.threshold_degrees

    def is_sdc_rows(self, golden: np.ndarray,
                    faulty_rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(faulty_rows)
        golden_deg = degrees_from_output(np.asarray(golden).reshape(1, -1),
                                         self.angle_unit)
        faulty_deg = degrees_from_output(rows.reshape(rows.shape[0], -1),
                                         self.angle_unit)
        deviation = np.abs(faulty_deg - golden_deg).max(axis=1)
        return ~np.isfinite(deviation) | (deviation > self.threshold_degrees)


def criteria_for_model(model, thresholds: Sequence[float] = STEERING_THRESHOLDS,
                       top_k: Sequence[int] = (1,)) -> list:
    """The default list of SDC criteria to evaluate for a model.

    Classifiers get one criterion per requested ``top_k``; steering models get
    one :class:`SteeringDeviation` per threshold.
    """
    if model.task == "classification":
        return [TopKMisclassification(k=k) for k in top_k]
    return [SteeringDeviation(threshold_degrees=t,
                              angle_unit=model.angle_unit or "degrees")
            for t in thresholds]
