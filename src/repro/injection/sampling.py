"""Stratified / importance sampling over the fault space.

Uniform random fault injection spends most of its budget on trials whose
verdict is already certain: low-order bit flips almost never cause SDC,
high-order flips in late layers almost always get detected or masked the
same way, and the campaign keeps sampling them anyway.  This module
partitions the fault space into **strata** — the cross product of

* **layer bands**: contiguous runs of injectable nodes in topological
  order, cut so each band holds a near-equal share of the injectable
  state space, and
* **bit bands**: contiguous ranges of bit positions of the value
  representation,

and lets the campaign allocate each wave's trials across strata —
uniformly on the first wave (so every stratum has data), then
Neyman-style toward strata whose verdicts are still uncertain.  Because
a stratum's sampling probability differs from its share of the fault
space, raw counts are biased; :func:`repro.analysis.stratified_rate`
reweights per-stratum counts by the stratum weights computed here into
an unbiased Horvitz–Thompson estimate of the overall rate.

Per-stratum draws use their own :func:`stratum_rng` streams (two-element
spawn keys, collision-free against the campaign's single-element
per-trial keys), so growing a stratum's allocation extends its sample
without re-randomizing earlier draws — the prefix property campaigns
rely on for bit-reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .fault_models import FaultModel
from .injector import FaultInjector, InjectionPlan

#: First spawn-key element of per-stratum streams.  Trial streams use
#: single-element keys ``(trial_index,)`` and the plan stream uses
#: ``(PLAN_STREAM_KEY, 0)``; SeedSequence spawn keys of different lengths
#: never collide, and the leading element keeps the two-element spaces
#: apart from each other.
STRATUM_STREAM_KEY = 2

#: A stratum key: ``(layer_band_index, bit_band_index)``.
StratumKey = Tuple[int, int]


def stratum_rng(seed: int, stratum_index: int) -> np.random.Generator:
    """The dedicated, index-keyed RNG stream of one stratum.

    Analogous to ``campaign.trial_rng``: the stream depends only on the
    campaign seed and the stratum's index in the space, never on how many
    trials other strata drew, so per-stratum sample sequences are stable
    as allocations evolve.
    """
    ss = np.random.SeedSequence(entropy=seed,
                                spawn_key=(STRATUM_STREAM_KEY, stratum_index))
    return np.random.default_rng(ss)


#: Relative tolerance within which a float share counts as an integer in
#: :func:`largest_remainder`.  ``q / scale * total`` carries a few ulps of
#: rounding error, so an exactly-proportional quota (thirds of a
#: divisible-by-three total, say) can come out as ``k - 1e-16``.
SHARE_EPSILON = 1e-9


def largest_remainder(quotas: Sequence[float], total: int) -> List[int]:
    """Round non-negative ``quotas`` to integers summing to ``total``.

    Hamilton's method: everyone gets the floor of their quota, the
    leftover units go to the largest fractional parts (ties broken by
    lower index, so the rounding is deterministic).

    Shares within :data:`SHARE_EPSILON` of an integer are snapped to that
    integer *before* flooring: ``q / scale * total`` is float arithmetic,
    so an exactly-proportional quota can land at ``k - 1e-16`` and floor
    to ``k - 1``.  The leftover pass would usually repair that (the
    near-1.0 fractional part wins a unit back first), but the repair
    consumes the stratum's place in the remainder ordering and lets float
    noise decide ties that should be decided by the exact quotas — the
    snap keeps exactly-proportional allocations independent of rounding
    noise.  Should accumulated snapping ever over-allocate, units are
    reclaimed from the *smallest* fractional parts (the reverse of the
    award order), so the quota rule ``|counts[i] - share_i| < 1`` holds
    either way.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    quotas = [float(q) for q in quotas]
    if any(q < 0 for q in quotas):
        raise ValueError(f"quotas must be non-negative, got {quotas}")
    scale = sum(quotas)
    if scale <= 0:
        quotas = [1.0] * len(quotas)
        scale = float(len(quotas))
    shares = [q / scale * total for q in quotas]
    snapped = [float(round(share))
               if abs(share - round(share)) <= SHARE_EPSILON * max(1.0, share)
               else share
               for share in shares]
    counts = [int(share) for share in snapped]
    leftover = total - sum(counts)
    order = sorted(range(len(snapped)),
                   key=lambda i: (-(snapped[i] - counts[i]), i))
    if leftover >= 0:
        for i in order[:leftover]:
            counts[i] += 1
    else:  # snapping rounded up past the total; reclaim deterministically
        for i in reversed(order):
            if leftover == 0:
                break
            if counts[i] > 0:
                counts[i] -= 1
                leftover += 1
    return counts


@dataclass(frozen=True)
class Stratification:
    """How to partition the fault space.

    Attributes
    ----------
    layer_bands:
        Number of contiguous topological bands the injectable nodes are
        cut into (clamped to the node count).
    bit_bands:
        Number of contiguous bit-position ranges.  Use ``1`` for fault
        models without per-bit semantics (random-value, stuck-at-zero);
        the single band then leaves plans unrestricted.
    """

    layer_bands: int = 4
    bit_bands: int = 4

    def __post_init__(self) -> None:
        if self.layer_bands < 1:
            raise ValueError(
                f"layer_bands must be positive, got {self.layer_bands}")
        if self.bit_bands < 1:
            raise ValueError(
                f"bit_bands must be positive, got {self.bit_bands}")


class StratumSpace:
    """The concrete strata of one (model, fault model) pair.

    Built from the injector's profiled per-node state space.  Layer bands
    are contiguous in topological order and balanced by cumulative state
    space (a band boundary is placed where the running total crosses the
    next equal share); bit bands split ``[0, total_bits)`` into
    near-equal contiguous ranges.  The stratum weight ``q_h`` is the
    probability a *uniform* fault lands in stratum ``h``:
    ``(band_state_space / total_state_space) * (band_bits / total_bits)``.
    Weights sum to 1 by construction.
    """

    def __init__(self, site_sizes: Mapping[str, int],
                 fault_model: FaultModel,
                 stratification: Stratification) -> None:
        if not site_sizes:
            raise ValueError("cannot stratify an empty fault space")
        self.stratification = stratification
        names = list(site_sizes.keys())  # insertion order == topo order
        total_space = float(sum(site_sizes.values()))

        n_layer = min(stratification.layer_bands, len(names))
        self.layer_band_nodes: List[List[str]] = [[] for _ in range(n_layer)]
        layer_space = [0.0] * n_layer
        acc, band = 0.0, 0
        for i, name in enumerate(names):
            # Never leave a later band empty: if only as many nodes remain
            # as bands, advance one band per node.
            remaining_bands = n_layer - band - 1
            if (band < n_layer - 1
                    and (acc >= total_space * (band + 1) / n_layer
                         or len(names) - i <= remaining_bands)):
                band += 1
            self.layer_band_nodes[band].append(name)
            layer_space[band] += float(site_sizes[name])
            acc += float(site_sizes[name])

        total_bits = getattr(fault_model, "total_bits", None)
        if stratification.bit_bands > 1 and total_bits is None:
            raise ValueError(
                f"{fault_model.describe()} has no bit positions to stratify "
                f"over; use Stratification(bit_bands=1)")
        if total_bits is not None:
            n_bit = min(stratification.bit_bands, int(total_bits))
            edges = [round(b * total_bits / n_bit) for b in range(n_bit + 1)]
            self.bit_band_ranges: List[Optional[Tuple[int, int]]] = [
                (edges[b], edges[b + 1]) for b in range(n_bit)]
        else:
            n_bit = 1
            self.bit_band_ranges = [None]
        # A 1-band split of a bit-flip model is intentionally unrestricted
        # (band is the full range, but leave plans unbanded so payloads and
        # RNG draws match unstratified campaigns exactly).
        if n_bit == 1:
            self.bit_band_ranges = [None]

        self.keys: List[StratumKey] = [(lb, bb) for lb in range(n_layer)
                                       for bb in range(n_bit)]
        bit_frac = [1.0 if rng is None
                    else (rng[1] - rng[0]) / float(total_bits)
                    for rng in self.bit_band_ranges]
        self.weights: Dict[StratumKey, float] = {
            (lb, bb): (layer_space[lb] / total_space) * bit_frac[bb]
            for lb in range(n_layer) for bb in range(n_bit)}

    def __len__(self) -> int:
        return len(self.keys)

    def index_of(self, key: StratumKey) -> int:
        return self.keys.index(key)

    @staticmethod
    def label(key: StratumKey) -> str:
        return f"L{key[0]}/B{key[1]}"

    def sample_stratum_plans(self, injector: FaultInjector, key: StratumKey,
                             count: int, rng: np.random.Generator
                             ) -> List[InjectionPlan]:
        """Draw ``count`` plans confined to stratum ``key``.

        The draw stays size-proportional within the stratum's node band
        (uniform over the stratum's values) and stamps the stratum's bit
        band on every site.
        """
        layer_band, bit_band = key
        return injector.sample_plans(
            count, rng=rng, nodes=self.layer_band_nodes[layer_band],
            bit_range=self.bit_band_ranges[bit_band])


def uniform_allocation(space: StratumSpace, wave_trials: int) -> Dict[StratumKey, int]:
    """Split one wave evenly across strata (largest-remainder rounded).

    With ``wave_trials >= len(space)`` every stratum receives at least
    one trial — the first-wave guarantee the Neyman step builds on.
    """
    counts = largest_remainder([1.0] * len(space), wave_trials)
    return dict(zip(space.keys, counts))


def neyman_allocation(space: StratumSpace, wave_trials: int,
                      stratum_stats: Mapping[StratumKey,
                                             Sequence[Tuple[int, int]]],
                      ) -> Dict[StratumKey, int]:
    """Allocate one wave's trials toward strata with uncertain verdicts.

    ``stratum_stats[h]`` holds ``(successes, trials)`` pairs — one per
    stopping criterion — observed in stratum ``h`` so far.  The Neyman
    rule allocates ``n_h ∝ q_h · σ_h`` where ``σ_h`` is the largest
    per-criterion binomial standard deviation
    ``sqrt(p̃_h (1 - p̃_h))`` with the Jeffreys-smoothed
    ``p̃ = (s + 0.5) / (n + 1)`` (never exactly 0 or 1, so a stratum is
    only *starved*, never frozen, by extreme early counts).  Unsampled
    strata score the maximal ``σ = 0.5``.
    """
    scores = []
    for key in space.keys:
        stats = stratum_stats.get(key, ())
        sigma = 0.5
        if stats:
            sigma = max(
                (((s + 0.5) / (n + 1)) * (1 - (s + 0.5) / (n + 1))) ** 0.5
                if n > 0 else 0.5
                for s, n in stats)
        scores.append(space.weights[key] * sigma)
    counts = largest_remainder(scores, wave_trials)
    return dict(zip(space.keys, counts))
