"""Fault injector: corrupts one operator output during one inference.

This is the reproduction's TensorFI analogue.  The injector

1. profiles the graph once to learn every injectable node's output size (the
   "state space" of each operator),
2. samples injection sites with probability proportional to that state space
   (a random transient fault is more likely to land in a larger tensor), and
3. installs an executor output hook that applies the configured
   :class:`~repro.injection.fault_models.FaultModel` at the chosen site(s)
   during the next forward pass.

The last fully-connected layer (and everything downstream of it) is excluded
from injection by default, mirroring the paper's setup: faults there are
directly output-coupled and the paper protects that layer by duplication
instead (its state space is a negligible fraction of the total).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Set, Tuple)

import numpy as np

from ..graph import (BatchedExecutionResult, ExecutionResult, Executor,
                     Graph, Node, SparseRows)
from ..graph.equivalence import DEFAULT_MAX_ULPS, EquivalenceMode
from ..models.base import Model
from .fault_models import FaultModel, FaultSpec


class InjectionError(RuntimeError):
    """Raised when the injector cannot find a legal injection site."""


def downstream_nodes(graph: Graph, start: str) -> Set[str]:
    """All nodes reachable from ``start`` (including ``start`` itself).

    Thin wrapper over :meth:`Graph.downstream`, kept for backwards
    compatibility; the old O(N^2) fixpoint here is gone — the graph now
    maintains forward adjacency and answers cone queries in O(V+E).
    """
    return graph.downstream(start)


def last_layer_exclusions(model: Model) -> Set[str]:
    """Nodes excluded from injection for a model: the last FC layer onward.

    The logits node marks the output of the final fully-connected layer; we
    exclude that node's layer (its matmul and bias-add) plus everything
    downstream (softmax / output heads), matching the paper's "we exclude the
    last FC layer" policy.
    """
    graph = model.graph
    excluded = downstream_nodes(graph, model.logits_name)
    # Walk back over the bias-add / matmul pair that produced the logits so
    # the whole final layer is excluded, not just its output node.
    frontier = [model.logits_name]
    while frontier:
        name = frontier.pop()
        node = graph.node(name)
        if type(node.op).__name__ in ("BiasAdd", "MatMul", "Identity"):
            excluded.add(name)
            frontier.extend(node.inputs)
    return excluded


@dataclass
class InjectionPlan:
    """A concrete set of (node, element, ...) sites chosen for one trial.

    ``bit_ranges``, when present, aligns with ``sites`` and restricts the
    bit position the fault model may flip at that site to ``[low, high)``
    — the stratum-conditional plans importance-sampled campaigns draw
    (see :mod:`repro.injection.sampling`).  ``None`` (the default, and the
    per-entry value for unrestricted sites) keeps the fault model's full
    bit range, which is byte-compatible with every pre-existing plan.
    """

    sites: List[Tuple[str, int]]
    bit_ranges: Optional[List[Optional[Tuple[int, int]]]] = None

    def __post_init__(self) -> None:
        if (self.bit_ranges is not None
                and len(self.bit_ranges) != len(self.sites)):
            raise ValueError(
                f"bit_ranges must align with sites: got {len(self.bit_ranges)}"
                f" ranges for {len(self.sites)} sites")

    def node_names(self) -> Set[str]:
        return {name for name, _ in self.sites}

    def site_items(self) -> List[Tuple[str, int, Optional[Tuple[int, int]]]]:
        """``(node, element, bit_range_or_None)`` triples, in site order."""
        ranges = self.bit_ranges or [None] * len(self.sites)
        return [(name, element, band)
                for (name, element), band in zip(self.sites, ranges)]

    # -- serialization (worker fan-out) -----------------------------------

    def to_payload(self) -> List[Tuple[str, int]]:
        """A plain-tuple form of the plan for cross-process transfer.

        Multiprocess campaigns ship thousands of plans to worker processes;
        sending bare ``(node, element)`` tuples keeps the pickled campaign
        spec small and independent of this class's layout.  Bit-banded
        sites travel as ``(node, element, low, high)`` 4-tuples; plain
        sites keep the legacy 2-tuple shape, so unstratified payloads are
        byte-identical to previous releases.
        """
        out: List[Tuple] = []
        for name, element, band in self.site_items():
            if band is None:
                out.append((str(name), int(element)))
            else:
                out.append((str(name), int(element),
                            int(band[0]), int(band[1])))
        return out

    @classmethod
    def from_payload(cls, payload: Sequence[Tuple]) -> "InjectionPlan":
        """Rebuild a plan from :meth:`to_payload` output."""
        sites: List[Tuple[str, int]] = []
        bands: List[Optional[Tuple[int, int]]] = []
        for entry in payload:
            sites.append((entry[0], int(entry[1])))
            bands.append((int(entry[2]), int(entry[3]))
                         if len(entry) == 4 else None)
        return cls(sites=sites,
                   bit_ranges=bands if any(b is not None for b in bands)
                   else None)


class FaultInjector:
    """Samples injection sites and applies faults through executor hooks.

    Parameters
    ----------
    model:
        The model under test (its graph defines the injectable state space).
    fault_model:
        The corruption to apply at each chosen site.
    exclude_nodes:
        Extra node names to exclude.  The last-FC-layer exclusion is always
        applied; pass ``exclude_last_layer=False`` to disable it.
    include_categories:
        Node categories eligible for injection.  Defaults to every
        computational category (compute, activation, pooling, reshape,
        concat, normalization).  Protection nodes inserted by Ranger are
        *never* injected: Ranger corrects faults that occur in the
        computation it guards; faults inside the tiny comparison operators
        themselves are outside the paper's fault model.
    """

    DEFAULT_CATEGORIES = {"compute", "activation", "pooling", "reshape",
                          "concat", "normalization"}

    def __init__(self, model: Model, fault_model: FaultModel,
                 exclude_nodes: Optional[Set[str]] = None,
                 include_categories: Optional[Set[str]] = None,
                 exclude_last_layer: bool = True,
                 seed: int = 0) -> None:
        self.model = model
        self.fault_model = fault_model
        self.rng = np.random.default_rng(seed)
        self.include_categories = set(include_categories
                                      or self.DEFAULT_CATEGORIES)
        excluded = set(exclude_nodes or ())
        if exclude_last_layer:
            excluded |= last_layer_exclusions(model)
        self.excluded_nodes = excluded
        self._site_sizes: Optional[Dict[str, int]] = None

    # -- state-space profiling ---------------------------------------------------

    def profile_state_space(self, sample_input: np.ndarray,
                            executor: Optional[Executor] = None) -> Dict[str, int]:
        """Measure each injectable node's output element count.

        ``sample_input`` must be a single-example batch (shape ``(1, ...)``)
        so the recorded sizes correspond to one inference.
        """
        ex = executor or self.model.executor()
        sizes: Dict[str, int] = {}

        def observer(node: Node, output: np.ndarray) -> None:
            if self._is_injectable(node):
                sizes[node.name] = int(np.asarray(output).size)

        ex.add_observer(observer)
        try:
            ex.run({self.model.input_name: sample_input},
                   outputs=[self.model.output_name])
        finally:
            ex.remove_observer(observer)
        if not sizes:
            raise InjectionError("no injectable nodes found in the graph")
        self._site_sizes = sizes
        return dict(sizes)

    def _is_injectable(self, node: Node) -> bool:
        return (node.injectable
                and node.category in self.include_categories
                and node.name not in self.excluded_nodes)

    @property
    def state_space_size(self) -> int:
        """Total number of injectable values per inference."""
        if self._site_sizes is None:
            raise InjectionError("call profile_state_space() first")
        return int(sum(self._site_sizes.values()))

    # -- site sampling --------------------------------------------------------------

    def sample_plan(self) -> InjectionPlan:
        """Choose the (node, element) sites for one fault event.

        Nodes are chosen with probability proportional to their output size so
        that every value in the injectable state space is equally likely to be
        hit, which is the paper's random-fault assumption.
        """
        return self.sample_plans(1)[0]

    def sample_plans(self, count: int,
                     rng: Optional[np.random.Generator] = None,
                     nodes: Optional[Sequence[str]] = None,
                     bit_range: Optional[Tuple[int, int]] = None,
                     ) -> List[InjectionPlan]:
        """Sample the fault sites for ``count`` trials in one vectorized draw.

        All node choices and element indices for the whole campaign come from
        a single ``rng.choice`` / ``rng.integers`` call each, instead of a
        Python loop per site.

        ``rng``, ``nodes`` and ``bit_range`` support stratum-conditional
        sampling (:mod:`repro.injection.sampling`): ``rng`` overrides the
        injector's shared stream (each stratum keeps its own index-keyed
        stream so allocations can grow without re-randomizing earlier
        draws), ``nodes`` restricts the draw to a subset of injectable
        nodes (still size-proportional *within* the subset, i.e. uniform
        over that stratum's values), and ``bit_range`` stamps every sampled
        site with a ``[low, high)`` bit band.  Defaults reproduce the
        unconditional draw bit-for-bit.
        """
        if self._site_sizes is None:
            raise InjectionError("call profile_state_space() first")
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return []
        gen = rng if rng is not None else self.rng
        if nodes is None:
            names = list(self._site_sizes.keys())
        else:
            names = [n for n in nodes if n in self._site_sizes]
            if not names:
                raise InjectionError(
                    f"none of the requested nodes are injectable: "
                    f"{sorted(nodes)}")
        sizes = np.array([self._site_sizes[n] for n in names], dtype=np.float64)
        probs = sizes / sizes.sum()
        per_event = self.fault_model.sites_per_event
        total = count * per_event
        node_idx = gen.choice(len(names), size=total, p=probs)
        elements = gen.integers(sizes[node_idx].astype(np.int64))
        sites = [(names[int(n)], int(e)) for n, e in zip(node_idx, elements)]
        bands = (None if bit_range is None
                 else [(int(bit_range[0]), int(bit_range[1]))] * per_event)
        return [InjectionPlan(sites=sites[i * per_event:(i + 1) * per_event],
                              bit_ranges=list(bands) if bands else None)
                for i in range(count)]

    # -- injection -------------------------------------------------------------------

    @staticmethod
    def _group_sites(plan: InjectionPlan
                     ) -> Dict[str, List[Tuple[int, Optional[Tuple[int, int]]]]]:
        """Group a plan's sites by node as ``(element, bit_band)`` items.

        The band is ``None`` for unrestricted sites; the corruption inner
        loops dispatch on it so banded and plain sites share one code path.
        """
        pending: Dict[str, List[Tuple[int, Optional[Tuple[int, int]]]]] = {}
        for node_name, element, band in plan.site_items():
            pending.setdefault(node_name, []).append((element, band))
        return pending

    def _corrupt_value(self, original: float, band: Optional[Tuple[int, int]],
                       rng: np.random.Generator
                       ) -> Tuple[float, Optional[int]]:
        """One fault-model draw, band-restricted when the site carries one."""
        if band is None:
            return self.fault_model.corrupt(original, rng)
        return self.fault_model.corrupt_in_band(original, rng,
                                                band[0], band[1])

    def _corrupt_flat(self, node_name: str, flat: np.ndarray,
                      elements: Sequence[Tuple[int, Optional[Tuple[int, int]]]],
                      applied: List[FaultSpec],
                      rng: np.random.Generator) -> None:
        """Corrupt ``elements`` of one flattened activation *in place*.

        The single corruption inner loop shared by every injection entry
        point (full runs, cached replays and batched stacks), so the
        semantics — element wrapping, RNG consumption order, fault-record
        contents — cannot drift between them.  ``elements`` holds the
        ``(element, bit_band)`` items produced by :meth:`_group_sites`.
        """
        for element, band in elements:
            index = element % flat.size
            original = float(flat[index])
            new_value, bit = self._corrupt_value(original, band, rng)
            flat[index] = new_value
            applied.append(FaultSpec(node_name=node_name,
                                     element_index=index, bit=bit,
                                     original=original,
                                     corrupted=new_value))

    def _corrupt_sparse(self, node_name: str, cached_flat: np.ndarray,
                        elements: Sequence[Tuple[int,
                                                 Optional[Tuple[int, int]]]],
                        applied: List[FaultSpec],
                        rng: np.random.Generator,
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """Corrupt ``elements`` of one golden activation as a sparse delta.

        Returns ``(indices, values)`` — the changed flat positions (sorted,
        unique) and their corrupted values — without ever copying the dense
        activation.  Semantics are element-for-element identical to
        :meth:`_corrupt_flat` on a dense copy: the same wrapping, the same
        RNG consumption order, and sequential flips landing on the same
        index compound (each sees the previous flip's value as its
        ``original``), tracked here through a running-value map instead of
        the mutated array.
        """
        current: Dict[int, float] = {}
        for element, band in elements:
            index = int(element % cached_flat.size)
            if index in current:
                original = current[index]
            else:
                original = float(cached_flat[index])
            new_value, bit = self._corrupt_value(original, band, rng)
            current[index] = new_value
            applied.append(FaultSpec(node_name=node_name,
                                     element_index=index, bit=bit,
                                     original=original,
                                     corrupted=new_value))
        indices = np.array(sorted(current), dtype=np.int64)
        values = np.array([current[int(i)] for i in indices],
                          dtype=np.float64)
        return indices, values

    def _corrupt_array(self, node_name: str, output: np.ndarray,
                       elements: Sequence[int],
                       applied: List[FaultSpec],
                       rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Apply the fault model to ``elements`` of one node's output.

        Appends one :class:`FaultSpec` per landed corruption to ``applied``
        and returns the corrupted copy.  ``rng`` overrides the injector's
        shared stream; campaigns pass a per-trial generator so a trial's
        corruption bits depend only on the campaign seed and the trial
        index, never on which process (or in which order) the trial runs.
        """
        rng = rng if rng is not None else self.rng
        corrupted = np.array(output, dtype=np.float64, copy=True)
        self._corrupt_flat(node_name, corrupted.reshape(-1), elements,
                           applied, rng)
        return corrupted

    def _corruption_hook(self, plan: InjectionPlan,
                         rng: Optional[np.random.Generator] = None,
                         ) -> Tuple[Callable, List[FaultSpec]]:
        """Build the executor output hook that applies ``plan``.

        Returns the hook together with the (initially empty) list it appends
        a :class:`FaultSpec` to for every corruption it lands.
        """
        pending = self._group_sites(plan)
        applied: List[FaultSpec] = []

        def hook(node: Node, output: np.ndarray) -> np.ndarray:
            if node.name not in pending:
                return output
            return self._corrupt_array(node.name, output, pending[node.name],
                                       applied, rng=rng)

        return hook, applied

    def inject(self, executor: Executor, inputs: np.ndarray,
               plan: Optional[InjectionPlan] = None,
               rng: Optional[np.random.Generator] = None,
               ) -> Tuple[np.ndarray, List[FaultSpec]]:
        """Run one faulty inference and return (output, applied faults).

        The executor should belong to the same (or an equivalently-named)
        graph; Ranger-protected graphs keep original node names, so a plan
        sampled on the unprotected model can be replayed on the protected one
        — that is exactly how the with/without-Ranger comparison keeps the
        fault sequence identical.
        """
        result, applied = self.inject_full(executor, inputs, plan, rng=rng)
        return result.output(self.model.output_name), applied

    def inject_full(self, executor: Executor, inputs: np.ndarray,
                    plan: Optional[InjectionPlan] = None,
                    rng: Optional[np.random.Generator] = None):
        """Like :meth:`inject` but also returns every node's (faulty) output.

        Detection-style baselines (symptom detectors, ABFT checksums) need to
        inspect intermediate values of the faulty execution; this variant
        returns ``(ExecutionResult, applied_faults)`` so they can.
        """
        plan = plan or self.sample_plan()
        hook, applied = self._corruption_hook(plan, rng=rng)
        executor.add_output_hook(hook)
        try:
            result = executor.run({self.model.input_name: inputs},
                                  outputs=[self.model.output_name])
        finally:
            executor.remove_output_hook(hook)
        return result, applied

    def sites_overlap(self, names: Iterable[str],
                      graph: Optional[Graph] = None) -> bool:
        """True when one of ``names`` lies in another's downstream cone.

        The overlap verdict depends only on the node *set* (never on the
        element indices), so callers that screen many plans memoize this
        per ``frozenset`` of names — see
        :meth:`FaultInjectionCampaign.pack_batches`.
        """
        graph = graph if graph is not None else self.model.graph
        names = sorted(set(names))
        return len(names) > 1 and any(
            other in graph.downstream(name)
            for name in names for other in names if other != name)

    def plan_sites_overlap(self, plan: InjectionPlan,
                           graph: Optional[Graph] = None) -> bool:
        """True when one of the plan's sites lies in another site's cone.

        Such plans must be replayed hook-based (the downstream site's
        corruption lands on the *faulty* value flowing through it), so they
        are ineligible for the stacked-golden-corruption fast paths
        (:meth:`inject_cached`'s dirty-value branch and
        :meth:`inject_cached_batch`).
        """
        return self.sites_overlap(plan.node_names(), graph)

    def inject_cached(self, executor: Executor,
                      cached_values: Mapping[str, np.ndarray],
                      plan: Optional[InjectionPlan] = None,
                      rng: Optional[np.random.Generator] = None,
                      sparse_delta: bool = False,
                      ) -> Tuple[np.ndarray, List[FaultSpec], ExecutionResult]:
        """Replay one faulty inference by partial re-execution.

        ``cached_values`` is the activation cache of a fault-free run of the
        same input on the same executor (``result.values``).  Only the
        downstream cone of the fault sites is re-evaluated — the upstream
        prefix is bit-identical to the golden run by construction, so the
        returned output is bit-identical to what :meth:`inject` would
        produce for the same plan and RNG state, at a fraction of the cost.

        With ``sparse_delta=True`` (and a non-overlapping plan) the
        corrupted bit positions seed the replay as a sparse frontier —
        ``(flat index, new value)`` pairs instead of whole corrupted
        activation copies — which elementwise-exact operators propagate
        per element (see :meth:`Executor.run_from`'s ``dirty_deltas``).
        Fault records and outputs are bit-identical either way; the knob
        only changes how much arithmetic the replay performs.

        Returns ``(output, applied_faults, execution_result)``; the result's
        ``recomputed`` field says how much of the graph was re-evaluated.
        """
        plan = plan or self.sample_plan()
        pending = self._group_sites(plan)
        topo_index = executor.graph.topo_index()
        missing = [name for name in pending if name not in topo_index]
        if missing:
            raise InjectionError(
                f"plan sites not present in executor graph: {missing}")
        names = sorted(pending, key=topo_index.__getitem__)

        # When one fault site lies in another site's downstream cone, the
        # later site must be corrupted on top of the *faulty* value it
        # produces during the replay (exactly as in a full run), not on top
        # of its golden cached value.  Replay such plans hook-based: every
        # site is a re-evaluation seed and the corruption hook fires in
        # topological order, just like the full path.
        if self.plan_sites_overlap(plan, executor.graph):
            hook, applied = self._corruption_hook(plan, rng=rng)
            executor.add_output_hook(hook)
            try:
                result = executor.run_from(cached_values, dirty=names,
                                           outputs=[self.model.output_name])
            finally:
                executor.remove_output_hook(hook)
            return result.output(self.model.output_name), applied, result

        # Independent sites: corrupt the *cached* outputs directly — they are
        # the post-dtype-policy values the corruption hook would receive
        # during a full run, so the fault nodes' forward passes need not be
        # paid for again.  Corruption happens in topological order so the
        # fault model's RNG is consumed exactly as in a full faulty run.
        applied: List[FaultSpec] = []
        if sparse_delta:
            gen = rng if rng is not None else self.rng
            dirty_deltas: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
            for name in names:
                try:
                    cached = cached_values[name]
                except KeyError:
                    raise InjectionError(
                        f"no cached activation for fault site '{name}'; "
                        f"pass the values of a fault-free run of the same "
                        f"input") from None
                flat = np.ascontiguousarray(
                    np.asarray(cached, dtype=np.float64)).reshape(-1)
                dirty_deltas[name] = self._corrupt_sparse(
                    name, flat, pending[name], applied, gen)
            result = executor.run_from(cached_values,
                                       dirty_deltas=dirty_deltas,
                                       outputs=[self.model.output_name])
            return result.output(self.model.output_name), applied, result
        dirty_values: Dict[str, np.ndarray] = {}
        for name in names:
            try:
                cached = cached_values[name]
            except KeyError:
                raise InjectionError(
                    f"no cached activation for fault site '{name}'; pass the "
                    f"values of a fault-free run of the same input") from None
            dirty_values[name] = self._corrupt_array(name, cached,
                                                     pending[name], applied,
                                                     rng=rng)
        result = executor.run_from(cached_values, dirty_values=dirty_values,
                                   outputs=[self.model.output_name])
        return result.output(self.model.output_name), applied, result

    def inject_cached_batch(self, executor: Executor,
                            cached_values: Mapping[str, np.ndarray],
                            plans: Sequence[InjectionPlan],
                            rngs: Sequence[np.random.Generator],
                            equivalence=None,
                            max_ulps: float = DEFAULT_MAX_ULPS,
                            validate_overlap: bool = True,
                            sparse_delta: bool = False,
                            ) -> Tuple[np.ndarray, List[List[FaultSpec]],
                                       BatchedExecutionResult]:
        """Replay B faulty trials sharing one input in a single batched pass.

        ``plans[i]`` is corrupted with ``rngs[i]`` — each trial keeps its own
        generator, so trial identity (which bits flip where) is exactly what
        :meth:`inject_cached` would produce for the same ``(plan, rng)``
        pair, and campaign-level determinism (``workers=N`` sharding,
        paired comparisons) is unaffected by batching.  Corruption is
        applied to the *golden cached* activations (every site is corrupted
        on top of its batch-1 golden value, per trial, in topological site
        order), and propagated through the replay by
        :meth:`Executor.run_from_batched`.

        Plans need **not** share a fault-node set: each trial's corrupted
        activations enter the replay at that trial's own sites (per-node
        row-membership masks), and the executor walks the union cone of
        every site in the batch with per-row dirty tracking — a row is only
        ever evaluated inside its own sites' cone, so heterogeneous
        batches cost no extra row evaluations, only the union's walk.
        Disjoint and nested cones are both fine; what stays rejected is
        overlap *within* one plan (one of a trial's sites inside another of
        the same trial's cones), because that trial's later corruption must
        land on the faulty value flowing through it — the campaign
        scheduler screens such plans out, falls back to
        :meth:`inject_cached`, and passes ``validate_overlap=False`` so
        already-screened plans skip the duplicate check.

        The applied-fault records are bit-identical to the incremental
        path's; only the downstream propagation may differ from batch-1
        replay in the last ULPs (see the executor's equivalence contract),
        which is why the returned outputs carry the ``ULP_TOLERANT``
        guarantee rather than bit-exactness.

        With ``sparse_delta=True`` the per-trial corruptions seed the
        replay as a :class:`~repro.graph.SparseRows` frontier per site node
        — no golden activation is ever bulk-replicated into per-trial
        stacks, and elementwise-exact stretches of the cone propagate each
        row's few changed elements instead of whole rows.  Trial identity
        (fault records, RNG consumption order) is unchanged.

        Returns ``(stacked_outputs, per_trial_faults, batched_result)``
        where ``stacked_outputs[i]`` is trial ``i``'s faulty output row.
        """
        if len(plans) != len(rngs):
            raise InjectionError(
                f"got {len(plans)} plans but {len(rngs)} rngs; each trial "
                f"needs its own generator")
        if not plans:
            raise InjectionError("inject_cached_batch() requires >= 1 plan")
        topo_index = executor.graph.topo_index()
        union_nodes = {name for plan in plans for name in plan.node_names()}
        missing = [name for name in union_nodes if name not in topo_index]
        if missing:
            raise InjectionError(
                f"plan sites not present in executor graph: {sorted(missing)}")
        if validate_overlap:
            for plan in plans:
                if self.plan_sites_overlap(plan, executor.graph):
                    raise InjectionError(
                        f"plan with overlapping sites {plan.sites} cannot "
                        f"be replayed batched; use inject_cached() for it")

        batch = len(plans)
        for name in union_nodes:
            if name not in cached_values:
                raise InjectionError(
                    f"no cached activation for fault site '{name}'; pass the "
                    f"values of a fault-free run of the same input")

        # Packed per-site corruption stacks: a node's stack holds one
        # corrupted row per trial whose plan includes it (ascending trial
        # order), and the membership mask makes exactly those rows the
        # node's replay entries.  Trials without the site are implicitly
        # golden there, so nothing is ever filled with golden copies just
        # to ride along.  Stacks are bulk-replicated from the golden cache
        # once and corrupted *in place*, so each member row is written
        # once instead of copy-then-restack.
        pendings = [self._group_sites(plan) for plan in plans]
        member_rows: Dict[str, List[int]] = {}
        for row, pending in enumerate(pendings):
            for name in pending:
                member_rows.setdefault(name, []).append(row)

        if sparse_delta:
            # Sparse frontier: corrupt golden *positions* per trial (same
            # wrapping, RNG order and compounding as the dense stacks, via
            # _corrupt_sparse's running-value map) and hand the executor
            # one SparseRows triplet per site node.  The outer loop runs in
            # ascending row order and _corrupt_sparse returns sorted
            # indices, so each accumulated triplet is (row, index)-sorted
            # by construction.
            flats = {name: np.ascontiguousarray(
                         np.asarray(cached_values[name],
                                    dtype=np.float64)).reshape(-1)
                     for name in member_rows}
            acc: Dict[str, Tuple[List[np.ndarray], List[np.ndarray],
                                 List[np.ndarray]]] = {}
            per_trial_faults: List[List[FaultSpec]] = []
            for row, (pending, rng) in enumerate(zip(pendings, rngs)):
                applied: List[FaultSpec] = []
                for name in sorted(pending, key=topo_index.__getitem__):
                    idx, vals = self._corrupt_sparse(
                        name, flats[name], pending[name], applied, rng)
                    rr, ii, vv = acc.setdefault(name, ([], [], []))
                    rr.append(np.full(idx.size, row, dtype=np.int64))
                    ii.append(idx)
                    vv.append(vals)
                per_trial_faults.append(applied)
            deltas = {name: SparseRows(batch, np.concatenate(rr),
                                       np.concatenate(ii),
                                       np.concatenate(vv))
                      for name, (rr, ii, vv) in acc.items()}
            result = executor.run_from_batched(
                cached_values, dirty_row_deltas=deltas,
                outputs=[self.model.output_name], equivalence=equivalence,
                max_ulps=max_ulps)
            return (result.output(self.model.output_name), per_trial_faults,
                    result)

        stacked: Dict[str, np.ndarray] = {}
        slot_of: Dict[str, Dict[int, int]] = {}
        for name, rows in member_rows.items():
            cached = np.asarray(cached_values[name], dtype=np.float64)
            stacked[name] = np.repeat(cached, len(rows), axis=0)
            slot_of[name] = {row: slot for slot, row in enumerate(rows)}

        per_trial_faults = []
        for row, (pending, rng) in enumerate(zip(pendings, rngs)):
            applied: List[FaultSpec] = []
            # Topological site order, exactly like the batch-1 replay, so
            # each trial consumes its generator identically either way.
            for name in sorted(pending, key=topo_index.__getitem__):
                flat = stacked[name][slot_of[name][row]].reshape(-1)
                self._corrupt_flat(name, flat, pending[name], applied, rng)
            per_trial_faults.append(applied)

        masks: Dict[str, np.ndarray] = {}
        for name, rows in member_rows.items():
            mask = np.zeros(batch, dtype=bool)
            mask[rows] = True
            masks[name] = mask

        result = executor.run_from_batched(
            cached_values, stacked_dirty_values=stacked,
            dirty_row_masks=masks,
            outputs=[self.model.output_name], equivalence=equivalence,
            max_ulps=max_ulps)
        return (result.output(self.model.output_name), per_trial_faults,
                result)
