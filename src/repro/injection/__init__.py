"""Fault injection: fault models, the injector, SDC criteria, and campaigns."""

from ..graph.equivalence import DEFAULT_MAX_ULPS, EquivalenceMode
from .campaign import (
    DEFAULT_CACHE_BUDGET_BYTES,
    DEFAULT_INTERVAL_METHOD,
    CampaignResult,
    CampaignSpec,
    FaultInjectionCampaign,
    compare_protection,
    shard_plans,
    trial_rng,
)
from .fault_models import (
    ConsecutiveBitFlip,
    FaultModel,
    FaultSpec,
    MultiBitFlip,
    RandomValueFault,
    SingleBitFlip,
    StuckAtZeroFault,
)
from .injector import (
    FaultInjector,
    InjectionError,
    InjectionPlan,
    downstream_nodes,
    last_layer_exclusions,
)
from .pool import CampaignPool
from .sampling import (
    Stratification,
    StratumSpace,
    largest_remainder,
    neyman_allocation,
    stratum_rng,
    uniform_allocation,
)
from .sdc import (
    STEERING_THRESHOLDS,
    SDCCriterion,
    SteeringDeviation,
    TopKMisclassification,
    criteria_for_model,
)

__all__ = [
    "CampaignPool",
    "CampaignResult",
    "CampaignSpec",
    "ConsecutiveBitFlip",
    "DEFAULT_CACHE_BUDGET_BYTES",
    "DEFAULT_INTERVAL_METHOD",
    "DEFAULT_MAX_ULPS",
    "EquivalenceMode",
    "FaultInjectionCampaign",
    "FaultInjector",
    "FaultModel",
    "FaultSpec",
    "InjectionError",
    "InjectionPlan",
    "MultiBitFlip",
    "RandomValueFault",
    "STEERING_THRESHOLDS",
    "SDCCriterion",
    "SingleBitFlip",
    "SteeringDeviation",
    "Stratification",
    "StratumSpace",
    "StuckAtZeroFault",
    "TopKMisclassification",
    "compare_protection",
    "criteria_for_model",
    "downstream_nodes",
    "largest_remainder",
    "last_layer_exclusions",
    "neyman_allocation",
    "shard_plans",
    "stratum_rng",
    "trial_rng",
    "uniform_allocation",
]
