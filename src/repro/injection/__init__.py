"""Fault injection: fault models, the injector, SDC criteria, and campaigns."""

from ..graph.equivalence import DEFAULT_MAX_ULPS, EquivalenceMode
from .campaign import (
    DEFAULT_CACHE_BUDGET_BYTES,
    CampaignResult,
    CampaignSpec,
    FaultInjectionCampaign,
    compare_protection,
    shard_plans,
    trial_rng,
)
from .fault_models import (
    ConsecutiveBitFlip,
    FaultModel,
    FaultSpec,
    MultiBitFlip,
    RandomValueFault,
    SingleBitFlip,
    StuckAtZeroFault,
)
from .injector import (
    FaultInjector,
    InjectionError,
    InjectionPlan,
    downstream_nodes,
    last_layer_exclusions,
)
from .pool import CampaignPool
from .sdc import (
    STEERING_THRESHOLDS,
    SDCCriterion,
    SteeringDeviation,
    TopKMisclassification,
    criteria_for_model,
)

__all__ = [
    "CampaignPool",
    "CampaignResult",
    "CampaignSpec",
    "ConsecutiveBitFlip",
    "DEFAULT_CACHE_BUDGET_BYTES",
    "DEFAULT_MAX_ULPS",
    "EquivalenceMode",
    "FaultInjectionCampaign",
    "FaultInjector",
    "FaultModel",
    "FaultSpec",
    "InjectionError",
    "InjectionPlan",
    "MultiBitFlip",
    "RandomValueFault",
    "STEERING_THRESHOLDS",
    "SDCCriterion",
    "SingleBitFlip",
    "SteeringDeviation",
    "StuckAtZeroFault",
    "TopKMisclassification",
    "compare_protection",
    "criteria_for_model",
    "downstream_nodes",
    "last_layer_exclusions",
    "shard_plans",
    "trial_rng",
]
