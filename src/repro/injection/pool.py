"""Persistent campaign worker pool for back-to-back experiment sweeps.

Experiment grids (the fig6 / fig9 / fig11-style sweeps) run many campaigns
back-to-back, and the per-campaign multiprocess backend of
:meth:`~repro.injection.campaign.FaultInjectionCampaign.run` pays two fixed
costs every time: spawning a fresh process pool and, in each worker, a full
campaign rebuild (model unpickle, state-space profiling, golden-output
pass, lazy golden activation caches).  :class:`CampaignPool` keeps one
process pool alive for the whole sweep and caches rebuilt campaigns
*inside* the workers, keyed by a content fingerprint of the campaign spec —
so every campaign after the first that shares a (model, inputs, fault
model, criteria, dtype policy, seed) skips both costs, and even distinct
campaigns skip the pool spawn.

The spec still travels with every task (a task cannot target a specific
worker), but unpickling a spec is orders of magnitude cheaper than the
rebuild it replaces; on a cache hit the worker drops it immediately.

**Determinism.**  A pooled run ships the same pre-sampled plan payloads and
per-trial RNG anchors as the fresh multiprocess path, and the worker-side
campaign is a pure function of its spec (reuse only skips recomputing that
pure function), so pooled results are **bit-identical** to fresh
per-campaign runs for every pool size and reuse pattern — enforced by
``tests/test_union_cone_batching.py``.

Adaptive campaigns (``run(target_half_width=...)``) lean on the pool the
same way a sweep does: every wave is one more dispatch of the same spec,
so across the many small waves of a sequentially-stopped campaign the
workers' cached campaigns are rebuilt once and reused for the rest —
wave granularity adds no per-wave rebuild cost.  The wave chunks carry
global trial offsets, so pooled adaptive results stay bit-identical to
the serial adaptive path (``tests/test_adaptive_campaign.py``).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.equivalence import DEFAULT_MAX_ULPS, EquivalenceMode
from ..parallel.shm import campaign_mp_context, shared_plane
from .campaign import (CampaignResult, CampaignSpec, FaultInjectionCampaign,
                       encode_campaign_spec, shard_plans)
from .injector import InjectionPlan

#: Rebuilt campaigns kept alive per worker process, most recently used
#: last.  Sweeps interleave at most a handful of distinct campaign configs
#: (model × datatype × protection), so a small cache captures the reuse
#: while bounding worker memory (each entry holds a model plus its golden
#: caches).
WORKER_CAMPAIGN_CACHE_LIMIT = 4

#: Per-worker campaign cache (lives in the *worker* processes; the parent's
#: copy stays empty).
_WORKER_CAMPAIGNS: "OrderedDict[str, FaultInjectionCampaign]" = OrderedDict()

#: Plane-encoded spec payloads the pool keeps pinned between campaigns,
#: most recently used last (see :attr:`CampaignPool._leases`).  Matches
#: :data:`WORKER_CAMPAIGN_CACHE_LIMIT`: the parent keeps a segment alive
#: exactly as long as the workers plausibly still have the campaign it
#: backs cached.
ENCODED_SPEC_LEASE_LIMIT = 4


def spec_fingerprint(spec: CampaignSpec) -> str:
    """Content fingerprint of a campaign spec (golden caches excluded).

    SHA-1 over the pickled configuration leaves — (model, inputs, fault
    model, criteria, dtype policy, seed) — so two campaign *objects* built
    from the same configuration share one fingerprint.  Pool workers key
    their campaign cache on it, and the campaign service's artifact store
    (:mod:`repro.service.store`) keys golden caches and finished results
    on it.  A spurious mismatch merely costs a rebuild / cache miss; a
    false match would need a SHA-1 collision on the pickled configuration.
    """
    payload = pickle.dumps((spec.model, spec.inputs, spec.fault_model,
                            spec.criteria, spec.dtype_policy, spec.seed),
                           protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.sha1(payload).hexdigest()


def _cache_campaign(fingerprint: str,
                    campaign: FaultInjectionCampaign) -> None:
    _WORKER_CAMPAIGNS[fingerprint] = campaign
    while len(_WORKER_CAMPAIGNS) > WORKER_CAMPAIGN_CACHE_LIMIT:
        _WORKER_CAMPAIGNS.popitem(last=False)


def _run_shard_on(campaign: FaultInjectionCampaign,
                  payload: Sequence[Tuple[int, Sequence[Tuple[str, int]]]],
                  trial_offset: int, keep_faults: bool, incremental: bool,
                  batch_trials: int, equivalence: Optional[str],
                  max_ulps: float, sparse_delta: bool) -> CampaignResult:
    plans = [(input_index, InjectionPlan.from_payload(sites))
             for input_index, sites in payload]
    return campaign.run(plans=plans, keep_faults=keep_faults,
                        incremental=incremental, trial_offset=trial_offset,
                        batch_trials=batch_trials, equivalence=equivalence,
                        max_ulps=max_ulps, sparse_delta=sparse_delta)


def _run_pooled_shard(fingerprint: str, spec: CampaignSpec,
                      payload: Sequence[Tuple[int, Sequence[Tuple[str, int]]]],
                      trial_offset: int, keep_faults: bool,
                      incremental: bool, batch_trials: int,
                      equivalence: Optional[str],
                      max_ulps: float,
                      sparse_delta: bool = True,
                      ) -> Tuple[CampaignResult, Dict[str, int]]:
    """Pooled worker entry: reuse (or rebuild and cache) the campaign, then
    run one shard of trials exactly like ``_run_campaign_shard``.

    Returns ``(result, stats)`` where ``stats`` carries the worker-cache
    hit/miss counters :meth:`CampaignPool.stats` aggregates.
    """
    stats = {"hits": 0, "misses": 0, "remaps": 0}
    campaign = _WORKER_CAMPAIGNS.get(fingerprint)
    if campaign is None:
        stats["misses"] = 1
        campaign = spec.build()
        _cache_campaign(fingerprint, campaign)
    else:
        stats["hits"] = 1
        _WORKER_CAMPAIGNS.move_to_end(fingerprint)
    result = _run_shard_on(campaign, payload, trial_offset, keep_faults,
                           incremental, batch_trials, equivalence, max_ulps,
                           sparse_delta)
    return result, stats


def _run_pooled_shard_shm(fingerprint: str, spec_payload,
                          payload: Sequence[Tuple[int, Sequence]],
                          trial_offset: int, keep_faults: bool,
                          incremental: bool, batch_trials: int,
                          equivalence: Optional[str],
                          max_ulps: float,
                          sparse_delta: bool = True,
                          ) -> Tuple[CampaignResult, Dict[str, int]]:
    """Pooled worker entry for plane-encoded specs.

    On a campaign-cache hit the payload is dropped without even mapping
    its segments (the warm-pool fast path: no unpickle, no attach).  On
    a miss the worker maps the referenced segments — ``remaps`` counts
    segments this process had already attached for an earlier campaign,
    the re-map-instead-of-re-unpickle reuse the plane exists for — and
    rebuilds the campaign around read-only zero-copy views.
    """
    stats = {"hits": 0, "misses": 0, "remaps": 0}
    campaign = _WORKER_CAMPAIGNS.get(fingerprint)
    if campaign is None:
        from ..parallel import shm as shm_mod

        spec, decode_stats = shm_mod.decode(spec_payload)
        stats["misses"] = 1
        stats["remaps"] = decode_stats["segments_remapped"]
        campaign = spec.build()
        _cache_campaign(fingerprint, campaign)
    else:
        stats["hits"] = 1
        _WORKER_CAMPAIGNS.move_to_end(fingerprint)
    result = _run_shard_on(campaign, payload, trial_offset, keep_faults,
                           incremental, batch_trials, equivalence, max_ulps,
                           sparse_delta)
    return result, stats


class CampaignPool:
    """A persistent worker pool shared by many fault-injection campaigns.

    Parameters
    ----------
    workers:
        Number of worker processes kept alive for the pool's lifetime.

    Usage::

        with CampaignPool(workers=4) as pool:
            for config in sweep:                  # fig6/fig9/fig11 grids
                campaign = build_campaign(config)
                result = campaign.run(trials=3000, pool=pool)

    The pool composes with everything ``run`` supports in its multiprocess
    backend (``batch_trials``, ``keep_faults``, paired comparisons via
    ``compare_protection(pool=...)``); only ``workers`` is superseded by
    the pool's size.
    """

    def __init__(self, workers: int,
                 context: Optional[multiprocessing.context.BaseContext] = None,
                 use_shm: Optional[bool] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers
        if context is None:
            # fork (where available) keeps worker start-up cheap, matching
            # the fresh multiprocess backend's choice; REPRO_START_METHOD
            # forces a specific start method for the CI smoke matrix.
            context = campaign_mp_context()
        self._executor: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=workers, mp_context=context)
        #: ``None`` → use the shared-memory cache plane whenever it is
        #: available; ``False`` → always ship full pickled specs (the
        #: benchmark's before-phase); ``True`` → require the plane (still
        #: falls back per-call if publication fails).
        self.use_shm = use_shm
        #: Plane-encoded spec payloads kept pinned between campaigns,
        #: keyed by (fingerprint, shipped golden indices).  Holding the
        #: lease keeps the segments linked, so a warm pool re-dispatches
        #: the same few-KiB skeleton instead of re-publishing — and a
        #: worker that missed its campaign cache can still attach.
        self._leases: "OrderedDict[Tuple[str, Tuple[int, ...]], object]" = \
            OrderedDict()
        self._stats = {"tasks": 0, "hits": 0, "misses": 0, "remaps": 0,
                       "shm_tasks": 0, "payload_bytes": 0}

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._executor is None

    def close(self) -> None:
        """Shut the worker processes down and drop every plane lease
        (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        self._release_leases()

    def _release_leases(self) -> None:
        while self._leases:
            _, encoded = self._leases.popitem(last=False)
            encoded.release()

    def __enter__(self) -> "CampaignPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution ---------------------------------------------------------

    #: Workers key their campaign cache on :func:`spec_fingerprint`, so two
    #: campaign *objects* built from the same configuration share one
    #: worker-side rebuild.
    fingerprint = staticmethod(spec_fingerprint)

    def run_plans(self, campaign: FaultInjectionCampaign,
                  plans: List[Tuple[int, InjectionPlan]], *,
                  keep_faults: bool = False,
                  incremental: bool = True,
                  trial_offset: int = 0,
                  batch_trials: int = 1,
                  equivalence=None,
                  max_ulps: float = DEFAULT_MAX_ULPS,
                  sparse_delta: bool = True) -> CampaignResult:
        """Fan pre-sampled plans out across the persistent workers.

        The entry point :meth:`FaultInjectionCampaign.run` delegates to
        when called with ``pool=...``; mirrors the fresh multiprocess
        backend shard-for-shard (same contiguous chunks, same trial-offset
        RNG anchoring, same order-insensitive merge).
        """
        if self._executor is None:
            raise RuntimeError("CampaignPool is closed")
        spec = campaign.spec()
        fingerprint = campaign.spec_fingerprint()
        shards = shard_plans(plans, self.workers)
        payloads = [(offset, [(index, plan.to_payload())
                              for index, plan in chunk])
                    for offset, chunk in shards]
        mode_value = (EquivalenceMode.coerce(
            equivalence, EquivalenceMode.EXACT if batch_trials == 1
            else EquivalenceMode.ULP_TOLERANT).value
            if equivalence is not None else None)
        encoded = None
        if self.use_shm is not False:
            encoded = self._encoded_spec(campaign, spec, fingerprint, plans)
        if encoded is not None:
            submit = [(_run_pooled_shard_shm, encoded.payload)]
            per_task_bytes = encoded.payload_bytes
            self._stats["shm_tasks"] += len(payloads)
        else:
            submit = [(_run_pooled_shard, spec)]
            per_task_bytes = len(pickle.dumps(
                spec, protocol=pickle.HIGHEST_PROTOCOL))
        entry, travelling_spec = submit[0]
        futures = [self._executor.submit(
            entry, fingerprint, travelling_spec, chunk,
            trial_offset + offset, keep_faults, incremental, batch_trials,
            mode_value, max_ulps, sparse_delta)
            for offset, chunk in payloads]
        outcomes = [future.result() for future in futures]
        self._stats["tasks"] += len(outcomes)
        self._stats["payload_bytes"] += per_task_bytes * len(outcomes)
        for _, worker_stats in outcomes:
            for key in ("hits", "misses", "remaps"):
                self._stats[key] += worker_stats[key]
        return CampaignResult.merge([result for result, _ in outcomes])

    def _encoded_spec(self, campaign: FaultInjectionCampaign,
                      spec: CampaignSpec, fingerprint: str,
                      plans: Sequence[Tuple[int, InjectionPlan]]):
        """The pinned plane encoding of ``spec``, built at most once per
        (fingerprint, shipped golden subset) while the lease is warm.

        Unlike the fresh multiprocess backend the pool never *builds*
        golden caches just to ship them (workers keep their own across
        campaigns); it ships whichever caches the parent campaign has
        already built for the planned inputs — through the plane they
        cost one ``/dev/shm`` copy total, not per worker.  Returns
        ``None`` when the plane is unavailable or declined (legacy
        pickled-spec dispatch).
        """
        plane = shared_plane()
        if plane is None:
            return None
        needed = {input_index for input_index, _ in plans}
        subset = {index: cache
                  for index, cache in sorted(campaign._golden_caches.items())
                  if index in needed}
        lease_key = (fingerprint, tuple(subset))
        encoded = self._leases.get(lease_key)
        if encoded is not None:
            self._leases.move_to_end(lease_key)
            return encoded
        if subset:
            spec.golden_caches = subset
        encoded = encode_campaign_spec(plane, spec, fingerprint)
        spec.golden_caches = None
        if encoded is None:
            return None
        self._leases[lease_key] = encoded
        while len(self._leases) > ENCODED_SPEC_LEASE_LIMIT:
            _, stale = self._leases.popitem(last=False)
            stale.release()
        return encoded

    def stats(self) -> Dict[str, int]:
        """Aggregated worker-cache and dispatch-payload counters.

        ``hits`` / ``misses`` count worker-side campaign-cache outcomes
        (one per task), ``remaps`` counts shared segments a worker
        re-mapped instead of re-unpickling, ``shm_tasks`` the tasks that
        travelled plane-encoded, and ``payload_bytes`` the total spec
        bytes actually pickled into the task queue.
        """
        return dict(self._stats)

    def run(self, campaign: FaultInjectionCampaign, trials: int = 100,
            plans: Optional[List[Tuple[int, InjectionPlan]]] = None,
            **kwargs) -> CampaignResult:
        """Convenience wrapper: sample plans (if needed) and fan them out."""
        if plans is None:
            plans = campaign.generate_plans(trials)
        return self.run_plans(campaign, plans, **kwargs)
