"""Persistent campaign worker pool for back-to-back experiment sweeps.

Experiment grids (the fig6 / fig9 / fig11-style sweeps) run many campaigns
back-to-back, and the per-campaign multiprocess backend of
:meth:`~repro.injection.campaign.FaultInjectionCampaign.run` pays two fixed
costs every time: spawning a fresh process pool and, in each worker, a full
campaign rebuild (model unpickle, state-space profiling, golden-output
pass, lazy golden activation caches).  :class:`CampaignPool` keeps one
process pool alive for the whole sweep and caches rebuilt campaigns
*inside* the workers, keyed by a content fingerprint of the campaign spec —
so every campaign after the first that shares a (model, inputs, fault
model, criteria, dtype policy, seed) skips both costs, and even distinct
campaigns skip the pool spawn.

The spec still travels with every task (a task cannot target a specific
worker), but unpickling a spec is orders of magnitude cheaper than the
rebuild it replaces; on a cache hit the worker drops it immediately.

**Determinism.**  A pooled run ships the same pre-sampled plan payloads and
per-trial RNG anchors as the fresh multiprocess path, and the worker-side
campaign is a pure function of its spec (reuse only skips recomputing that
pure function), so pooled results are **bit-identical** to fresh
per-campaign runs for every pool size and reuse pattern — enforced by
``tests/test_union_cone_batching.py``.

Adaptive campaigns (``run(target_half_width=...)``) lean on the pool the
same way a sweep does: every wave is one more dispatch of the same spec,
so across the many small waves of a sequentially-stopped campaign the
workers' cached campaigns are rebuilt once and reused for the rest —
wave granularity adds no per-wave rebuild cost.  The wave chunks carry
global trial offsets, so pooled adaptive results stay bit-identical to
the serial adaptive path (``tests/test_adaptive_campaign.py``).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from ..graph.equivalence import DEFAULT_MAX_ULPS, EquivalenceMode
from .campaign import (CampaignResult, CampaignSpec, FaultInjectionCampaign,
                       shard_plans)
from .injector import InjectionPlan

#: Rebuilt campaigns kept alive per worker process, most recently used
#: last.  Sweeps interleave at most a handful of distinct campaign configs
#: (model × datatype × protection), so a small cache captures the reuse
#: while bounding worker memory (each entry holds a model plus its golden
#: caches).
WORKER_CAMPAIGN_CACHE_LIMIT = 4

#: Per-worker campaign cache (lives in the *worker* processes; the parent's
#: copy stays empty).
_WORKER_CAMPAIGNS: "OrderedDict[str, FaultInjectionCampaign]" = OrderedDict()


def spec_fingerprint(spec: CampaignSpec) -> str:
    """Content fingerprint of a campaign spec (golden caches excluded).

    SHA-1 over the pickled configuration leaves — (model, inputs, fault
    model, criteria, dtype policy, seed) — so two campaign *objects* built
    from the same configuration share one fingerprint.  Pool workers key
    their campaign cache on it, and the campaign service's artifact store
    (:mod:`repro.service.store`) keys golden caches and finished results
    on it.  A spurious mismatch merely costs a rebuild / cache miss; a
    false match would need a SHA-1 collision on the pickled configuration.
    """
    payload = pickle.dumps((spec.model, spec.inputs, spec.fault_model,
                            spec.criteria, spec.dtype_policy, spec.seed),
                           protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.sha1(payload).hexdigest()


def _run_pooled_shard(fingerprint: str, spec: CampaignSpec,
                      payload: Sequence[Tuple[int, Sequence[Tuple[str, int]]]],
                      trial_offset: int, keep_faults: bool,
                      incremental: bool, batch_trials: int,
                      equivalence: Optional[str],
                      max_ulps: float,
                      sparse_delta: bool = True) -> CampaignResult:
    """Pooled worker entry: reuse (or rebuild and cache) the campaign, then
    run one shard of trials exactly like ``_run_campaign_shard``."""
    campaign = _WORKER_CAMPAIGNS.get(fingerprint)
    if campaign is None:
        campaign = spec.build()
        _WORKER_CAMPAIGNS[fingerprint] = campaign
        while len(_WORKER_CAMPAIGNS) > WORKER_CAMPAIGN_CACHE_LIMIT:
            _WORKER_CAMPAIGNS.popitem(last=False)
    else:
        _WORKER_CAMPAIGNS.move_to_end(fingerprint)
    plans = [(input_index, InjectionPlan.from_payload(sites))
             for input_index, sites in payload]
    return campaign.run(plans=plans, keep_faults=keep_faults,
                        incremental=incremental, trial_offset=trial_offset,
                        batch_trials=batch_trials, equivalence=equivalence,
                        max_ulps=max_ulps, sparse_delta=sparse_delta)


class CampaignPool:
    """A persistent worker pool shared by many fault-injection campaigns.

    Parameters
    ----------
    workers:
        Number of worker processes kept alive for the pool's lifetime.

    Usage::

        with CampaignPool(workers=4) as pool:
            for config in sweep:                  # fig6/fig9/fig11 grids
                campaign = build_campaign(config)
                result = campaign.run(trials=3000, pool=pool)

    The pool composes with everything ``run`` supports in its multiprocess
    backend (``batch_trials``, ``keep_faults``, paired comparisons via
    ``compare_protection(pool=...)``); only ``workers`` is superseded by
    the pool's size.
    """

    def __init__(self, workers: int,
                 context: Optional[multiprocessing.context.BaseContext] = None,
                 ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers
        if context is None:
            # fork (where available) keeps worker start-up cheap, matching
            # the fresh multiprocess backend's choice.
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            else:  # pragma: no cover - Windows / macOS spawn-only hosts
                context = multiprocessing.get_context()
        self._executor: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=workers, mp_context=context)

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._executor is None

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "CampaignPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution ---------------------------------------------------------

    #: Workers key their campaign cache on :func:`spec_fingerprint`, so two
    #: campaign *objects* built from the same configuration share one
    #: worker-side rebuild.
    fingerprint = staticmethod(spec_fingerprint)

    def run_plans(self, campaign: FaultInjectionCampaign,
                  plans: List[Tuple[int, InjectionPlan]], *,
                  keep_faults: bool = False,
                  incremental: bool = True,
                  trial_offset: int = 0,
                  batch_trials: int = 1,
                  equivalence=None,
                  max_ulps: float = DEFAULT_MAX_ULPS,
                  sparse_delta: bool = True) -> CampaignResult:
        """Fan pre-sampled plans out across the persistent workers.

        The entry point :meth:`FaultInjectionCampaign.run` delegates to
        when called with ``pool=...``; mirrors the fresh multiprocess
        backend shard-for-shard (same contiguous chunks, same trial-offset
        RNG anchoring, same order-insensitive merge).
        """
        if self._executor is None:
            raise RuntimeError("CampaignPool is closed")
        spec = campaign.spec()
        fingerprint = self.fingerprint(spec)
        shards = shard_plans(plans, self.workers)
        payloads = [(offset, [(index, plan.to_payload())
                              for index, plan in chunk])
                    for offset, chunk in shards]
        mode_value = (EquivalenceMode.coerce(
            equivalence, EquivalenceMode.EXACT if batch_trials == 1
            else EquivalenceMode.ULP_TOLERANT).value
            if equivalence is not None else None)
        futures = [self._executor.submit(
            _run_pooled_shard, fingerprint, spec, chunk,
            trial_offset + offset, keep_faults, incremental, batch_trials,
            mode_value, max_ulps, sparse_delta)
            for offset, chunk in payloads]
        return CampaignResult.merge([future.result() for future in futures])

    def run(self, campaign: FaultInjectionCampaign, trials: int = 100,
            plans: Optional[List[Tuple[int, InjectionPlan]]] = None,
            **kwargs) -> CampaignResult:
        """Convenience wrapper: sample plans (if needed) and fan them out."""
        if plans is None:
            plans = campaign.generate_plans(trials)
        return self.run_plans(campaign, plans, **kwargs)
