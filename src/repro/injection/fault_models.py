"""Fault models: how a transient hardware fault corrupts an operator output.

The paper's primary fault model is a **single bit flip** in the output value
of one randomly chosen operator during one inference (Section II-C), with the
values held in a fixed-point representation.  Section VI-B additionally
evaluates **multiple independent bit flips** (2–5 bits, each in a different
randomly chosen value).  This module also provides an IEEE-754 float32 flip
and a bounded random-value replacement used in ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..quantization import FIXED32, FixedPointFormat, flip_float32_bit


@dataclass(frozen=True)
class FaultSpec:
    """Where and how a single corruption lands.

    Attributes
    ----------
    node_name:
        Graph node whose output is corrupted.
    element_index:
        Flat index of the corrupted element within that output tensor.
    bit:
        Bit position flipped (``None`` for non-bit-flip fault models).
    original:
        The fault-free value at the site.
    corrupted:
        The value written back by the fault.
    """

    node_name: str
    element_index: int
    bit: Optional[int]
    original: float
    corrupted: float


class FaultModel:
    """Base class: produces corrupted values and descriptions of each fault."""

    #: How many distinct (node, element) sites one "fault event" corrupts.
    sites_per_event: int = 1

    def corrupt(self, value: float, rng: np.random.Generator
                ) -> Tuple[float, Optional[int]]:
        """Return ``(corrupted_value, bit_position_or_None)``."""
        raise NotImplementedError

    def corrupt_in_band(self, value: float, rng: np.random.Generator,
                        bit_low: int, bit_high: int
                        ) -> Tuple[float, Optional[int]]:
        """Corrupt with the flipped bit restricted to ``[bit_low, bit_high)``.

        The stratum-conditional corruption used by importance-sampled
        campaigns (``injection.sampling``): a stratum pins the *band* the
        bit is drawn from, the draw within the band stays uniform, and one
        generator draw is consumed — same as :meth:`corrupt` — so banded
        trials keep the per-trial RNG stream discipline.  Fault models
        without per-bit semantics raise; stratify those on layer bands
        only (``Stratification(bit_bands=1)``).
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no bit positions to stratify over; "
            f"use bit_bands=1 for this fault model")

    def describe(self) -> str:
        raise NotImplementedError


class SingleBitFlip(FaultModel):
    """Flip one uniformly-chosen bit of the value's representation.

    Parameters
    ----------
    fmt:
        A :class:`FixedPointFormat` (the paper's configuration), or the
        string ``"float32"`` for the IEEE-754 ablation.
    """

    def __init__(self, fmt: FixedPointFormat | str = FIXED32) -> None:
        self.fmt = fmt

    @property
    def total_bits(self) -> int:
        return 32 if self.fmt == "float32" else self.fmt.total_bits

    def corrupt(self, value: float, rng: np.random.Generator
                ) -> Tuple[float, Optional[int]]:
        return self.corrupt_in_band(value, rng, 0, self.total_bits)

    def corrupt_in_band(self, value: float, rng: np.random.Generator,
                        bit_low: int, bit_high: int
                        ) -> Tuple[float, Optional[int]]:
        if not 0 <= bit_low < bit_high <= self.total_bits:
            raise ValueError(
                f"bit band [{bit_low}, {bit_high}) out of range for a "
                f"{self.total_bits}-bit representation")
        bit = bit_low + int(rng.integers(bit_high - bit_low))
        if self.fmt == "float32":
            return flip_float32_bit(value, bit), bit
        return self.fmt.flip_bit(value, bit), bit

    def describe(self) -> str:
        kind = "float32" if self.fmt == "float32" else f"fixed{self.total_bits}"
        return f"single-bit-flip[{kind}]"


class MultiBitFlip(FaultModel):
    """Multiple independent bit flips, each landing in a *different* value.

    This is the Section VI-B fault model: ``num_bits`` independent flips that
    each corrupt a separate randomly chosen value, which the paper argues is
    the more damaging variant (more values affected) and therefore the
    conservative choice.
    """

    def __init__(self, num_bits: int,
                 fmt: FixedPointFormat | str = FIXED32) -> None:
        if num_bits < 1:
            raise ValueError(f"num_bits must be positive, got {num_bits}")
        self.num_bits = int(num_bits)
        self.single = SingleBitFlip(fmt)
        self.sites_per_event = self.num_bits

    @property
    def total_bits(self) -> int:
        return self.single.total_bits

    def corrupt(self, value: float, rng: np.random.Generator
                ) -> Tuple[float, Optional[int]]:
        return self.single.corrupt(value, rng)

    def corrupt_in_band(self, value: float, rng: np.random.Generator,
                        bit_low: int, bit_high: int
                        ) -> Tuple[float, Optional[int]]:
        return self.single.corrupt_in_band(value, rng, bit_low, bit_high)

    def describe(self) -> str:
        return f"multi-bit-flip[{self.num_bits} x {self.single.describe()}]"


class ConsecutiveBitFlip(FaultModel):
    """``num_bits`` consecutive bit flips within the same value.

    The alternative multi-bit model mentioned in Section VI-B; provided for
    completeness and used by the ablation benchmarks.
    """

    def __init__(self, num_bits: int,
                 fmt: FixedPointFormat = FIXED32) -> None:
        if num_bits < 1:
            raise ValueError(f"num_bits must be positive, got {num_bits}")
        if isinstance(fmt, str):
            raise ValueError("consecutive flips require a fixed-point format")
        self.num_bits = int(num_bits)
        self.fmt = fmt

    def corrupt(self, value: float, rng: np.random.Generator
                ) -> Tuple[float, Optional[int]]:
        start = int(rng.integers(self.fmt.total_bits - self.num_bits + 1))
        bits = list(range(start, start + self.num_bits))
        return self.fmt.flip_bits(value, bits), start

    def describe(self) -> str:
        return f"consecutive-bit-flip[{self.num_bits} bits]"


class RandomValueFault(FaultModel):
    """Replace the value with a uniform random draw from ``[low, high]``.

    Used by ablation experiments (e.g. studying how Ranger behaves when the
    corruption magnitude is controlled directly rather than via bit position).
    """

    def __init__(self, low: float, high: float) -> None:
        if low > high:
            raise ValueError(f"low ({low}) must not exceed high ({high})")
        self.low = float(low)
        self.high = float(high)

    def corrupt(self, value: float, rng: np.random.Generator
                ) -> Tuple[float, Optional[int]]:
        return float(rng.uniform(self.low, self.high)), None

    def describe(self) -> str:
        return f"random-value[{self.low}, {self.high}]"


class StuckAtZeroFault(FaultModel):
    """Force the value to zero — models a broken neuron connection."""

    def corrupt(self, value: float, rng: np.random.Generator
                ) -> Tuple[float, Optional[int]]:
        return 0.0, None

    def describe(self) -> str:
        return "stuck-at-zero"
