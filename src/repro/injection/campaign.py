"""Fault-injection campaigns and SDC-rate statistics.

A campaign reproduces the paper's experimental procedure:

1. pick a set of inputs the model handles correctly in the fault-free case;
2. record the fault-free ("golden") output for each input;
3. for each trial, pick an input, sample a random fault site, run one faulty
   inference, and classify the outcome against every SDC criterion;
4. report the SDC rate per criterion with a 95% confidence interval.

The same sequence of faults can be replayed against a protected model (Ranger
or a baseline) so the with/without comparison is paired, which substantially
reduces the variance of the measured SDC-rate *difference* at laptop-scale
trial counts.

Parallel execution
------------------

Trials are embarrassingly parallel once the ``(input, plan)`` pairs are
pre-sampled, so ``run(workers=N)`` shards them across ``N`` worker processes.
Each worker rebuilds its model, executor and golden activation caches from a
picklable :class:`CampaignSpec` and runs its contiguous shard of trials; the
parent merges the per-worker partial results with :meth:`CampaignResult.merge`.

**Determinism guarantee.**  Every trial draws its corruption randomness from
its own generator, derived from the campaign seed and the *global* trial
index via ``numpy.random.SeedSequence`` spawning (see :func:`trial_rng`).  A
trial's outcome therefore depends only on ``(seed, trial index)`` — never on
which process executes it, how the trial list is chunked, or how many workers
run — so ``run(workers=N)`` is bit-identical to the serial path for every
``N``, and two same-seed campaigns (e.g. the unprotected and protected sides
of :func:`compare_protection`) corrupt the same values with the same bits.

Batched execution
-----------------

``run(batch_trials=B)`` additionally stacks up to ``B`` trials that share an
input into one batched partial re-execution
(:meth:`Executor.run_from_batched` via
:meth:`FaultInjector.inject_cached_batch`): the corrupted activations
travel stacked along the batch dimension, so every re-evaluated node in the
replay costs one BLAS call over its dirty rows instead of one call per
trial.  Trials need **not** share a fault site — :meth:`pack_batches`
greedily fills batches to full width with trials whose cones converge early
(cone-suffix packing over the memoized ``Graph.downstream_union``), each
row enters the replay at its own site, and per-row membership masks confine
every row to its own cone, so cross-site batches cost no extra row
evaluations.  Trial *identity* is untouched — plans are pre-sampled exactly
as before and each trial keeps its own :func:`trial_rng` stream — so
batching composes with ``workers=N`` sharding and with paired comparisons,
and the applied-fault records stay bit-identical.  What weakens is the
*numerical* guarantee: BLAS kernels are not bit-stable across batch shapes,
so batched results carry the ``ULP_TOLERANT`` equivalence mode (same SDC
verdicts in practice, outputs within a few float64 ULPs of the batch-1
replay) and report the maximum deviation actually observed.  The default
``batch_trials=1`` path remains bit-exact (``EXACT``).

Adaptive campaigns
------------------

``run(target_half_width=...)`` executes the pre-sampled trials in waves
and stops once the confidence-interval half-width on every criterion
reaches the target — the statistical analogue of the kernel-level wins
above: a campaign whose SDC rate is far from 0.5 needs a small fraction
of the worst-case budget to pin its rate down.  Because plans are
pre-sampled for the whole budget and every trial keeps its index-keyed
:func:`trial_rng` stream, a stopped campaign is *bit-identical to a
prefix* of the fixed-budget run — adaptivity changes when the campaign
stops looking, never what any trial computes — and composes with every
backend above (each wave chunk goes through the same pool → workers →
batched → serial dispatch).  ``run(strata=Stratification(...))``
additionally importance-samples the fault space: trials are allocated
across (layer × bit-band) strata — uniformly at first, then toward
strata whose verdicts are still uncertain — and the result carries
per-stratum counters that reweight into unbiased Horvitz–Thompson rate
estimates (see :mod:`repro.injection.sampling`).

For experiment sweeps that run many campaigns back-to-back (the fig6 /
fig9 / fig11-style grids), :class:`~repro.injection.pool.CampaignPool`
keeps worker processes — and their models, executors and golden activation
caches — alive across campaigns, so each campaign after the first skips
the per-campaign spawn and cache-rebuild fixed costs.  Results stay
bit-identical to fresh per-campaign runs (workers rebuild campaigns from
the same pure-function spec either way).
"""

from __future__ import annotations

import hashlib
import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Callable, Dict, Iterable, List, Mapping,
                    Optional, Sequence, Tuple)

import numpy as np

from ..analysis.metrics import (INTERVAL_METHODS, binomial_interval,
                                merge_count_dicts, merge_partial_count_dicts,
                                stratified_interval, stratified_rate)
from ..analysis.reporting import equivalence_note
from ..graph import DTypePolicy, Executor
from ..graph.equivalence import DEFAULT_MAX_ULPS, EquivalenceMode
from ..graph.executor import BufferArena
from ..models.base import Model
from ..parallel.shm import (array_content_key, campaign_mp_context,
                            plane_scope, shared_plane)
from .fault_models import FaultModel, FaultSpec, SingleBitFlip
from .injector import FaultInjector, InjectionPlan
from .sampling import (Stratification, StratumKey, StratumSpace,
                       neyman_allocation, stratum_rng, uniform_allocation)
from .sdc import SDCCriterion, criteria_for_model

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pool imports us)
    from .pool import CampaignPool

#: Default ceiling (bytes) on the golden activation caches shipped inside a
#: pickled :class:`CampaignSpec` to worker processes.  Below the budget,
#: workers reuse the parent's caches instead of rebuilding them; above it,
#: the spec ships without caches and workers rebuild lazily as before.
#: The default is deliberately small: the spec is pickled once per worker
#: task, so shipping costs ``workers x (pickle + unpickle)`` of the payload
#: while the lazy rebuild costs one batch-1 inference per (worker, input)
#: — measured on this zoo, the transfer only beats the rebuild when the
#: payload is tiny relative to the model's inference cost.  Raise the
#: budget for deployments where worker-side compute is the scarce resource
#: (e.g. heavily oversubscribed hosts), or set 0 to never ship.
DEFAULT_CACHE_BUDGET_BYTES = 1 * 2 ** 20

#: Golden-cache shipping ceiling when the shared-memory cache plane is
#: active (see :mod:`repro.parallel.shm`).  The plane publishes the
#: caches **once** into shared segments and ships only tiny references,
#: so the old per-worker ``pickle + unpickle`` economics that kept
#: :data:`DEFAULT_CACHE_BUDGET_BYTES` at 1 MiB no longer apply; the only
#: real cost left is one parent-side copy into ``/dev/shm``, which the
#: lazy per-(worker, input) rebuild always loses against.
PLANE_CACHE_BUDGET_BYTES = 256 * 2 ** 20

#: First spawn-key element of the plan-sampling stream
#: (:meth:`FaultInjectionCampaign.generate_plans`): a two-element key, so
#: it can never collide with the single-element per-trial keys of
#: :func:`trial_rng` (SeedSequence keys of different lengths are distinct
#: streams) nor with the per-stratum keys rooted at
#: :data:`~repro.injection.sampling.STRATUM_STREAM_KEY`.
PLAN_STREAM_KEY = 1

#: Interval method campaign statistics default to (see
#: :func:`repro.analysis.binomial_interval`).  Wilson score: unlike the
#: old normal approximation, its error bars stay honest at the extreme
#: rates protected models produce — at 0 observed SDCs it reports the
#: correct nonzero upper bound instead of a degenerate ±~0% bar.
DEFAULT_INTERVAL_METHOD = "wilson"

#: Fraction of the trial budget one adaptive wave runs when the caller
#: does not pass ``wave_trials`` explicitly.
DEFAULT_WAVE_FRACTION = 0.1

#: Union-cone budget of the cross-site batch packer
#: (:meth:`FaultInjectionCampaign.pack_batches`): a trial joins a batch only
#: while the union of the members' fault cones stays within this factor of
#: the largest single member cone.  Feed-forward cones of topologically
#: adjacent sites nest like suffixes (union ≈ largest member, factor ~1.0);
#: the headroom admits branch divergence (fire modules, residual blocks)
#: while refusing pathological unions of far-apart sites.
DEFAULT_UNION_COST_FACTOR = 1.5


def trial_rng(seed: int, trial_index: int) -> np.random.Generator:
    """The corruption RNG stream of one campaign trial.

    Stream ``i`` is the ``i``-th child of ``SeedSequence(seed)`` —
    constructed directly through its spawn key, which is identical to
    ``SeedSequence(seed).spawn(n)[i]`` for any ``n > i`` but lets a worker
    derive the streams of its shard without enumerating every earlier trial.
    Deriving per-trial streams from the campaign seed (instead of consuming
    one shared generator trial-after-trial) is what makes campaign results
    independent of execution order, worker count and chunking.
    """
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(trial_index,)))


def shard_plans(plans: Sequence[Tuple[int, InjectionPlan]], shards: int
                ) -> List[Tuple[int, List[Tuple[int, InjectionPlan]]]]:
    """Split a trial list into at most ``shards`` contiguous chunks.

    Returns ``(trial_offset, chunk)`` pairs; the offset is the position of
    the chunk's first trial in the original list, which each worker needs to
    derive the correct per-trial RNG streams (see :func:`trial_rng`).  Chunks
    are contiguous and near-even; empty chunks are dropped.
    """
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    boundaries = np.array_split(np.arange(len(plans)), shards)
    out: List[Tuple[int, List[Tuple[int, InjectionPlan]]]] = []
    for indices in boundaries:
        if len(indices) == 0:
            continue
        start = int(indices[0])
        out.append((start, list(plans[start:start + len(indices)])))
    return out


@dataclass
class CampaignResult:
    """Aggregated results of one fault-injection campaign (or one shard)."""

    model_name: str
    fault_model: str
    trials: int
    sdc_counts: Dict[str, int]
    detected_count: int = 0
    faults: List[List[FaultSpec]] = field(default_factory=list)
    #: Incremental-execution statistics: how many node evaluations the
    #: campaign actually performed vs. what full re-execution would have
    #: performed.  Both stay 0 when the campaign ran in full mode.  For
    #: batched runs, one node re-evaluated for R of B stacked rows counts
    #: as R evaluations (the batched analogue of per-trial node counts).
    nodes_recomputed: int = 0
    nodes_full: int = 0
    #: The numerical guarantee these results satisfy (an
    #: :class:`~repro.graph.EquivalenceMode` value): ``"exact"`` for the
    #: bit-exact incremental/full paths, ``"ulp_tolerant"`` for batched
    #: replay (BLAS kernels are not bit-stable across batch shapes).
    equivalence: str = EquivalenceMode.EXACT.value
    #: Largest ULP distance between a row that batched change propagation
    #: declared clean and its batch-1 golden value — the tolerance the run
    #: actually consumed.  Always 0.0 for exact runs.
    max_ulp_deviation: float = 0.0
    #: Batch-occupancy statistics (all 0 outside the batched path):
    #: ``batch_count`` batched executor calls replayed ``batched_trials``
    #: trials, and the batches' union cones contained
    #: ``union_overhead_nodes`` more (node, needed)-restricted cone nodes
    #: than their largest single member's cone would alone — the static
    #: price of packing different sites together.  Without these the
    #: occupancy lift of cross-site packing is unmeasurable.
    batch_count: int = 0
    batched_trials: int = 0
    union_overhead_nodes: int = 0
    #: Sparse-delta accounting (all 0 when the campaign ran with
    #: ``sparse_delta=False`` or in full mode): ``elements_evaluated``
    #: output elements the replays actually computed,
    #: ``elements_full`` what dense evaluation of the same node visits
    #: would have computed, and ``dense_fallback_nodes`` how many node
    #: evaluations had to scatter a sparse frontier into a dense array
    #: (the densification boundary — conv/matmul/pooling consumers).
    elements_evaluated: int = 0
    elements_full: int = 0
    dense_fallback_nodes: int = 0
    #: Interval method every rate statistic of this result uses (a
    #: :data:`repro.analysis.INTERVAL_METHODS` member).
    interval_method: str = DEFAULT_INTERVAL_METHOD
    #: Adaptive-campaign metadata (all zero / ``None`` for fixed-budget
    #: runs): the trial budget the campaign was allowed, how many waves it
    #: actually ran, and the CI half-width it was asked to reach.
    #: ``trials < trials_budget`` means the stopping rule fired early.
    trials_budget: int = 0
    waves: int = 0
    target_half_width: Optional[float] = None
    #: Stratified-sampling accounting (all empty for uniform campaigns).
    #: ``stratum_weights[h]`` is the probability a *uniform* fault lands in
    #: stratum ``h`` (``q_h``, summing to 1 over the stratum space);
    #: ``stratum_trials[h]`` / ``stratum_sdc_counts[criterion][h]`` are the
    #: trials allocated to and SDC counts observed in ``h``.  All three
    #: merge additively / by union, so shards stay order-insensitive.
    #: When present, ``sdc_rate`` / ``confidence_interval`` return the
    #: Horvitz–Thompson reweighted (unbiased) statistics instead of the
    #: allocation-biased raw ``sdc_counts / trials`` ratio.
    stratum_weights: Dict[StratumKey, float] = field(default_factory=dict)
    stratum_trials: Dict[StratumKey, int] = field(default_factory=dict)
    stratum_sdc_counts: Dict[str, Dict[StratumKey, int]] = field(
        default_factory=dict)

    @property
    def is_stratified(self) -> bool:
        """Whether rates are Horvitz–Thompson estimates over strata."""
        return bool(self.stratum_trials)

    @property
    def stopped_early(self) -> bool:
        """Whether the sequential stopping rule fired before the budget."""
        return 0 < self.trials < self.trials_budget

    @property
    def sparse_evaluated_fraction(self) -> Optional[float]:
        """Fraction of dense-equivalent element work the sparse path skipped.

        ``1 - elements_evaluated / elements_full`` over every sparse-active
        replay; ``None`` when no replay ran with sparse accounting.
        """
        if self.elements_full == 0:
            return None
        return 1.0 - self.elements_evaluated / self.elements_full

    @property
    def mean_batch_occupancy(self) -> Optional[float]:
        """Mean stacked rows per batched executor call (None when unbatched)."""
        if self.batch_count == 0:
            return None
        return self.batched_trials / self.batch_count

    @property
    def batched_fraction(self) -> float:
        """Fraction of trials replayed through the batched path."""
        if self.trials == 0:
            return 0.0
        return self.batched_trials / self.trials

    @property
    def recompute_fraction(self) -> Optional[float]:
        """Fraction of node evaluations partial re-execution paid for."""
        if self.nodes_full == 0:
            return None
        return self.nodes_recomputed / self.nodes_full

    def sdc_rate(self, criterion: str) -> float:
        """SDC rate (fraction in [0, 1]) for one criterion.

        For stratified campaigns this is the unbiased Horvitz–Thompson
        estimate (per-stratum rates reweighted by the strata's share of
        the fault space, see :func:`repro.analysis.stratified_rate`) —
        the raw ``sdc_counts / trials`` ratio is biased by the adaptive
        allocation and remains available through those fields directly.
        """
        if self.trials == 0:
            return 0.0
        if self.is_stratified:
            return stratified_rate(self.stratum_weights,
                                   self.stratum_sdc_counts[criterion],
                                   self.stratum_trials)
        return self.sdc_counts[criterion] / self.trials

    def sdc_rate_percent(self, criterion: str) -> float:
        return 100.0 * self.sdc_rate(criterion)

    def confidence_interval(self, criterion: str,
                            z: float = 1.96) -> Tuple[float, float]:
        """Confidence interval on the SDC rate (95% for the default z).

        Computed by ``interval_method`` — Wilson score by default, which
        (unlike the normal approximation this result used to apply) keeps
        a correct nonzero upper bound when 0 SDCs were observed.
        Stratified campaigns get the normal-approximation interval of the
        Horvitz–Thompson estimator with Jeffreys-smoothed per-stratum
        variances (:func:`repro.analysis.stratified_interval`).
        """
        if self.trials == 0:
            return 0.0, 0.0
        if self.is_stratified:
            return stratified_interval(self.stratum_weights,
                                       self.stratum_sdc_counts[criterion],
                                       self.stratum_trials, z=z)
        return binomial_interval(self.sdc_counts[criterion], self.trials,
                                 z=z, method=self.interval_method)

    def half_width(self, criterion: str, z: float = 1.96) -> float:
        """CI half-width on one criterion — the stopping-rule statistic."""
        low, high = self.confidence_interval(criterion, z)
        return (high - low) / 2.0

    def error_bar_percent(self, criterion: str, z: float = 1.96) -> float:
        return 100.0 * self.half_width(criterion, z)

    @property
    def criteria(self) -> List[str]:
        return list(self.sdc_counts.keys())

    @classmethod
    def merge(cls, shards: Iterable["CampaignResult"]) -> "CampaignResult":
        """Combine per-shard partial results into one campaign result.

        All counters are additive, so the merge is order-insensitive for
        every statistic: the merged ``sdc_rate``, ``confidence_interval``
        and ``recompute_fraction`` equal those of an unsharded run over the
        same trials.  Fault logs are concatenated in the given shard order
        (the parallel backend passes shards in trial order, so the merged
        log matches a serial ``keep_faults`` run).  Shards must describe the
        same campaign: same model, same fault model, same criterion set.
        """
        shards = list(shards)
        if not shards:
            raise ValueError("merge() requires at least one shard result")
        first = shards[0]
        for other in shards[1:]:
            if (other.model_name != first.model_name
                    or other.fault_model != first.fault_model):
                raise ValueError(
                    f"cannot merge results of different campaigns: "
                    f"{first.model_name} [{first.fault_model}] vs. "
                    f"{other.model_name} [{other.fault_model}]")
            if other.equivalence != first.equivalence:
                raise ValueError(
                    f"cannot merge shards with different equivalence "
                    f"guarantees: {first.equivalence} vs. "
                    f"{other.equivalence}")
            if other.interval_method != first.interval_method:
                raise ValueError(
                    f"cannot merge shards with different interval methods: "
                    f"{first.interval_method} vs. {other.interval_method}")
        # Stratum weights describe the stratum *space*, not a shard's
        # sample, so overlapping shards must agree on them; trials and
        # counts are per-shard samples and merge additively by key union.
        stratum_weights: Dict[StratumKey, float] = {}
        for shard in shards:
            for key, weight in shard.stratum_weights.items():
                if key in stratum_weights and stratum_weights[key] != weight:
                    raise ValueError(
                        f"cannot merge shards with conflicting weights for "
                        f"stratum {key}: {stratum_weights[key]} vs. {weight}")
                stratum_weights[key] = weight
        stratum_trials = merge_partial_count_dicts(
            s.stratum_trials for s in shards)
        criteria_with_strata = {name for s in shards
                                for name in s.stratum_sdc_counts}
        stratum_sdc_counts = {
            name: merge_partial_count_dicts(
                s.stratum_sdc_counts.get(name, {}) for s in shards)
            for name in sorted(criteria_with_strata)}
        return cls(
            model_name=first.model_name,
            fault_model=first.fault_model,
            trials=sum(s.trials for s in shards),
            sdc_counts=merge_count_dicts([s.sdc_counts for s in shards]),
            detected_count=sum(s.detected_count for s in shards),
            faults=[faults for s in shards for faults in s.faults],
            nodes_recomputed=sum(s.nodes_recomputed for s in shards),
            nodes_full=sum(s.nodes_full for s in shards),
            equivalence=first.equivalence,
            max_ulp_deviation=max(s.max_ulp_deviation for s in shards),
            batch_count=sum(s.batch_count for s in shards),
            batched_trials=sum(s.batched_trials for s in shards),
            union_overhead_nodes=sum(s.union_overhead_nodes for s in shards),
            elements_evaluated=sum(s.elements_evaluated for s in shards),
            elements_full=sum(s.elements_full for s in shards),
            dense_fallback_nodes=sum(s.dense_fallback_nodes for s in shards),
            interval_method=first.interval_method,
            trials_budget=max(s.trials_budget for s in shards),
            waves=max(s.waves for s in shards),
            target_half_width=next(
                (s.target_half_width for s in shards
                 if s.target_half_width is not None), None),
            stratum_weights=stratum_weights,
            stratum_trials=stratum_trials,
            stratum_sdc_counts=stratum_sdc_counts,
        )

    def summary(self) -> str:
        lines = [f"{self.model_name} [{self.fault_model}] — {self.trials} trials"]
        lines.append(
            "  " + equivalence_note(self.equivalence, self.max_ulp_deviation))
        if self.trials_budget:
            stopped = ("stopped early" if self.stopped_early
                       else "budget exhausted")
            target = (f", target ±{100.0 * self.target_half_width:.2f}%"
                      if self.target_half_width is not None else "")
            lines.append(
                f"  adaptive: {self.trials}/{self.trials_budget} trials in "
                f"{self.waves} waves ({stopped}{target})")
        if self.is_stratified:
            lines.append(
                f"  stratified: {len(self.stratum_trials)} strata sampled "
                f"(of {len(self.stratum_weights)}); rates are "
                f"Horvitz–Thompson reweighted")
        method = ("stratified-ht" if self.is_stratified
                  else self.interval_method)
        lines.append(f"  intervals: {method}")
        if self.batch_count:
            lines.append(
                f"  batched: {self.batched_trials}/{self.trials} trials "
                f"({100.0 * self.batched_fraction:.1f}%) in "
                f"{self.batch_count} batches, mean occupancy "
                f"{self.mean_batch_occupancy:.1f} rows/batch, union-cone "
                f"overhead {self.union_overhead_nodes} nodes")
        if self.elements_full:
            lines.append(
                f"  sparse deltas: {100.0 * self.sparse_evaluated_fraction:.1f}% "
                f"of element work skipped "
                f"({self.elements_evaluated}/{self.elements_full} elements "
                f"evaluated, {self.dense_fallback_nodes} dense-fallback "
                f"node evals)")
        for criterion in self.criteria:
            count = self.sdc_counts[criterion]
            lines.append(
                f"  {criterion:20s} SDC rate = "
                f"{self.sdc_rate_percent(criterion):6.2f}% "
                f"(± {self.error_bar_percent(criterion):.2f}%) "
                f"[{count}/{self.trials} trials]")
        return "\n".join(lines)


class FaultInjectionCampaign:
    """Runs a fault-injection campaign against one model.

    Parameters
    ----------
    model:
        The model under test.
    inputs:
        Array of evaluation inputs (the paper uses inputs the model predicts
        correctly in the fault-free case; see
        ``PreparedModel.correctly_predicted_inputs``).
    fault_model:
        The fault model to apply (defaults to a 32-bit fixed-point single bit
        flip).
    criteria:
        SDC criteria; defaults to the model-appropriate set.
    dtype_policy:
        Optional executor dtype policy (e.g. a fixed-point policy).
    """

    def __init__(self, model: Model, inputs: np.ndarray,
                 fault_model: Optional[FaultModel] = None,
                 criteria: Optional[Sequence[SDCCriterion]] = None,
                 dtype_policy: Optional[DTypePolicy] = None,
                 seed: int = 0) -> None:
        if len(inputs) == 0:
            raise ValueError("campaign requires at least one evaluation input")
        self.model = model
        self.inputs = np.asarray(inputs)
        self.fault_model = fault_model or SingleBitFlip()
        self.criteria = list(criteria if criteria is not None
                             else criteria_for_model(model))
        if not self.criteria:
            raise ValueError("campaign requires at least one SDC criterion")
        self.dtype_policy = dtype_policy
        self.seed = seed
        self.injector = FaultInjector(model, self.fault_model, seed=seed)
        self._executor = model.executor(dtype_policy)
        #: Replay buffer arena: partial re-executions reuse per-(node,
        #: batch width) output buffers across this campaign's trials and
        #: waves instead of allocating fresh arrays per node per replay.
        #: ``run()`` never consults the arena (golden caches must own
        #: their storage) and hooks/observers gate it off dynamically,
        #: so attaching it is behaviour-free — see
        #: :class:`~repro.graph.executor.BufferArena` for the audit.
        self._executor.arena = BufferArena()
        self.injector.profile_state_space(self.inputs[:1], self._executor)
        self._golden = self._compute_golden_outputs()
        #: Per-input golden activation caches for partial re-execution,
        #: built lazily the first time a trial uses an input.
        self._golden_caches: Dict[int, Dict[str, np.ndarray]] = {}
        #: Hoisted per-fault-node-set packing state, shared by
        #: :meth:`group_batches` and :meth:`pack_batches`: the within-plan
        #: overlap verdict and the needed-restricted union cone.  Both
        #: depend only on the node *set*, and campaigns sample the same
        #: sets over and over, so screening/packing cost stays
        #: O(trials log trials) instead of paying cone queries per trial.
        self._overlap_memo: Dict[frozenset, bool] = {}
        self._cone_memo: Dict[frozenset, frozenset] = {}
        self._needed_nodes: Optional[frozenset] = None
        #: Memoized :func:`~repro.injection.pool.spec_fingerprint` of
        #: this campaign's spec — every field it hashes is fixed at
        #: construction, so computing it once is safe.
        self._fingerprint: Optional[str] = None

    # -- setup ------------------------------------------------------------------

    def _compute_golden_outputs(self) -> List[np.ndarray]:
        """Golden (fault-free) output per input, in one batched forward pass.

        Batched rows can differ from batch-1 runs in the last ulp (BLAS
        blocking), so these goldens are for *SDC classification only* —
        argmax / threshold comparisons, which a last-ulp difference cannot
        realistically flip.  Both the incremental and the full campaign
        paths compare faulty outputs against these same values, so the
        paths remain exactly equivalent to each other; bit-exact golden
        activations (for partial re-execution) come from the batch-1
        caches built by :meth:`_golden_cache`.
        """
        result = self._executor.run({self.model.input_name: self.inputs},
                                    outputs=[self.model.output_name])
        output = result.output(self.model.output_name)
        return [output[i:i + 1] for i in range(len(self.inputs))]

    def _golden_cache(self, input_index: int) -> Dict[str, np.ndarray]:
        """The full activation cache of input ``input_index``, built once.

        Caches are built at batch size 1 — the batch size every trial runs
        at — rather than sliced out of one batched pass: BLAS kernels pick
        different blocking for different batch shapes, so batched rows can
        differ from single-example runs in the last ulp, which would break
        the bit-identical guarantee of partial re-execution.
        """
        cache = self._golden_caches.get(input_index)
        if cache is None:
            batch = self.inputs[input_index:input_index + 1]
            result = self._executor.run({self.model.input_name: batch},
                                        outputs=[self.model.output_name])
            cache = result.values
            self._golden_caches[input_index] = cache
        return cache

    # -- plan generation -----------------------------------------------------------

    def generate_plans(self, trials: int
                       ) -> List[Tuple[int, InjectionPlan]]:
        """Pre-sample (input index, injection plan) pairs for ``trials`` runs.

        Sharing the returned list between the unprotected and protected
        campaigns makes the comparison paired.  Input indices and fault
        sites are each drawn in a single vectorized call.  The sampled list
        is a pure function of the campaign seed: parallel runs ship these
        pre-sampled pairs to the workers, so chunking and worker count
        cannot perturb them.

        The input-index stream is the ``(PLAN_STREAM_KEY, 0)``-keyed child
        of the campaign seed's ``SeedSequence`` — a properly spawned
        stream, statistically independent of every per-trial and
        per-stratum stream by construction (the old ``seed + 1`` ad-hoc
        derivation could collide with a sibling campaign seeded at
        ``seed + 1``).
        """
        rng = np.random.default_rng(np.random.SeedSequence(
            entropy=self.seed, spawn_key=(PLAN_STREAM_KEY, 0)))
        input_indices = rng.integers(len(self.inputs), size=trials)
        plans = self.injector.sample_plans(trials)
        return [(int(index), plan)
                for index, plan in zip(input_indices, plans)]

    # -- execution -----------------------------------------------------------------

    def spec(self) -> "CampaignSpec":
        """The picklable description a worker process rebuilds this campaign from."""
        return CampaignSpec(model=self.model, inputs=self.inputs,
                            fault_model=self.fault_model,
                            criteria=list(self.criteria),
                            dtype_policy=self.dtype_policy, seed=self.seed)

    def spec_fingerprint(self) -> str:
        """Content fingerprint of this campaign's spec, computed once.

        The same SHA-1 the :class:`~repro.injection.pool.CampaignPool`
        worker cache and the service's
        :class:`~repro.service.store.ArtifactStore` key by, so the
        shared-memory cache plane's segments (``body:<fingerprint>`` /
        ``golden:<fingerprint>:...``) line up with both.
        """
        if self._fingerprint is None:
            from .pool import spec_fingerprint
            self._fingerprint = spec_fingerprint(self.spec())
        return self._fingerprint

    def run(self, trials: int = 100,
            plans: Optional[List[Tuple[int, InjectionPlan]]] = None,
            keep_faults: bool = False,
            incremental: bool = True,
            workers: int = 1,
            trial_offset: int = 0,
            batch_trials: int = 1,
            equivalence=None,
            max_ulps: float = DEFAULT_MAX_ULPS,
            cache_budget_bytes: int = DEFAULT_CACHE_BUDGET_BYTES,
            packing: Optional[Tuple[List[Tuple[int, List[int]]],
                                    List[int]]] = None,
            pool: Optional["CampaignPool"] = None,
            sparse_delta: bool = True,
            target_half_width: Optional[float] = None,
            wave_trials: Optional[int] = None,
            strata: Optional[Stratification] = None,
            z: float = 1.96,
            interval_method: str = DEFAULT_INTERVAL_METHOD,
            on_wave: Optional[Callable[[CampaignResult], None]] = None,
            ) -> CampaignResult:
        """Run the campaign and return aggregated SDC statistics.

        Parameters
        ----------
        incremental:
            When True (default), each input's golden activation cache is
            built once and every trial is replayed by partial re-execution
            of the fault's downstream cone (bit-identical to a full faulty
            run).  When False, every trial re-executes the whole graph —
            the legacy path, kept for equivalence testing and benchmarking.
        workers:
            Number of worker processes.  ``1`` (default) runs in-process;
            ``N > 1`` pre-samples the plans, shards them into contiguous
            chunks, and fans the chunks out to ``N`` processes that each
            rebuild the campaign from its :meth:`spec` and run their shard.
            Results are bit-identical for every worker count (see the
            module docstring's determinism guarantee).
        trial_offset:
            Global index of the first trial in ``plans``; used by the
            parallel backend so each shard derives the same per-trial RNG
            streams the serial path would.
        batch_trials:
            Maximum number of trials replayed per batched executor call.
            ``1`` (default) keeps the bit-exact incremental path.  ``B > 1``
            packs trials that share an *input* — across different fault
            sites — into union-cone batches (:meth:`pack_batches`) and
            replays each batch by stacking its corrupted activations along
            the batch dimension, each row entering the replay at its own
            site (one BLAS call over a node's dirty rows instead of one
            call per trial) — see :meth:`FaultInjector.inject_cached_batch`.
            Trial identity is untouched (every trial keeps its own
            :func:`trial_rng` stream), so batching composes with
            ``workers=N`` and with paired comparisons; only the numerical
            guarantee weakens from bit-exact to ``ULP_TOLERANT``.
        equivalence:
            The :class:`~repro.graph.EquivalenceMode` (or its string value)
            the run must satisfy.  Defaults to ``EXACT`` for
            ``batch_trials=1`` and ``ULP_TOLERANT`` otherwise; requesting
            ``EXACT`` together with ``batch_trials > 1`` raises
            ``ValueError`` because batched BLAS calls cannot promise bit
            stability.
        max_ulps:
            Row-masking tolerance (float64 ULPs) for batched replay.
        cache_budget_bytes:
            Ceiling on the golden activation caches shipped to worker
            processes inside the pickled spec (0 disables shipping); above
            the budget workers rebuild their caches lazily as before.
        packing:
            Optional pre-computed ``(batches, fallback)`` groups for the
            serial batched path (the shape :meth:`pack_batches` returns).
            :func:`compare_protection` packs once on the unprotected side
            and reuses the groups on the protected side so the paired
            batches stay bit-aligned; ignored when ``workers > 1`` (each
            shard packs its own contiguous chunk).
        pool:
            Optional :class:`~repro.injection.pool.CampaignPool`.  When
            given (and more than one trial is to run), the campaign is
            fanned out across the pool's persistent worker processes
            instead of spawning a fresh process pool — back-to-back
            campaigns then reuse the workers' models and golden caches.
            Results are bit-identical either way; ``workers`` is ignored
            in favour of the pool's size.
        sparse_delta:
            When True (default), incremental and batched replays seed the
            executor with the corrupted bit *positions* (a sparse delta
            over the golden cache) instead of whole corrupted activation
            copies; elementwise-exact stretches of the fault cone then
            evaluate only the changed elements.  Fault records and verdicts
            are identical either way (bit-identical for the batch-1 paths);
            the knob exists for benchmarking and as an escape hatch.  The
            result's ``elements_evaluated`` / ``elements_full`` /
            ``dense_fallback_nodes`` counters (and
            ``sparse_evaluated_fraction``) quantify what the sparse path
            saved.  Ignored by the full (``incremental=False``) path.
        target_half_width:
            When set, the campaign runs **adaptively**: trials execute in
            waves of ``wave_trials`` each, and the campaign stops as soon
            as the CI half-width on *every* criterion drops to the target
            (or the ``trials`` budget is exhausted).  Because plans are
            pre-sampled and every trial keeps its index-keyed
            :func:`trial_rng` stream, a stopped campaign is bit-identical
            to the same-length *prefix* of the fixed-budget run — only the
            point at which it stops looking is adaptive.  The returned
            result records ``trials_budget`` / ``waves`` /
            ``target_half_width``.
        wave_trials:
            Trials per adaptive wave; defaults to 10% of the budget
            (stratified campaigns bump it to at least one trial per
            stratum so the uniform first wave covers the space).  Setting
            it without a target runs waves to the full budget — useful
            with ``strata`` for pure importance sampling.
        strata:
            A :class:`~repro.injection.sampling.Stratification`: the
            campaign partitions the fault space into (layer band × bit
            band) strata, allocates the first wave uniformly and later
            waves Neyman-style toward strata with uncertain verdicts, and
            reports unbiased Horvitz–Thompson rates (see the result's
            ``stratum_*`` fields).  Sampling leaves the uniform
            distribution *within* each stratum untouched; only the
            between-strata allocation adapts, and the reweighting removes
            that bias.  Mutually exclusive with explicit ``plans``.
        z:
            Critical value of the stopping rule's intervals (1.96 ≈ 95%).
        interval_method:
            Interval flavour for the result's statistics and the stopping
            rule: ``"wilson"`` (default), ``"jeffreys"`` or ``"normal"``.
        on_wave:
            Optional per-wave snapshot hook for adaptive / waved runs:
            after every wave the merged-so-far :class:`CampaignResult` is
            passed to the callback (the order-insensitive merge makes
            each snapshot a valid partial result whose counts are a
            prefix of the final ones).  The campaign service streams
            these snapshots to subscribers; an exception raised by the
            callback aborts the run (the service uses this for
            cancellation).  Requires a waved run — set
            ``target_half_width`` or ``wave_trials``.
        """
        if trials <= 0 and plans is None:
            raise ValueError("trials must be positive")
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if batch_trials < 1:
            raise ValueError(
                f"batch_trials must be positive, got {batch_trials}")
        if interval_method not in INTERVAL_METHODS:
            raise ValueError(
                f"unknown interval method {interval_method!r}; expected one "
                f"of {INTERVAL_METHODS}")
        mode = EquivalenceMode.coerce(
            equivalence, EquivalenceMode.EXACT if batch_trials == 1
            else EquivalenceMode.ULP_TOLERANT)
        if batch_trials > 1:
            if mode is EquivalenceMode.EXACT:
                raise ValueError(
                    "batch_trials > 1 cannot satisfy EXACT equivalence: "
                    "BLAS kernels are not bit-stable across batch shapes; "
                    "request ULP_TOLERANT (the batched default) or run with "
                    "batch_trials=1")
            if not incremental:
                raise ValueError(
                    "batch_trials > 1 requires the incremental engine "
                    "(batched replay resumes from golden activation caches)")
        adaptive = (target_half_width is not None or strata is not None
                    or wave_trials is not None)
        if on_wave is not None and not adaptive:
            raise ValueError(
                "on_wave snapshots require a waved run; set wave_trials "
                "(or target_half_width) so there are waves to snapshot")
        if adaptive:
            if packing is not None:
                raise ValueError(
                    "adaptive campaigns pack each wave's chunk themselves; "
                    "precomputed packing is only valid for fixed plan lists")
            if trial_offset:
                raise ValueError(
                    "adaptive campaigns own the whole trial index space; "
                    "trial_offset must be 0")
            group_hook = (None if on_wave is None
                          else lambda snapshots: on_wave(snapshots[0]))
            # The scope pins the plane segments the per-wave dispatches
            # publish, so waves re-use them instead of republishing.
            with plane_scope():
                return _run_adaptive_group(
                    [self], trials=trials, plans=plans,
                    wave_trials=wave_trials,
                    target_half_width=target_half_width, strata=strata, z=z,
                    interval_method=interval_method, keep_faults=keep_faults,
                    incremental=incremental, workers=workers,
                    batch_trials=batch_trials, mode=mode, max_ulps=max_ulps,
                    cache_budget_bytes=cache_budget_bytes, pool=pool,
                    sparse_delta=sparse_delta, on_wave=group_hook)[0]
        if plans is None:
            plans = self.generate_plans(trials)
        result = self._dispatch(plans, keep_faults=keep_faults,
                                incremental=incremental, workers=workers,
                                trial_offset=trial_offset,
                                batch_trials=batch_trials, mode=mode,
                                max_ulps=max_ulps,
                                cache_budget_bytes=cache_budget_bytes,
                                packing=packing, pool=pool,
                                sparse_delta=sparse_delta)
        result.interval_method = interval_method
        return result

    def _dispatch(self, plans: List[Tuple[int, InjectionPlan]], *,
                  keep_faults: bool, incremental: bool, workers: int,
                  trial_offset: int, batch_trials: int,
                  mode: EquivalenceMode, max_ulps: float,
                  cache_budget_bytes: int,
                  packing: Optional[Tuple[List[Tuple[int, List[int]]],
                                          List[int]]],
                  pool: Optional["CampaignPool"],
                  sparse_delta: bool) -> CampaignResult:
        """Run one fixed plan list through the backend dispatch.

        The pool → workers → batched → serial routing shared by
        fixed-budget runs (one call) and adaptive runs (one call per wave
        chunk, anchored by ``trial_offset``); parameters are pre-validated
        by :meth:`run`.
        """
        if pool is not None and len(plans) > 1:
            return pool.run_plans(self, plans, keep_faults=keep_faults,
                                  incremental=incremental,
                                  trial_offset=trial_offset,
                                  batch_trials=batch_trials,
                                  equivalence=mode, max_ulps=max_ulps,
                                  sparse_delta=sparse_delta)
        if workers > 1 and len(plans) > 1:
            return self._run_parallel(plans, workers=workers,
                                      keep_faults=keep_faults,
                                      incremental=incremental,
                                      trial_offset=trial_offset,
                                      batch_trials=batch_trials,
                                      equivalence=mode,
                                      max_ulps=max_ulps,
                                      cache_budget_bytes=cache_budget_bytes,
                                      sparse_delta=sparse_delta)
        if batch_trials > 1:
            return self._run_batched(plans, batch_trials=batch_trials,
                                     keep_faults=keep_faults,
                                     trial_offset=trial_offset,
                                     mode=mode, max_ulps=max_ulps,
                                     packing=packing,
                                     sparse_delta=sparse_delta)
        sdc_counts = {criterion.name: 0 for criterion in self.criteria}
        fault_log: List[List[FaultSpec]] = []
        # Per-trial cost of the full path: the ancestor-pruned subgraph it
        # actually evaluates, not the whole graph.
        full_cost = len(self.model.graph.ancestors([self.model.output_name]))
        nodes_recomputed = 0
        nodes_full = 0
        elements_evaluated = 0
        elements_full = 0
        dense_fallbacks = 0

        for position, (input_index, plan) in enumerate(plans):
            rng = trial_rng(self.seed, trial_offset + position)
            golden = self._golden[input_index]
            if incremental:
                cache = self._golden_cache(input_index)
                faulty, faults, result = self.injector.inject_cached(
                    self._executor, cache, plan, rng=rng,
                    sparse_delta=sparse_delta)
                nodes_recomputed += len(result.recomputed or ())
                nodes_full += full_cost
                elements_evaluated += result.elements_evaluated
                elements_full += result.elements_full
                dense_fallbacks += result.dense_fallback_nodes
            else:
                batch = self.inputs[input_index:input_index + 1]
                faulty, faults = self.injector.inject(self._executor, batch,
                                                      plan, rng=rng)
            for criterion in self.criteria:
                if criterion.is_sdc(golden, faulty):
                    sdc_counts[criterion.name] += 1
            if keep_faults:
                fault_log.append(faults)

        return CampaignResult(model_name=self.model.name,
                              fault_model=self.fault_model.describe(),
                              trials=len(plans), sdc_counts=sdc_counts,
                              faults=fault_log,
                              nodes_recomputed=nodes_recomputed,
                              nodes_full=nodes_full,
                              equivalence=mode.value,
                              elements_evaluated=elements_evaluated,
                              elements_full=elements_full,
                              dense_fallback_nodes=dense_fallbacks)

    # -- batched scheduling ------------------------------------------------

    def group_batches(self, plans: Sequence[Tuple[int, InjectionPlan]],
                      batch_trials: int,
                      ) -> Tuple[List[Tuple[int, List[int]]], List[int]]:
        """Group trial positions into identical-fault-site stacks.

        The conservative grouper: trials batch together only when they
        share an input *and* a fault-node set (their stacked corruptions
        then share one replay cone); each group is chunked into batches of
        at most ``batch_trials``.  The runtime batched path uses the
        cross-site :meth:`pack_batches` instead — which fills batches to
        full width — but this grouping remains the reference for
        occupancy comparisons and for callers that want single-cone
        batches.  Returns ``(batches, fallback)`` where each batch is
        ``(input_index, positions)`` and ``fallback`` lists positions of
        plans with overlapping sites, which must be replayed hook-based one
        at a time.  Grouping is deterministic (first-seen order) and does
        not reorder trial identities — every position keeps its global
        :func:`trial_rng` stream.
        """
        groups: Dict[Tuple[int, frozenset], List[int]] = {}
        fallback: List[int] = []
        for position, (input_index, plan) in enumerate(plans):
            sites = frozenset(plan.node_names())
            if self._sites_overlap(sites):
                fallback.append(position)
                continue
            groups.setdefault((input_index, sites), []).append(position)
        batches: List[Tuple[int, List[int]]] = []
        for (input_index, _), positions in groups.items():
            for start in range(0, len(positions), batch_trials):
                batches.append((input_index,
                                positions[start:start + batch_trials]))
        return batches, fallback

    # Per-node-set memo helpers: overlap verdicts and cones depend only on
    # the fault-node *set*, which repeats across thousands of trials.

    def _sites_overlap(self, sites: frozenset) -> bool:
        verdict = self._overlap_memo.get(sites)
        if verdict is None:
            verdict = self.injector.sites_overlap(sites)
            self._overlap_memo[sites] = verdict
        return verdict

    def _cone_in_needed(self, sites: frozenset) -> frozenset:
        """The union cone of ``sites`` restricted to nodes the output needs."""
        cone = self._cone_memo.get(sites)
        if cone is None:
            graph = self.model.graph
            if self._needed_nodes is None:
                self._needed_nodes = frozenset(
                    graph.ancestors([self.model.output_name]))
            cone = graph.downstream_union(sites) & self._needed_nodes
            self._cone_memo[sites] = cone
        return cone

    def pack_batches(self, plans: Sequence[Tuple[int, InjectionPlan]],
                     batch_trials: int,
                     union_cost_factor: Optional[float] = None,
                     ) -> Tuple[List[Tuple[int, List[int]]], List[int]]:
        """Pack trials into cross-site batches by cone-suffix affinity.

        The union-cone successor of :meth:`group_batches`: trials only need
        to share an *input* to stack (each row enters the replay at its own
        fault site), so the packer greedily fills batches to the full
        ``batch_trials`` width instead of stopping at identical-site
        groups.  Per input, trials are ordered by the topological index of
        their earliest fault site (sites adjacent in topological order have
        nested, suffix-like cones in feed-forward graphs — their union
        costs barely more than the largest member), with identical
        fault-node sets kept adjacent; a trial joins the current batch
        while the batch has room **and** the union cone stays within
        ``union_cost_factor`` times the largest member cone (both
        restricted to the output's ancestor set).  A trial whose cone
        would blow that budget — pathological unions of far-apart sites —
        closes the batch and starts a fresh one, which degenerates to
        per-site groups in the worst case.

        All per-node-set state (overlap verdicts, union cones) is memoized,
        so packing costs O(trials log trials) set-joins in the trial count.
        Returns ``(batches, fallback)`` in the same shape as
        :meth:`group_batches`; packing is deterministic and never reorders
        trial identities (every position keeps its :func:`trial_rng`
        stream).
        """
        if union_cost_factor is None:
            union_cost_factor = DEFAULT_UNION_COST_FACTOR
        topo = self.model.graph.topo_index()
        fallback: List[int] = []
        per_input: Dict[int, List[Tuple[int, tuple, int, frozenset]]] = {}
        for position, (input_index, plan) in enumerate(plans):
            sites = frozenset(plan.node_names())
            if self._sites_overlap(sites):
                fallback.append(position)
                continue
            entry = min(topo[name] for name in sites)
            per_input.setdefault(input_index, []).append(
                (entry, tuple(sorted(sites)), position, sites))

        batches: List[Tuple[int, List[int]]] = []
        for input_index in sorted(per_input):
            items = per_input[input_index]
            items.sort(key=lambda item: item[:3])
            positions: List[int] = []
            union: set = set()
            largest_member = 0
            for _, _, position, sites in items:
                cone = self._cone_in_needed(sites)
                if positions:
                    grown_union = len(union) + len(cone - union)
                    grown_member = max(largest_member, len(cone))
                    if (len(positions) >= batch_trials
                            or grown_union > union_cost_factor * grown_member):
                        batches.append((input_index, positions))
                        positions, union, largest_member = [], set(), 0
                positions.append(position)
                union |= cone
                largest_member = max(largest_member, len(cone))
            if positions:
                batches.append((input_index, positions))
        return batches, fallback

    def _union_overhead(self, positions: Sequence[int],
                        plans: Sequence[Tuple[int, InjectionPlan]]) -> int:
        """Extra needed-cone nodes a batch's union walks beyond its largest
        member's cone — the static price of packing different sites
        together (0 for identical-site and perfectly nested batches).

        Computed against *this* campaign's graph, so a packing reused from
        a sibling campaign (the paired protected side) is priced against
        the graph that actually replays it.
        """
        cones = {self._cone_in_needed(frozenset(plans[p][1].node_names()))
                 for p in positions}
        if len(cones) <= 1:
            return 0
        union: set = set()
        for cone in cones:
            union |= cone
        return len(union) - max(len(cone) for cone in cones)

    def _run_batched(self, plans: List[Tuple[int, InjectionPlan]],
                     batch_trials: int, keep_faults: bool, trial_offset: int,
                     mode: EquivalenceMode, max_ulps: float,
                     packing: Optional[Tuple[List[Tuple[int, List[int]]],
                                             List[int]]] = None,
                     sparse_delta: bool = True,
                     ) -> CampaignResult:
        """Serial batched backend: replay packed trials in stacked passes.

        ``packing`` optionally supplies pre-computed ``(batches, fallback)``
        groups (the shape :meth:`pack_batches` / :meth:`group_batches`
        return); paired comparisons pass the unprotected side's packing to
        the protected side so both replay bit-aligned groups without
        packing twice.
        """
        sdc_counts = {criterion.name: 0 for criterion in self.criteria}
        fault_log: List[Optional[List[FaultSpec]]] = [None] * len(plans)
        full_cost = len(self.model.graph.ancestors([self.model.output_name]))
        nodes_recomputed = 0
        nodes_full = len(plans) * full_cost
        max_deviation = 0.0
        batched_trials = 0
        union_overhead = 0
        elements_evaluated = 0
        elements_full = 0
        dense_fallbacks = 0

        batches, fallback = (packing if packing is not None
                             else self.pack_batches(plans, batch_trials))
        for input_index, positions in batches:
            cache = self._golden_cache(input_index)
            golden = self._golden[input_index]
            batch_plans = [plans[position][1] for position in positions]
            rngs = [trial_rng(self.seed, trial_offset + position)
                    for position in positions]
            stacked, faults, result = self.injector.inject_cached_batch(
                self._executor, cache, batch_plans, rngs,
                equivalence=mode, max_ulps=max_ulps,
                validate_overlap=False,  # the packer already screened
                sparse_delta=sparse_delta)
            nodes_recomputed += result.rows_evaluated
            max_deviation = max(max_deviation, result.max_ulp_deviation)
            elements_evaluated += result.elements_evaluated
            elements_full += result.elements_full
            dense_fallbacks += result.dense_fallback_nodes
            batched_trials += len(positions)
            union_overhead += self._union_overhead(positions, plans)
            for criterion in self.criteria:
                verdicts = criterion.is_sdc_rows(golden, stacked)
                sdc_counts[criterion.name] += int(np.count_nonzero(verdicts))
            if keep_faults:
                for position, trial_faults in zip(positions, faults):
                    fault_log[position] = trial_faults
        for position in fallback:
            input_index, plan = plans[position]
            rng = trial_rng(self.seed, trial_offset + position)
            cache = self._golden_cache(input_index)
            faulty, faults, result = self.injector.inject_cached(
                self._executor, cache, plan, rng=rng,
                sparse_delta=sparse_delta)
            nodes_recomputed += len(result.recomputed or ())
            elements_evaluated += result.elements_evaluated
            elements_full += result.elements_full
            dense_fallbacks += result.dense_fallback_nodes
            for criterion in self.criteria:
                if criterion.is_sdc(self._golden[input_index], faulty):
                    sdc_counts[criterion.name] += 1
            if keep_faults:
                fault_log[position] = faults

        return CampaignResult(model_name=self.model.name,
                              fault_model=self.fault_model.describe(),
                              trials=len(plans), sdc_counts=sdc_counts,
                              faults=(list(fault_log) if keep_faults else []),
                              nodes_recomputed=nodes_recomputed,
                              nodes_full=nodes_full,
                              equivalence=mode.value,
                              max_ulp_deviation=max_deviation,
                              batch_count=len(batches),
                              batched_trials=batched_trials,
                              union_overhead_nodes=union_overhead,
                              elements_evaluated=elements_evaluated,
                              elements_full=elements_full,
                              dense_fallback_nodes=dense_fallbacks)

    def ship_golden_caches(self, spec: "CampaignSpec",
                           plans: Sequence[Tuple[int, InjectionPlan]],
                           cache_budget_bytes: int) -> bool:
        """Attach this campaign's golden caches to ``spec`` when they fit.

        Builds the caches of every input the plans reference and ships them
        inside the spec when their total payload stays within
        ``cache_budget_bytes``, so workers skip the per-process golden
        rebuild.  Above the budget the spec ships without caches and
        workers rebuild lazily as before.  Returns whether the caches were
        attached.

        Per-input cache sizes are identical (same graph, same shapes), so
        any already-built cache prices the whole payload without building
        the rest — an over-budget campaign is rejected after at most one
        parent-side cache build (which stays in ``_golden_caches`` for any
        later in-process run), never after building all of them.
        """
        if cache_budget_bytes <= 0:
            return False
        needed = sorted({input_index for input_index, _ in plans})
        if not needed:
            return False
        probe = next(iter(self._golden_caches.values()), None)
        if probe is None:
            probe = self._golden_cache(needed[0])
        per_input = sum(np.asarray(value).nbytes for value in probe.values())
        if per_input * len(needed) > cache_budget_bytes:
            return False
        spec.golden_caches = {input_index: self._golden_cache(input_index)
                              for input_index in needed}
        return True

    def _run_parallel(self, plans: List[Tuple[int, InjectionPlan]],
                      workers: int, keep_faults: bool, incremental: bool,
                      trial_offset: int, batch_trials: int = 1,
                      equivalence: Optional[EquivalenceMode] = None,
                      max_ulps: float = DEFAULT_MAX_ULPS,
                      cache_budget_bytes: int = DEFAULT_CACHE_BUDGET_BYTES,
                      sparse_delta: bool = True,
                      ) -> CampaignResult:
        """Fan ``plans`` out across ``workers`` processes and merge the shards.

        Plans travel as plain-tuple payloads (see
        :meth:`InjectionPlan.to_payload`) next to a pickled
        :class:`CampaignSpec`; each worker rebuilds the model and executor,
        and either reuses the parent's golden activation caches (shipped
        with the spec when they fit ``cache_budget_bytes``) or rebuilds its
        own, so no process shares mutable state.  Shard results come back
        in trial order and are merged with :meth:`CampaignResult.merge`.

        When the shared-memory cache plane is available (see
        :mod:`repro.parallel.shm`) the spec's large arrays — weights,
        inputs, golden caches — are published **once** into shared
        segments and workers map them as read-only zero-copy views; only
        a few-KiB skeleton pickle travels per shard, and the golden-cache
        shipping budget is lifted to :data:`PLANE_CACHE_BUDGET_BYTES`.
        ``REPRO_DISABLE_SHM=1`` (or any plane failure) falls back to the
        legacy pickle path, bit-identically.
        """
        shards = shard_plans(plans, workers)
        spec = self.spec()
        plane = shared_plane()
        shipped = False
        if incremental:
            budget = (max(cache_budget_bytes, PLANE_CACHE_BUDGET_BYTES)
                      if plane is not None else cache_budget_bytes)
            shipped = self.ship_golden_caches(spec, plans, budget)
        encoded = None
        if plane is not None:
            encoded = encode_campaign_spec(plane, spec,
                                           self.spec_fingerprint())
            if encoded is None and shipped:
                # The plane fell back *after* the lifted-budget ship:
                # re-check the caches against the pickle budget so the
                # fallback never ships a payload the legacy path would
                # have refused.
                caches = spec.golden_caches or {}
                nbytes = sum(np.asarray(value).nbytes
                             for cache in caches.values()
                             for value in cache.values())
                if nbytes > cache_budget_bytes:
                    spec.golden_caches = None
        payloads = [(offset, [(index, plan.to_payload())
                              for index, plan in chunk])
                    for offset, chunk in shards]
        mode_value = equivalence.value if equivalence is not None else None
        # fork (where available) keeps worker start-up cheap; the payload
        # still travels through the pool's task queue, so the worker
        # protocol is identical under spawn (REPRO_START_METHOD forces
        # a specific start method for the CI smoke matrix).
        context = campaign_mp_context()
        try:
            with ProcessPoolExecutor(max_workers=len(payloads),
                                     mp_context=context) as pool:
                if encoded is not None:
                    futures = [pool.submit(_run_campaign_shard_shm,
                                           encoded.payload, chunk,
                                           trial_offset + offset,
                                           keep_faults, incremental,
                                           batch_trials, mode_value,
                                           max_ulps, sparse_delta)
                               for offset, chunk in payloads]
                else:
                    futures = [pool.submit(_run_campaign_shard, spec, chunk,
                                           trial_offset + offset, keep_faults,
                                           incremental, batch_trials,
                                           mode_value, max_ulps, sparse_delta)
                               for offset, chunk in payloads]
                partials = [future.result() for future in futures]
        finally:
            if encoded is not None:
                encoded.release()
        return CampaignResult.merge(partials)


@dataclass
class CampaignSpec:
    """Everything a worker process needs to rebuild a campaign.

    The spec is deliberately limited to picklable leaf state — the model
    (graph + weights), the evaluation inputs, the fault model, the criterion
    list, the dtype policy and the seed.  ``build()`` reruns the campaign
    constructor, which re-profiles the injectable state space and recomputes
    the golden outputs, so a rebuilt campaign is indistinguishable from the
    original (both are pure functions of this state).

    ``golden_caches`` optionally carries the parent's per-input golden
    activation caches (see
    :meth:`FaultInjectionCampaign.ship_golden_caches`): the caches are pure
    functions of the same state, so pre-seeding them in ``build()`` changes
    nothing about the rebuilt campaign's results — it only skips the
    worker's most expensive fixed cost.
    """

    model: Model
    inputs: np.ndarray
    fault_model: FaultModel
    criteria: List[SDCCriterion]
    dtype_policy: Optional[DTypePolicy]
    seed: int
    golden_caches: Optional[Dict[int, Dict[str, np.ndarray]]] = None

    def build(self) -> FaultInjectionCampaign:
        campaign = FaultInjectionCampaign(self.model, self.inputs,
                                          fault_model=self.fault_model,
                                          criteria=self.criteria,
                                          dtype_policy=self.dtype_policy,
                                          seed=self.seed)
        if self.golden_caches:
            campaign._golden_caches.update(
                {int(index): dict(cache)
                 for index, cache in self.golden_caches.items()})
        return campaign


def _run_campaign_shard(spec: CampaignSpec,
                        payload: Sequence[Tuple[int, Sequence[Tuple[str, int]]]],
                        trial_offset: int, keep_faults: bool,
                        incremental: bool, batch_trials: int = 1,
                        equivalence: Optional[str] = None,
                        max_ulps: float = DEFAULT_MAX_ULPS,
                        sparse_delta: bool = True) -> CampaignResult:
    """Worker entry point: rebuild the campaign and run one shard of trials.

    Module-level (not a closure) so it pickles under every multiprocessing
    start method.  ``trial_offset`` anchors the shard's per-trial RNG
    streams at the trials' global indices; ``equivalence`` travels as the
    mode's string value to keep the payload plain.
    """
    campaign = spec.build()
    plans = [(input_index, InjectionPlan.from_payload(sites))
             for input_index, sites in payload]
    return campaign.run(plans=plans, keep_faults=keep_faults,
                        incremental=incremental, trial_offset=trial_offset,
                        batch_trials=batch_trials, equivalence=equivalence,
                        max_ulps=max_ulps, sparse_delta=sparse_delta)


def encode_campaign_spec(plane, spec: CampaignSpec,
                         fingerprint: str):
    """Publish ``spec``'s big arrays through the cache plane.

    Routes the evaluation inputs to a content-keyed segment (shared by
    the two arms of a paired comparison), the golden caches to a
    ``golden:<fingerprint>:<shipped indices>`` segment, and everything
    else (weights, criteria state) to ``body:<fingerprint>``.  Returns
    the :class:`~repro.parallel.shm.EncodedObject` — whose ``payload``
    is the per-task skeleton pickle — or ``None`` when the plane
    declined (caller takes the pickle path).
    """
    golden_ids: frozenset = frozenset()
    golden_key = None
    if spec.golden_caches:
        golden_ids = frozenset(
            id(value) for cache in spec.golden_caches.values()
            for value in cache.values())
        subset = hashlib.sha1(
            repr(sorted(spec.golden_caches)).encode()).hexdigest()[:12]
        golden_key = f"golden:{fingerprint}:{subset}"
    inputs_array = None
    inputs_key = None
    if (type(spec.inputs) is np.ndarray and spec.inputs.flags.c_contiguous
            and not spec.inputs.dtype.hasobject):
        inputs_array = spec.inputs
        inputs_key = f"inputs:{array_content_key(spec.inputs)}"
    return plane.encode(spec, body_key=f"body:{fingerprint}",
                        inputs_array=inputs_array, inputs_key=inputs_key,
                        golden_ids=golden_ids, golden_key=golden_key)


def _run_campaign_shard_shm(payload,
                            plan_payload: Sequence[Tuple[int, Sequence]],
                            trial_offset: int, keep_faults: bool,
                            incremental: bool, batch_trials: int = 1,
                            equivalence: Optional[str] = None,
                            max_ulps: float = DEFAULT_MAX_ULPS,
                            sparse_delta: bool = True) -> CampaignResult:
    """Worker entry point for plane-encoded specs.

    Maps the referenced shared segments (attach-only: the parent owns
    every unlink), rebuilds the spec around read-only zero-copy views
    and runs the shard exactly like :func:`_run_campaign_shard`.
    """
    from ..parallel import shm as shm_mod

    spec, _ = shm_mod.decode(payload)
    return _run_campaign_shard(spec, plan_payload, trial_offset, keep_faults,
                               incremental, batch_trials, equivalence,
                               max_ulps, sparse_delta)


def _run_adaptive_group(campaigns: Sequence[FaultInjectionCampaign], *,
                        trials: int,
                        plans: Optional[List[Tuple[int, InjectionPlan]]],
                        wave_trials: Optional[int],
                        target_half_width: Optional[float],
                        strata: Optional[Stratification],
                        z: float, interval_method: str,
                        keep_faults: bool, incremental: bool, workers: int,
                        batch_trials: int, mode: EquivalenceMode,
                        max_ulps: float, cache_budget_bytes: int,
                        pool: Optional["CampaignPool"],
                        sparse_delta: bool,
                        joint_stop: bool = True,
                        on_wave: Optional[Callable[[List[CampaignResult]],
                                                   None]] = None,
                        ) -> List[CampaignResult]:
    """Drive one or more same-seed campaigns through adaptive waves.

    The sequential-stopping / stratified-allocation engine behind
    ``run(target_half_width=..., strata=...)`` and the adaptive
    :func:`compare_protection`.  ``campaigns[0]`` is the *leader*: it
    samples every plan (and packs every batched chunk) exactly once, and
    each wave's chunks are dispatched to **every** campaign with the same
    global ``trial_offset`` — so a paired group replays identical faults
    with identical per-trial RNG streams.

    With ``joint_stop=True`` (the default) the whole group stops together
    on the first wave at which *all* campaigns meet the target — the
    slower-converging arm sets the common stop point, which preserves the
    paired-difference structure of :func:`compare_protection`.  With
    ``joint_stop=False`` each campaign stops **independently** as soon as
    its own criteria fit the target: a cell that converges early stops
    receiving waves while the others continue on the shared plan list.
    Either way every campaign's result is exactly a prefix of its own
    fixed-budget run — stopping policy changes how many waves a campaign
    receives, never what any trial computes.

    Without ``strata``, plans are pre-sampled for the full budget up
    front and waves are consecutive slices, which is what makes a stopped
    campaign bit-identical to the same-length prefix of the fixed-budget
    run.  With ``strata``, each stratum draws plans from its own
    :func:`~repro.injection.sampling.stratum_rng` stream as its
    allocation grows (the first wave is uniform across strata, later
    waves Neyman-allocated toward uncertain strata), chunk results are
    tagged with per-stratum counters, and the merged results report
    unbiased Horvitz–Thompson rates.  Stratified groups must stop
    jointly: a wave's Neyman allocation pools every campaign's stratum
    statistics, so a campaign that went idle would still shape the plans
    the others draw and break their fixed-budget prefix property.

    ``on_wave`` (when given) receives the list of merged-so-far results —
    one per campaign, aligned with ``campaigns`` — after every wave.
    """
    leader = campaigns[0]
    if target_half_width is not None and not 0.0 < target_half_width < 1.0:
        raise ValueError(
            f"target_half_width must be in (0, 1), got {target_half_width}")
    if strata is not None and plans is not None:
        raise ValueError(
            "stratified campaigns sample their own per-stratum plans; "
            "pass trials (the budget) instead of explicit plans")
    if strata is not None and not joint_stop:
        raise ValueError(
            "stratified groups stop jointly: the Neyman allocation pools "
            "every campaign's stratum statistics, so independent stopping "
            "would let an idle campaign perturb the plans the others draw")
    budget = len(plans) if plans is not None else trials
    if budget <= 0:
        raise ValueError("adaptive campaigns need a positive trial budget")
    if wave_trials is not None and wave_trials < 1:
        raise ValueError(f"wave_trials must be positive, got {wave_trials}")
    wave = (wave_trials if wave_trials is not None
            else max(1, math.ceil(budget * DEFAULT_WAVE_FRACTION)))

    partials: List[List[CampaignResult]] = [[] for _ in campaigns]
    merged: List[Optional[CampaignResult]] = [None] * len(campaigns)

    def dispatch(index: int, chunk, offset: int, packing) -> CampaignResult:
        partial = campaigns[index]._dispatch(
            chunk, keep_faults=keep_faults, incremental=incremental,
            workers=workers, trial_offset=offset, batch_trials=batch_trials,
            mode=mode, max_ulps=max_ulps,
            cache_budget_bytes=cache_budget_bytes, packing=packing,
            pool=pool, sparse_delta=sparse_delta)
        partial.interval_method = interval_method
        return partial

    def pack(chunk):
        # Same policy as fixed-budget runs: the leader packs once per
        # (serial, batched) chunk and every campaign replays the same
        # groups; parallel/pool backends pack their own shards.
        if batch_trials > 1 and workers == 1 and pool is None:
            return leader.pack_batches(chunk, batch_trials)
        return None

    def meets_target(result: Optional[CampaignResult]) -> bool:
        if target_half_width is None or result is None:
            return False
        return all(result.half_width(criterion, z=z) <= target_half_width
                   for criterion in result.criteria)

    def target_reached() -> bool:
        if target_half_width is None:
            return False
        return all(meets_target(result) for result in merged)

    waves_run = 0
    waves_by = [0] * len(campaigns)
    active = [True] * len(campaigns)
    done = 0
    if strata is None:
        if plans is None:
            plans = leader.generate_plans(budget)
        while done < budget:
            if joint_stop:
                if target_reached():
                    break
            else:
                for index in range(len(campaigns)):
                    if active[index] and meets_target(merged[index]):
                        active[index] = False
                if not any(active):
                    break
            chunk = list(plans[done:done + min(wave, budget - done)])
            packing = pack(chunk)
            for index in range(len(campaigns)):
                if not active[index]:
                    continue
                partials[index].append(dispatch(index, chunk, done, packing))
                merged[index] = CampaignResult.merge(partials[index])
                waves_by[index] += 1
            done += len(chunk)
            waves_run += 1
            if on_wave is not None:
                on_wave(list(merged))
    else:
        space = StratumSpace(leader.injector._site_sizes,
                             leader.fault_model, strata)
        wave = max(wave, len(space))
        streams = {key: stratum_rng(leader.seed, index)
                   for index, key in enumerate(space.keys)}
        stratum_trials: Dict[StratumKey, int] = {key: 0 for key in space.keys}
        stratum_successes = [
            {criterion.name: {key: 0 for key in space.keys}
             for criterion in campaign.criteria}
            for campaign in campaigns]
        while done < budget and not target_reached():
            wave_budget = min(wave, budget - done)
            if waves_run == 0:
                allocation = uniform_allocation(space, wave_budget)
            else:
                stats = {key: [(per_criterion[key], stratum_trials[key])
                               for successes in stratum_successes
                               for per_criterion in successes.values()]
                         for key in space.keys}
                allocation = neyman_allocation(space, wave_budget, stats)
            for key in space.keys:
                count = allocation.get(key, 0)
                if count == 0:
                    continue
                stream = streams[key]
                input_indices = stream.integers(len(leader.inputs),
                                                size=count)
                stratum_plans = space.sample_stratum_plans(
                    leader.injector, key, count, stream)
                chunk = [(int(input_index), plan) for input_index, plan
                         in zip(input_indices, stratum_plans)]
                packing = pack(chunk)
                for index in range(len(campaigns)):
                    partial = dispatch(index, chunk, done, packing)
                    partial.stratum_weights = dict(space.weights)
                    partial.stratum_trials = {key: partial.trials}
                    partial.stratum_sdc_counts = {
                        name: {key: count_} for name, count_
                        in partial.sdc_counts.items()}
                    for name, count_ in partial.sdc_counts.items():
                        stratum_successes[index][name][key] += count_
                    partials[index].append(partial)
                stratum_trials[key] += count
                done += count
            for index in range(len(campaigns)):
                merged[index] = CampaignResult.merge(partials[index])
                waves_by[index] += 1
            waves_run += 1
            if on_wave is not None:
                on_wave(list(merged))

    results: List[CampaignResult] = []
    for index, result in enumerate(merged):
        assert result is not None  # budget > 0 ⇒ at least one wave ran
        result.trials_budget = budget
        result.waves = waves_by[index]
        result.target_half_width = target_half_width
        results.append(result)
    return results


def compare_protection(unprotected: Model, protected: Model,
                       inputs: np.ndarray,
                       fault_model: Optional[FaultModel] = None,
                       criteria: Optional[Sequence[SDCCriterion]] = None,
                       dtype_policy: Optional[DTypePolicy] = None,
                       trials: int = 100, seed: int = 0,
                       incremental: bool = True,
                       workers: int = 1,
                       batch_trials: int = 1,
                       equivalence=None,
                       pool: Optional["CampaignPool"] = None,
                       sparse_delta: bool = True,
                       target_half_width: Optional[float] = None,
                       wave_trials: Optional[int] = None,
                       strata: Optional[Stratification] = None,
                       z: float = 1.96,
                       interval_method: str = DEFAULT_INTERVAL_METHOD,
                       joint_stop: bool = True,
                       on_wave: Optional[Callable[[List[CampaignResult]],
                                                  None]] = None,
                       ) -> Tuple[CampaignResult, CampaignResult]:
    """Run paired campaigns on an unprotected model and a protected variant.

    The same fault plans (same input, same node, same element, same bit
    sequence) are replayed on both graphs — possible because protection
    transforms keep the original node names — so any difference in SDC rate
    is attributable to the protection.  Both campaigns are built from the
    same ``seed``, and each trial's corruption bits come from the per-trial
    stream :func:`trial_rng` derives from that seed, so the comparison stays
    bit-paired no matter how either campaign is sharded across ``workers``.

    With ``batch_trials > 1`` **both** sides replay batched: the packer
    groups are computed once on the unprotected side and reused by the
    protected side (protection transforms keep original node names, so the
    groups are valid on both graphs), which keeps the paired batches
    bit-aligned and halves the packing work.  ``pool`` fans both campaigns
    out over one persistent worker pool (see
    :class:`~repro.injection.pool.CampaignPool`).

    ``target_half_width`` / ``wave_trials`` / ``strata`` run the pair
    **adaptively** (see :meth:`FaultInjectionCampaign.run`) while keeping
    it paired: both arms replay the same wave chunks and, by default, stop
    together on the first wave at which *both* have met the target on
    every criterion — i.e. on the max of the arms' individually-required
    waves — so the paired-difference structure survives early stopping.
    ``joint_stop=False`` lets each arm stop **independently** once its own
    criteria fit the target (the protected arm's near-zero rates typically
    converge waves earlier than the unprotected arm's): each arm is still
    a bit-exact prefix of its own fixed-budget run, but the arms may now
    cover different trial prefixes, so the comparison is only paired over
    the shorter prefix — the trade sweep grids make to stop each
    (model × dtype × protection) cell on its own schedule.

    ``on_wave`` receives the ``[unprotected, protected]`` merged-so-far
    snapshot pair after every adaptive wave (the hook the campaign service
    streams compare jobs through); like :meth:`FaultInjectionCampaign.run`
    it requires a waved run.
    """
    if on_wave is not None and (target_half_width is None and strata is None
                                and wave_trials is None):
        raise ValueError(
            "on_wave snapshots require a waved run; set wave_trials "
            "(or target_half_width) so there are waves to snapshot")
    base = FaultInjectionCampaign(unprotected, inputs, fault_model=fault_model,
                                  criteria=criteria, dtype_policy=dtype_policy,
                                  seed=seed)
    guarded = FaultInjectionCampaign(protected, inputs, fault_model=fault_model,
                                     criteria=criteria,
                                     dtype_policy=dtype_policy, seed=seed)
    # One plane scope over both arms: the content-keyed segments the arms
    # share (notably the evaluation-inputs bundle — both campaigns hold
    # the same `inputs` array) are published once by the first arm and
    # stay pinned until the second arm is done, instead of being unlinked
    # and republished between the runs.
    with plane_scope():
        if (target_half_width is not None or strata is not None
                or wave_trials is not None):
            mode = EquivalenceMode.coerce(
                equivalence, EquivalenceMode.EXACT if batch_trials == 1
                else EquivalenceMode.ULP_TOLERANT)
            results = _run_adaptive_group(
                [base, guarded], trials=trials, plans=None,
                wave_trials=wave_trials, target_half_width=target_half_width,
                strata=strata, z=z, interval_method=interval_method,
                keep_faults=False, incremental=incremental, workers=workers,
                batch_trials=batch_trials, mode=mode,
                max_ulps=DEFAULT_MAX_ULPS,
                cache_budget_bytes=DEFAULT_CACHE_BUDGET_BYTES, pool=pool,
                sparse_delta=sparse_delta, joint_stop=joint_stop,
                on_wave=on_wave)
            return results[0], results[1]
        plans = base.generate_plans(trials)
        packing = None
        if batch_trials > 1 and workers == 1 and pool is None:
            packing = base.pack_batches(plans, batch_trials)
        return (base.run(plans=plans, incremental=incremental,
                         workers=workers, batch_trials=batch_trials,
                         equivalence=equivalence, packing=packing, pool=pool,
                         sparse_delta=sparse_delta,
                         interval_method=interval_method),
                guarded.run(plans=plans, incremental=incremental,
                            workers=workers, batch_trials=batch_trials,
                            equivalence=equivalence, packing=packing,
                            pool=pool, sparse_delta=sparse_delta,
                            interval_method=interval_method))
