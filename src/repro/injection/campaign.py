"""Fault-injection campaigns and SDC-rate statistics.

A campaign reproduces the paper's experimental procedure:

1. pick a set of inputs the model handles correctly in the fault-free case;
2. record the fault-free ("golden") output for each input;
3. for each trial, pick an input, sample a random fault site, run one faulty
   inference, and classify the outcome against every SDC criterion;
4. report the SDC rate per criterion with a 95% confidence interval.

The same sequence of faults can be replayed against a protected model (Ranger
or a baseline) so the with/without comparison is paired, which substantially
reduces the variance of the measured SDC-rate *difference* at laptop-scale
trial counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..graph import DTypePolicy, Executor
from ..models.base import Model
from .fault_models import FaultModel, FaultSpec, SingleBitFlip
from .injector import FaultInjector, InjectionPlan
from .sdc import SDCCriterion, criteria_for_model


@dataclass
class CampaignResult:
    """Aggregated results of one fault-injection campaign."""

    model_name: str
    fault_model: str
    trials: int
    sdc_counts: Dict[str, int]
    detected_count: int = 0
    faults: List[List[FaultSpec]] = field(default_factory=list)
    #: Incremental-execution statistics: how many node evaluations the
    #: campaign actually performed vs. what full re-execution would have
    #: performed.  Both stay 0 when the campaign ran in full mode.
    nodes_recomputed: int = 0
    nodes_full: int = 0

    @property
    def recompute_fraction(self) -> Optional[float]:
        """Fraction of node evaluations partial re-execution paid for."""
        if self.nodes_full == 0:
            return None
        return self.nodes_recomputed / self.nodes_full

    def sdc_rate(self, criterion: str) -> float:
        """SDC rate (fraction in [0, 1]) for one criterion."""
        if self.trials == 0:
            return 0.0
        return self.sdc_counts[criterion] / self.trials

    def sdc_rate_percent(self, criterion: str) -> float:
        return 100.0 * self.sdc_rate(criterion)

    def confidence_interval(self, criterion: str,
                            z: float = 1.96) -> Tuple[float, float]:
        """95% normal-approximation confidence interval on the SDC rate."""
        p = self.sdc_rate(criterion)
        if self.trials == 0:
            return 0.0, 0.0
        half = z * np.sqrt(max(p * (1.0 - p), 1e-12) / self.trials)
        return max(0.0, p - half), min(1.0, p + half)

    def error_bar_percent(self, criterion: str, z: float = 1.96) -> float:
        low, high = self.confidence_interval(criterion, z)
        return 100.0 * (high - low) / 2.0

    @property
    def criteria(self) -> List[str]:
        return list(self.sdc_counts.keys())

    def summary(self) -> str:
        lines = [f"{self.model_name} [{self.fault_model}] — {self.trials} trials"]
        for criterion in self.criteria:
            lines.append(
                f"  {criterion:20s} SDC rate = "
                f"{self.sdc_rate_percent(criterion):6.2f}% "
                f"(± {self.error_bar_percent(criterion):.2f}%)")
        return "\n".join(lines)


class FaultInjectionCampaign:
    """Runs a fault-injection campaign against one model.

    Parameters
    ----------
    model:
        The model under test.
    inputs:
        Array of evaluation inputs (the paper uses inputs the model predicts
        correctly in the fault-free case; see
        ``PreparedModel.correctly_predicted_inputs``).
    fault_model:
        The fault model to apply (defaults to a 32-bit fixed-point single bit
        flip).
    criteria:
        SDC criteria; defaults to the model-appropriate set.
    dtype_policy:
        Optional executor dtype policy (e.g. a fixed-point policy).
    """

    def __init__(self, model: Model, inputs: np.ndarray,
                 fault_model: Optional[FaultModel] = None,
                 criteria: Optional[Sequence[SDCCriterion]] = None,
                 dtype_policy: Optional[DTypePolicy] = None,
                 seed: int = 0) -> None:
        if len(inputs) == 0:
            raise ValueError("campaign requires at least one evaluation input")
        self.model = model
        self.inputs = np.asarray(inputs)
        self.fault_model = fault_model or SingleBitFlip()
        self.criteria = list(criteria if criteria is not None
                             else criteria_for_model(model))
        if not self.criteria:
            raise ValueError("campaign requires at least one SDC criterion")
        self.dtype_policy = dtype_policy
        self.seed = seed
        self.injector = FaultInjector(model, self.fault_model, seed=seed)
        self._executor = model.executor(dtype_policy)
        self.injector.profile_state_space(self.inputs[:1], self._executor)
        self._golden = self._compute_golden_outputs()
        #: Per-input golden activation caches for partial re-execution,
        #: built lazily the first time a trial uses an input.
        self._golden_caches: Dict[int, Dict[str, np.ndarray]] = {}

    # -- setup ------------------------------------------------------------------

    def _compute_golden_outputs(self) -> List[np.ndarray]:
        """Golden (fault-free) output per input, in one batched forward pass.

        Batched rows can differ from batch-1 runs in the last ulp (BLAS
        blocking), so these goldens are for *SDC classification only* —
        argmax / threshold comparisons, which a last-ulp difference cannot
        realistically flip.  Both the incremental and the full campaign
        paths compare faulty outputs against these same values, so the
        paths remain exactly equivalent to each other; bit-exact golden
        activations (for partial re-execution) come from the batch-1
        caches built by :meth:`_golden_cache`.
        """
        result = self._executor.run({self.model.input_name: self.inputs},
                                    outputs=[self.model.output_name])
        output = result.output(self.model.output_name)
        return [output[i:i + 1] for i in range(len(self.inputs))]

    def _golden_cache(self, input_index: int) -> Dict[str, np.ndarray]:
        """The full activation cache of input ``input_index``, built once.

        Caches are built at batch size 1 — the batch size every trial runs
        at — rather than sliced out of one batched pass: BLAS kernels pick
        different blocking for different batch shapes, so batched rows can
        differ from single-example runs in the last ulp, which would break
        the bit-identical guarantee of partial re-execution.
        """
        cache = self._golden_caches.get(input_index)
        if cache is None:
            batch = self.inputs[input_index:input_index + 1]
            result = self._executor.run({self.model.input_name: batch},
                                        outputs=[self.model.output_name])
            cache = result.values
            self._golden_caches[input_index] = cache
        return cache

    # -- plan generation -----------------------------------------------------------

    def generate_plans(self, trials: int
                       ) -> List[Tuple[int, InjectionPlan]]:
        """Pre-sample (input index, injection plan) pairs for ``trials`` runs.

        Sharing the returned list between the unprotected and protected
        campaigns makes the comparison paired.  Input indices and fault
        sites are each drawn in a single vectorized call.
        """
        rng = np.random.default_rng(self.seed + 1)
        input_indices = rng.integers(len(self.inputs), size=trials)
        plans = self.injector.sample_plans(trials)
        return [(int(index), plan)
                for index, plan in zip(input_indices, plans)]

    # -- execution -----------------------------------------------------------------

    def run(self, trials: int = 100,
            plans: Optional[List[Tuple[int, InjectionPlan]]] = None,
            keep_faults: bool = False,
            incremental: bool = True) -> CampaignResult:
        """Run the campaign and return aggregated SDC statistics.

        Parameters
        ----------
        incremental:
            When True (default), each input's golden activation cache is
            built once and every trial is replayed by partial re-execution
            of the fault's downstream cone (bit-identical to a full faulty
            run).  When False, every trial re-executes the whole graph —
            the legacy path, kept for equivalence testing and benchmarking.
        """
        if trials <= 0 and plans is None:
            raise ValueError("trials must be positive")
        if plans is None:
            plans = self.generate_plans(trials)
        sdc_counts = {criterion.name: 0 for criterion in self.criteria}
        fault_log: List[List[FaultSpec]] = []
        # Per-trial cost of the full path: the ancestor-pruned subgraph it
        # actually evaluates, not the whole graph.
        full_cost = len(self.model.graph.ancestors([self.model.output_name]))
        nodes_recomputed = 0
        nodes_full = 0

        for input_index, plan in plans:
            golden = self._golden[input_index]
            if incremental:
                cache = self._golden_cache(input_index)
                faulty, faults, result = self.injector.inject_cached(
                    self._executor, cache, plan)
                nodes_recomputed += len(result.recomputed or ())
                nodes_full += full_cost
            else:
                batch = self.inputs[input_index:input_index + 1]
                faulty, faults = self.injector.inject(self._executor, batch,
                                                      plan)
            for criterion in self.criteria:
                if criterion.is_sdc(golden, faulty):
                    sdc_counts[criterion.name] += 1
            if keep_faults:
                fault_log.append(faults)

        return CampaignResult(model_name=self.model.name,
                              fault_model=self.fault_model.describe(),
                              trials=len(plans), sdc_counts=sdc_counts,
                              faults=fault_log,
                              nodes_recomputed=nodes_recomputed,
                              nodes_full=nodes_full)


def compare_protection(unprotected: Model, protected: Model,
                       inputs: np.ndarray,
                       fault_model: Optional[FaultModel] = None,
                       criteria: Optional[Sequence[SDCCriterion]] = None,
                       dtype_policy: Optional[DTypePolicy] = None,
                       trials: int = 100, seed: int = 0,
                       incremental: bool = True
                       ) -> Tuple[CampaignResult, CampaignResult]:
    """Run paired campaigns on an unprotected model and a protected variant.

    The same fault plans (same input, same node, same element, same bit
    sequence) are replayed on both graphs — possible because protection
    transforms keep the original node names — so any difference in SDC rate
    is attributable to the protection.
    """
    base = FaultInjectionCampaign(unprotected, inputs, fault_model=fault_model,
                                  criteria=criteria, dtype_policy=dtype_policy,
                                  seed=seed)
    guarded = FaultInjectionCampaign(protected, inputs, fault_model=fault_model,
                                     criteria=criteria,
                                     dtype_policy=dtype_policy, seed=seed)
    plans = base.generate_plans(trials)
    return (base.run(plans=plans, incremental=incremental),
            guarded.run(plans=plans, incremental=incremental))
