"""Shared-memory cache plane for multiprocess campaign fan-out."""

from .shm import (
    DISABLE_ENV,
    MIN_SHM_ARRAY_BYTES,
    SEGMENT_PREFIX,
    START_METHOD_ENV,
    EncodedObject,
    PlaneScope,
    SharedCachePlane,
    array_content_key,
    campaign_mp_context,
    decode,
    is_shm_payload,
    map_segment,
    plane_scope,
    reset_plane_for_tests,
    shared_plane,
    shm_disabled_by_env,
)

__all__ = [
    "DISABLE_ENV",
    "MIN_SHM_ARRAY_BYTES",
    "SEGMENT_PREFIX",
    "START_METHOD_ENV",
    "EncodedObject",
    "PlaneScope",
    "SharedCachePlane",
    "array_content_key",
    "campaign_mp_context",
    "decode",
    "is_shm_payload",
    "map_segment",
    "plane_scope",
    "reset_plane_for_tests",
    "shared_plane",
    "shm_disabled_by_env",
]
