"""Zero-copy shared-memory cache plane for worker fan-out.

Every multiprocess campaign path used to pay ``workers x (pickle +
unpickle)`` to move the same golden activation caches, model weights and
input tensors into each worker process.  The :class:`SharedCachePlane`
publishes those arrays **once** into POSIX shared-memory segments
(:mod:`multiprocessing.shared_memory`) and replaces them inside the
pickled campaign spec with tiny segment references; workers map the
segments and reconstruct the arrays as **read-only zero-copy numpy
views**.  The per-task dispatch payload shrinks from the full model +
caches to a few kilobytes of skeleton pickle, and worker RSS stops
scaling with ``workers`` for the shared state (every process maps the
same physical pages).

Design invariants
-----------------

* **Bit-identity.**  A mapped view holds exactly the bytes of the array
  it replaced (same dtype, shape, C-order), so ``pickle.dumps`` of a
  rebuilt spec — and therefore every fingerprint and every campaign
  result — is unchanged.  The plane changes how bytes travel, never
  which bytes.
* **Read-only views.**  Worker-side views have ``writeable = False``;
  the replay engine's copy-on-entry discipline (it copies before any
  mutation of cached state) means nothing ever writes through a mapped
  golden segment, and an accidental write raises ``ValueError`` instead
  of corrupting a sibling worker.
* **Content-keyed, refcounted segments.**  One segment per content
  fingerprint: the spec body is keyed by the campaign's
  :func:`~repro.injection.pool.spec_fingerprint`, golden-cache bundles
  by ``(spec fingerprint, shipped input indices)``, and the evaluation
  inputs by a SHA-1 of their raw bytes — so the two arms of a paired
  :func:`~repro.injection.campaign.compare_protection` share one
  inputs segment.  Holders (a running ``run(workers=N)`` call, a
  :class:`~repro.injection.pool.CampaignPool`, an
  :class:`~repro.service.store.ArtifactStore` golden handle) pin
  segments; the last release unlinks.
* **No leaks.**  The creating process owns every unlink: segments are
  unlinked when their refcount drops to zero, on :meth:`close`, and at
  interpreter exit (``atexit``).  Workers only ever attach and never
  unlink, and a SIGKILLed worker leaves nothing behind (its mappings
  die with the process; the name is the parent's to remove).  The
  ``atexit`` hook is pid-guarded so fork-children (pool workers inherit
  the parent's plane object) cannot unlink segments the parent still
  uses.
* **Graceful fallback.**  ``REPRO_DISABLE_SHM=1``, an unavailable
  ``/dev/shm``, or any segment-creation failure disables the plane and
  callers fall back to the legacy pickle path; non-contiguous,
  object-dtype or tiny arrays are simply left inline in the pickle.

Segment names are ``repro_shm_<pid>_<token>_<seq>`` — owning pid, a
random per-plane token (attached segments are cached by name for the
process lifetime, so names must never be reused across plane
instances), and a sequence number (see ``docs/service.md`` for the
name/key table).  The lifecycle tests scan ``/dev/shm`` for the prefix
to prove nothing leaked.
"""

from __future__ import annotations

import atexit
import hashlib
import io
import os
import pickle
import threading
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Environment knob: set to a non-empty value (other than ``0``) to force
#: every dispatch layer onto the legacy pickle path.
DISABLE_ENV = "REPRO_DISABLE_SHM"

#: Environment knob for the CI smoke matrix: force the multiprocessing
#: start method campaigns and pools use (``fork`` / ``spawn``).
START_METHOD_ENV = "REPRO_START_METHOD"

#: Arrays below this size stay inline in the pickle: a segment reference
#: plus mapping round-trip costs more than pickling a few KiB.
MIN_SHM_ARRAY_BYTES = 4096

#: Segment payload alignment (numpy views are happiest cache-aligned).
ALIGNMENT = 64

#: ``/dev/shm`` name prefix of every segment the plane creates; the
#: lifecycle tests scan for it to prove nothing leaked.
SEGMENT_PREFIX = "repro_shm_"

#: Picklable payloads produced by :meth:`SharedCachePlane.encode` are
#: tagged so worker entry points can tell them from legacy specs.
PAYLOAD_TAG = "shmspec-v1"


def shm_disabled_by_env() -> bool:
    """Whether ``REPRO_DISABLE_SHM`` asks for the pickle fallback."""
    value = os.environ.get(DISABLE_ENV, "")
    return bool(value) and value != "0"


def campaign_mp_context():
    """The multiprocessing context campaigns and pools fan out with.

    ``REPRO_START_METHOD`` (the CI smoke matrix knob) wins; otherwise
    fork where available — cheap worker start-up — with the platform
    default as the spawn-only fallback.
    """
    import multiprocessing

    forced = os.environ.get(START_METHOD_ENV, "")
    if forced:
        return multiprocessing.get_context(forced)
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()  # pragma: no cover - spawn-only hosts


def _sha1_bytes(view) -> str:
    digest = hashlib.sha1()
    digest.update(view)
    return digest.hexdigest()


def array_content_key(array: np.ndarray) -> str:
    """SHA-1 content key of one C-contiguous array's raw bytes + layout."""
    digest = hashlib.sha1()
    digest.update(str((array.dtype.str, array.shape)).encode())
    digest.update(array.reshape(-1).view(np.uint8).data)
    return digest.hexdigest()


def _publishable(obj: Any) -> bool:
    """Arrays worth externalizing: big, C-contiguous, plain-data ndarray.

    Everything else (small arrays, Fortran/strided views, object dtypes,
    ndarray subclasses) pickles inline — the per-array graceful fallback.
    """
    return (type(obj) is np.ndarray
            and obj.ndim >= 1
            and obj.nbytes >= MIN_SHM_ARRAY_BYTES
            and obj.flags.c_contiguous
            and not obj.dtype.hasobject)


@dataclass
class _Segment:
    """One parent-owned shared-memory segment (refcounted)."""

    key: str
    shm: shared_memory.SharedMemory
    manifest: List[Tuple[int, str, Tuple[int, ...]]]
    nbytes: int
    refcount: int = 0


@dataclass
class EncodedObject:
    """A plane-encoded picklable payload plus the segment pins backing it.

    ``payload`` is what travels to the worker (tiny); the holder must
    call :meth:`release` (idempotent) once no more tasks will be
    submitted with it, which drops one pin per backing segment.
    """

    payload: Tuple
    segment_keys: Tuple[str, ...]
    inline_bytes: int
    shared_bytes: int
    _plane: "SharedCachePlane" = field(repr=False, default=None)
    _released: bool = field(default=False, repr=False)

    def release(self) -> None:
        if self._released or self._plane is None:
            return
        self._released = True
        for key in self.segment_keys:
            self._plane.release(key)

    @property
    def payload_bytes(self) -> int:
        """Size of what is actually pickled per task (the skeleton)."""
        return self.inline_bytes


class _CollectingPickler(pickle.Pickler):
    """Pickler that swaps publishable arrays for persistent segment refs.

    ``route(obj)`` returns the bundle tag an array belongs to; arrays are
    deduplicated by object identity, so an array referenced twice in the
    spec costs one slot (and unpickles to one shared view, like pickle
    memoization would).
    """

    def __init__(self, file, route):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._route = route
        self.bundles: Dict[str, List[np.ndarray]] = {}
        self._slot_of: Dict[int, Tuple[str, int]] = {}

    def persistent_id(self, obj):
        if not _publishable(obj):
            return None
        slot = self._slot_of.get(id(obj))
        if slot is None:
            tag = self._route(obj)
            arrays = self.bundles.setdefault(tag, [])
            slot = (tag, len(arrays))
            arrays.append(obj)
            self._slot_of[id(obj)] = slot
        return ("shm", slot[0], slot[1])


class _ResolvingUnpickler(pickle.Unpickler):
    """Unpickler that resolves persistent segment refs to read-only views."""

    def __init__(self, file, views: Dict[str, List[np.ndarray]]):
        super().__init__(file)
        self._views = views

    def persistent_load(self, pid):
        kind, tag, slot = pid
        if kind != "shm":  # pragma: no cover - defensive
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        return self._views[tag][slot]


class SharedCachePlane:
    """Publishes arrays once into shared memory; workers map them read-only.

    One plane per parent process (see :func:`shared_plane`); thread-safe.
    ``available`` turns False permanently on the first environment
    failure (no ``/dev/shm``, exhausted shm quota), after which
    :meth:`encode` returns ``None`` and callers use the pickle path.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._segments: Dict[str, _Segment] = {}
        self._owner_pid = os.getpid()
        # Names must be unique across plane *instances*, not just within
        # one: forked workers (and the parent's own decode path) cache
        # attached segments by name for their process lifetime, so a new
        # plane reusing ``<pid>_<seq>`` names would resolve to stale
        # mappings of the old, unlinked segments.
        self._token = os.urandom(4).hex()
        self._seq = 0
        self._closed = False
        self._available: Optional[bool] = None
        self._scopes: List["PlaneScope"] = []
        # Segments whose close() failed with BufferError (live views still
        # reference the buffer): kept referenced so GC never runs their
        # __del__ mid-use; the memory is reclaimed at process exit.
        self._zombies: List[shared_memory.SharedMemory] = []
        self.published_segments = 0
        self.reused_segments = 0
        self.unlinked_segments = 0
        self.fallbacks = 0

    # -- availability --------------------------------------------------------

    def available(self) -> bool:
        """Whether shared-memory publication is usable right now."""
        if shm_disabled_by_env() or self._closed:
            return False
        if self._available is None:
            self._available = self._probe()
        return self._available

    def _probe(self) -> bool:
        try:
            probe = shared_memory.SharedMemory(create=True, size=1)
        except (OSError, ValueError):  # pragma: no cover - no /dev/shm
            return False
        probe.close()
        probe.unlink()
        return True

    # -- segment lifecycle ---------------------------------------------------

    def _new_segment_name(self) -> str:
        self._seq += 1
        return f"{SEGMENT_PREFIX}{self._owner_pid}_{self._token}_{self._seq}"

    def _create_segment(self, key: str,
                        arrays: Sequence[np.ndarray]) -> _Segment:
        manifest: List[Tuple[int, str, Tuple[int, ...]]] = []
        offset = 0
        for array in arrays:
            offset = -(-offset // ALIGNMENT) * ALIGNMENT
            manifest.append((offset, array.dtype.str, array.shape))
            offset += array.nbytes
        size = max(offset, 1)
        shm = None
        for _ in range(8):  # name collisions (stale /dev/shm) retry
            name = self._new_segment_name()
            try:
                shm = shared_memory.SharedMemory(create=True, size=size,
                                                 name=name)
                break
            except FileExistsError:  # pragma: no cover - stale name
                continue
        if shm is None:  # pragma: no cover - pathological
            raise OSError(f"could not allocate shared segment for {key}")
        for (off, dtype, shape), array in zip(manifest, arrays):
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf,
                              offset=off)
            view[...] = array
        segment = _Segment(key=key, shm=shm, manifest=manifest, nbytes=size)
        self._segments[key] = segment
        self.published_segments += 1
        return segment

    def _acquire(self, key: str, arrays: Sequence[np.ndarray]) -> _Segment:
        segment = self._segments.get(key)
        if segment is not None:
            if len(segment.manifest) != len(arrays):  # pragma: no cover
                raise ValueError(
                    f"segment {key} already published with "
                    f"{len(segment.manifest)} arrays, got {len(arrays)}")
            self.reused_segments += 1
        else:
            segment = self._create_segment(key, arrays)
        segment.refcount += 1
        for scope in self._scopes:
            if key not in scope._seen:
                segment.refcount += 1
                scope._pin(key)
        return segment

    def release(self, key: str) -> None:
        """Drop one pin; the last release unlinks the segment."""
        with self._lock:
            segment = self._segments.get(key)
            if segment is None:
                return
            segment.refcount -= 1
            if segment.refcount <= 0:
                del self._segments[key]
                self._unlink(segment)

    def _unlink(self, segment: _Segment) -> None:
        try:
            segment.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        try:
            segment.shm.close()
        except BufferError:
            # Live views still reference the buffer (e.g. golden views
            # handed to a finished campaign).  The name is gone from
            # /dev/shm either way; park the mapping so GC cannot trip
            # over the exported pointers.
            self._zombies.append(segment.shm)
        self.unlinked_segments += 1

    def close(self) -> None:
        """Unlink every segment (idempotent; fork-children are no-ops)."""
        with self._lock:
            if os.getpid() != self._owner_pid:
                return
            for segment in list(self._segments.values()):
                self._unlink(segment)
            self._segments.clear()
            self._closed = True

    # -- encode / publish ----------------------------------------------------

    def encode(self, obj: Any, body_key: str,
               inputs_array: Optional[np.ndarray] = None,
               inputs_key: Optional[str] = None,
               golden_ids: Optional[frozenset] = None,
               golden_key: Optional[str] = None) -> Optional[EncodedObject]:
        """Pickle ``obj`` with its big arrays externalized to segments.

        Arrays are routed to up to three bundles: the designated inputs
        array to ``inputs_key`` (content-keyed, so identical inputs in
        two specs share a segment), arrays whose ``id`` is in
        ``golden_ids`` to ``golden_key``, and everything else (weights,
        criteria state) to ``body_key``.  Returns ``None`` — take the
        pickle path — when the plane is unavailable or publication
        fails.
        """
        if not self.available():
            return None
        buffer = io.BytesIO()
        inputs_id = id(inputs_array) if inputs_array is not None else None
        golden_ids = golden_ids or frozenset()

        def route(array: np.ndarray) -> str:
            if inputs_id is not None and id(array) == inputs_id:
                return "inputs"
            if id(array) in golden_ids:
                return "golden"
            return "body"

        try:
            pickler = _CollectingPickler(buffer, route)
            pickler.dump(obj)
        except (pickle.PicklingError, TypeError, AttributeError):
            self.fallbacks += 1
            return None
        key_of = {"body": body_key, "inputs": inputs_key,
                  "golden": golden_key}
        with self._lock:
            if not self.available():
                return None
            acquired: List[str] = []
            descriptors: Dict[str, Tuple[str, List]] = {}
            shared_bytes = 0
            try:
                for tag, arrays in pickler.bundles.items():
                    key = key_of.get(tag) or f"{body_key}:{tag}"
                    segment = self._acquire(key, arrays)
                    acquired.append(key)
                    descriptors[tag] = (segment.shm.name, segment.manifest)
                    shared_bytes += sum(a.nbytes for a in arrays)
            except (OSError, ValueError, MemoryError):
                for key in acquired:
                    self.release(key)
                self._available = False  # environment failure: stay off
                self.fallbacks += 1
                return None
            payload = (PAYLOAD_TAG, buffer.getvalue(), descriptors)
            return EncodedObject(payload=payload,
                                 segment_keys=tuple(acquired),
                                 inline_bytes=len(payload[1]),
                                 shared_bytes=shared_bytes, _plane=self)

    def decode_local(self, payload: Tuple) -> Any:
        """Decode a payload inside the owning process (zero-copy views of
        the plane's own segments; used by the in-process scheduler path
        and the store's golden handles)."""
        tag, pickled, descriptors = payload
        assert tag == PAYLOAD_TAG
        views: Dict[str, List[np.ndarray]] = {}
        with self._lock:
            by_name = {seg.shm.name: seg for seg in self._segments.values()}
        for bundle, (name, manifest) in descriptors.items():
            segment = by_name.get(name)
            if segment is not None:
                views[bundle] = _views_from(segment.shm, manifest)
            else:  # segment already unlinked locally: attach like a worker
                views[bundle] = map_segment(name, manifest)[0]
        return _ResolvingUnpickler(io.BytesIO(pickled), views).load()

    # -- observability -------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "segments": len(self._segments),
                "segment_bytes": sum(s.nbytes
                                     for s in self._segments.values()),
                "published": self.published_segments,
                "reused": self.reused_segments,
                "unlinked": self.unlinked_segments,
                "fallbacks": self.fallbacks,
            }


def _views_from(shm: shared_memory.SharedMemory,
                manifest: Sequence[Tuple[int, str, Tuple[int, ...]]]
                ) -> List[np.ndarray]:
    views: List[np.ndarray] = []
    for offset, dtype, shape in manifest:
        view = np.ndarray(tuple(shape), dtype=np.dtype(dtype),
                          buffer=shm.buf, offset=offset)
        view.flags.writeable = False
        views.append(view)
    return views


# -- worker-side mapping ------------------------------------------------------

#: Segments this process has attached, by name.  Mappings are kept for
#: the process lifetime: closing a mapping while numpy views still
#: reference it is a crash, and an idle mapping costs address space, not
#: memory.  (Unlinking the name — the parent's job — does not invalidate
#: an existing mapping.)  The attach re-REGISTERs the name with the
#: multiprocessing resource tracker, which is a set-idempotent no-op:
#: the single parent-side unlink unregisters it exactly once.
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


def map_segment(name: str,
                manifest: Sequence[Tuple[int, str, Tuple[int, ...]]]
                ) -> Tuple[List[np.ndarray], bool]:
    """Map one segment into this process as read-only views.

    Returns ``(views, remapped)`` where ``remapped`` says the segment
    was already attached (the warm-pool re-map instead of re-unpickle).
    """
    shm = _ATTACHED.get(name)
    remapped = shm is not None
    if shm is None:
        shm = shared_memory.SharedMemory(name=name)
        _ATTACHED[name] = shm
    return _views_from(shm, manifest), remapped


def decode(payload: Tuple) -> Tuple[Any, Dict[str, int]]:
    """Worker-side decode: map segments, rebuild the object around
    read-only views.  Returns ``(obj, stats)`` with ``segments_mapped``
    / ``segments_remapped`` counters for :meth:`CampaignPool.stats`."""
    tag, pickled, descriptors = payload
    if tag != PAYLOAD_TAG:
        raise ValueError(f"not a shared-memory payload: {tag!r}")
    views: Dict[str, List[np.ndarray]] = {}
    stats = {"segments_mapped": 0, "segments_remapped": 0}
    for bundle, (name, manifest) in descriptors.items():
        bundle_views, remapped = map_segment(name, manifest)
        views[bundle] = bundle_views
        stats["segments_remapped" if remapped
              else "segments_mapped"] += 1
    obj = _ResolvingUnpickler(io.BytesIO(pickled), views).load()
    return obj, stats


def is_shm_payload(payload: Any) -> bool:
    return (isinstance(payload, tuple) and len(payload) == 3
            and payload[0] == PAYLOAD_TAG)


# -- process-global plane -----------------------------------------------------

_PLANE: Optional[SharedCachePlane] = None
_PLANE_LOCK = threading.Lock()


def shared_plane() -> Optional[SharedCachePlane]:
    """The process-wide plane, or ``None`` when shared memory is off.

    Created lazily and unlinked at interpreter exit.  Both arms of a
    paired comparison, every campaign pool and the artifact store all
    publish through this one plane, so content-identical bundles (the
    shared evaluation inputs of a protected/unprotected pair) are
    published once.
    """
    global _PLANE
    if shm_disabled_by_env():
        return None
    with _PLANE_LOCK:
        if _PLANE is None or _PLANE._closed:
            plane = SharedCachePlane()
            if not plane.available():
                return None
            atexit.register(plane.close)
            _PLANE = plane
        return _PLANE if _PLANE.available() else None


def reset_plane_for_tests() -> None:
    """Unlink everything and forget the global plane (test isolation)."""
    global _PLANE
    with _PLANE_LOCK:
        if _PLANE is not None:
            _PLANE.close()
            _PLANE = None


class PlaneScope:
    """Pins every segment published while active (paired-campaign scope).

    ``compare_protection`` wraps its two arms in one scope so the
    content-shared segments (the inputs bundle) stay alive between the
    arms' runs instead of being unlinked when the first arm's pins drop.
    """

    def __init__(self, plane: Optional[SharedCachePlane]) -> None:
        self._plane = plane
        self._pinned: List[str] = []
        self._seen: set = set()

    def __enter__(self) -> "PlaneScope":
        if self._plane is not None:
            self._plane._scopes.append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._plane is not None:
            self._plane._scopes.remove(self)
            for key in self._pinned:
                self._plane.release(key)

    def _pin(self, key: str) -> None:
        if key not in self._seen:
            self._seen.add(key)
            self._pinned.append(key)


def plane_scope() -> PlaneScope:
    """A :class:`PlaneScope` over the global plane (no-op when disabled)."""
    return PlaneScope(shared_plane())
