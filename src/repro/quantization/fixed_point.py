"""Fixed-point data types (Qm.n) and bit-level views of values.

The paper evaluates the DNNs with a 32-bit fixed-point datatype (RQ1–RQ3) and
a 16-bit fixed-point datatype with 14 integer and 2 fractional bits (RQ4).
This module provides

* :class:`FixedPointFormat` — a signed two's-complement Qm.n codec with
  saturating encode,
* bit-flip helpers that flip a chosen bit of a value *in its fixed-point
  representation* (the paper's fault model), and
* an IEEE-754 float32 bit-flip helper used for the floating-point fault-model
  ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed two's-complement fixed-point format with ``integer_bits``
    integer bits (including the sign bit) and ``fraction_bits`` fractional
    bits.

    The paper's configurations:

    * 32-bit: ``FixedPointFormat(integer_bits=22, fraction_bits=10)`` —
      enough integer range for the largest activations of the evaluated
      networks, matching the "32-bit fixed point" datatype used in RQ1–RQ3.
    * 16-bit: ``FixedPointFormat(integer_bits=14, fraction_bits=2)`` — the
      exact split the paper states for RQ4.
    """

    integer_bits: int
    fraction_bits: int

    def __post_init__(self) -> None:
        if self.integer_bits < 1:
            raise ValueError("integer_bits must be at least 1 (sign bit)")
        if self.fraction_bits < 0:
            raise ValueError("fraction_bits must be non-negative")
        if self.total_bits > 64:
            raise ValueError("formats wider than 64 bits are not supported")

    # -- format properties ----------------------------------------------------

    @property
    def total_bits(self) -> int:
        return self.integer_bits + self.fraction_bits

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** (-self.fraction_bits)

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return (2 ** (self.total_bits - 1) - 1) * self.scale

    @property
    def min_value(self) -> float:
        """Most negative representable value."""
        return -(2 ** (self.total_bits - 1)) * self.scale

    @property
    def resolution(self) -> float:
        return self.scale

    # -- encode / decode -----------------------------------------------------------

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Quantize real values to signed integer codes, with saturation."""
        values = np.asarray(values, dtype=np.float64)
        codes = np.round(values / self.scale)
        low = -(2 ** (self.total_bits - 1))
        high = 2 ** (self.total_bits - 1) - 1
        codes = np.clip(codes, low, high)
        return codes.astype(np.int64)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Map integer codes back to real values."""
        return np.asarray(codes, dtype=np.float64) * self.scale

    def quantize(self, values: np.ndarray,
                 out: np.ndarray = None) -> np.ndarray:
        """Round real values onto the representable grid (encode + decode).

        Fused float-only fast path for the executor's per-output policy
        application (the hottest loop of every fixed-point campaign): the
        scale is a power of two and, for formats up to 53 total bits,
        every code fits float64's mantissa, so round/saturate/rescale in
        float64 matches the int64 round-trip value-for-value — minus two
        dtype conversions and two temporaries per call.  Wider formats
        (54..64 bits, where float64 cannot hold every code exactly) keep
        the exact int64 round-trip.  (``np.rint`` and ``np.round`` both round
        half to even.)  Two deliberate bit-level divergences from the old
        path, both fine because every execution path quantizes through this
        one function: NaN stays NaN instead of decaying to whatever
        ``astype(int64)`` turns it into, and ``-0.0`` keeps its sign
        instead of being laundered through integer 0 (``-0.0 == 0.0``
        everywhere it is compared, and :meth:`encode` still maps it to
        code 0 for bit flips).

        ``out`` (replay buffer arena): a float64 buffer of the result
        shape the fused path writes into instead of allocating — the
        exact same ufunc pipeline, so the bits are unchanged; ``values``
        may alias ``out`` (the arena quantizes an operator output in
        place).  Ignored on the wide int64 path.
        """
        if self.total_bits > 53:  # codes exceed float64's exact-int range
            return self.decode(self.encode(values))
        values = np.asarray(values, dtype=np.float64)
        if (out is None or out.shape != values.shape
                or out.dtype != np.float64):
            out = np.empty_like(values)
        np.multiply(values, 1.0 / self.scale, out=out)
        np.rint(out, out=out)
        np.clip(out, -(2 ** (self.total_bits - 1)),
                2 ** (self.total_bits - 1) - 1, out=out)
        out *= self.scale
        return out

    def representable(self, values: np.ndarray, atol: float = 1e-9) -> np.ndarray:
        """Boolean mask of values already exactly on the grid and in range."""
        values = np.asarray(values, dtype=np.float64)
        quantized = self.quantize(values)
        return np.isclose(values, quantized, atol=atol)

    # -- bit manipulation ------------------------------------------------------------

    def flip_bit(self, value: float, bit: int) -> float:
        """Flip one bit of ``value``'s two's-complement representation.

        ``bit`` is indexed from 0 (least-significant fraction bit) to
        ``total_bits - 1`` (the sign bit).  The value is first quantized onto
        the grid (a fault can only corrupt a stored representation).
        """
        if not 0 <= bit < self.total_bits:
            raise ValueError(
                f"bit index {bit} out of range for a {self.total_bits}-bit format")
        code = int(self.encode(np.asarray(value))[()])
        unsigned = code & ((1 << self.total_bits) - 1)
        unsigned ^= (1 << bit)
        # Re-interpret as signed two's complement.
        if unsigned >= (1 << (self.total_bits - 1)):
            unsigned -= (1 << self.total_bits)
        return float(self.decode(np.asarray(unsigned))[()])

    def flip_bits(self, value: float, bits: Iterable[int]) -> float:
        """Flip several distinct bits of one value."""
        out = value
        for bit in bits:
            out = self.flip_bit(out, bit)
        return out

    def bit_weight(self, bit: int) -> float:
        """Magnitude contributed by ``bit`` (the sign bit returns the full
        negative range it controls)."""
        if bit == self.total_bits - 1:
            return 2.0 ** (self.integer_bits - 1) * (2.0 ** self.fraction_bits) * self.scale
        return 2.0 ** bit * self.scale


#: The paper's default 32-bit fixed-point configuration (RQ1–RQ3).
FIXED32 = FixedPointFormat(integer_bits=22, fraction_bits=10)

#: The paper's reduced-precision configuration for RQ4 (14 integer + 2 fraction).
FIXED16 = FixedPointFormat(integer_bits=14, fraction_bits=2)


def flip_float32_bit(value: float, bit: int) -> float:
    """Flip one bit of an IEEE-754 single-precision representation.

    Used by the floating-point fault-model ablation.  ``bit`` 0 is the LSB of
    the mantissa, bit 31 is the sign bit.
    """
    if not 0 <= bit < 32:
        raise ValueError(f"bit index {bit} out of range for float32")
    as_int = np.float32(value).view(np.uint32)
    flipped = np.uint32(as_int ^ np.uint32(1 << bit))
    result = float(flipped.view(np.float32))
    # A flip in the exponent can produce inf/NaN; the injector treats these as
    # ordinary corrupted values (downstream ops propagate them).
    return result
