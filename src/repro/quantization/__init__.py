"""Fixed-point datatypes and executor dtype policies."""

from .fixed_point import (
    FIXED16,
    FIXED32,
    FixedPointFormat,
    flip_float32_bit,
)
from .policy import FixedPointPolicy, fixed16_policy, fixed32_policy

__all__ = [
    "FIXED16",
    "FIXED32",
    "FixedPointFormat",
    "FixedPointPolicy",
    "fixed16_policy",
    "fixed32_policy",
    "flip_float32_bit",
]
