"""Executor dtype policies backed by fixed-point formats.

Attaching a :class:`FixedPointPolicy` to an :class:`~repro.graph.Executor`
rounds every operator output onto the configured Qm.n grid with saturation,
reproducing the paper's evaluation configurations ("we use a 32-bit
fixed-point data type for the first 3 RQs"; "16-bit fixed point with 14
integer and 2 fraction bits" for RQ4).
"""

from __future__ import annotations

from typing import Optional, Set

from ..graph.executor import DTypePolicy
from ..graph.graph import Node
from .fixed_point import FIXED16, FIXED32, FixedPointFormat


class FixedPointPolicy(DTypePolicy):
    """Quantize every operator output to a fixed-point grid.

    Parameters
    ----------
    fmt:
        The fixed-point format to apply.
    skip_categories:
        Node categories whose outputs are left untouched.  Variables and
        constants are always skipped: weights live in (ECC-protected) memory
        under the paper's fault model and their representation is not what is
        being studied.
    """

    #: :meth:`FixedPointFormat.quantize` is a per-element round/saturate
    #: (multiply, rint, clip, multiply — pure IEEE elementwise, idempotent
    #: on grid values), and :meth:`apply`'s category skip depends only on
    #: the node, so the sparse replay may quantize just the changed
    #: elements bit-exactly.
    elementwise_exact = True

    def __init__(self, fmt: FixedPointFormat,
                 skip_categories: Optional[Set[str]] = None) -> None:
        self.fmt = fmt
        self.skip_categories = {"variable", "input"} | set(skip_categories or ())
        self.name = f"fixed{fmt.total_bits}"

    def apply(self, node: Node, value, out=None):
        if node.category in self.skip_categories:
            return value
        return self.fmt.quantize(value, out=out)


def fixed32_policy() -> FixedPointPolicy:
    """The paper's default 32-bit fixed-point evaluation policy."""
    return FixedPointPolicy(FIXED32)


def fixed16_policy() -> FixedPointPolicy:
    """The paper's RQ4 16-bit (Q14.2) evaluation policy."""
    return FixedPointPolicy(FIXED16)
