"""Metrics, FLOPs accounting and plain-text reporting."""

from .flops import FlopsReport, count_flops, protection_overhead
from .metrics import (
    AccuracyReport,
    average_deviation,
    evaluate_accuracy,
    merge_count_dicts,
    rmse,
    top_k_accuracy,
)
from .reporting import (
    equivalence_note,
    format_cell,
    reduction_factor,
    relative_reduction_percent,
    render_comparison,
    render_series,
    render_table,
)

__all__ = [
    "AccuracyReport",
    "FlopsReport",
    "average_deviation",
    "count_flops",
    "equivalence_note",
    "evaluate_accuracy",
    "format_cell",
    "merge_count_dicts",
    "protection_overhead",
    "reduction_factor",
    "relative_reduction_percent",
    "render_comparison",
    "render_series",
    "render_table",
    "rmse",
    "top_k_accuracy",
]
