"""FLOPs accounting (Table IV: computation overhead of Ranger).

The paper measures Ranger's runtime cost in floating-point operations because
FLOPs are platform-independent.  The counter here runs one forward pass,
records every node's input/output shapes, and sums each operator's
self-reported FLOPs estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..graph import Executor, Node
from ..models.base import Model


@dataclass
class FlopsReport:
    """FLOPs of one model, broken down by node."""

    model_name: str
    per_node: Dict[str, int]

    @property
    def total(self) -> int:
        return int(sum(self.per_node.values()))

    def total_for_categories(self, categories) -> int:
        """Total FLOPs of nodes whose category is in ``categories`` — needs
        the graph to resolve categories, so use :func:`count_flops`'s
        ``category_totals`` instead for new code."""
        raise NotImplementedError(
            "use count_flops(...).category_totals for per-category totals")

    def overhead_relative_to(self, baseline: "FlopsReport") -> float:
        """Fractional FLOPs overhead of this model over ``baseline``."""
        if baseline.total == 0:
            raise ValueError("baseline model reports zero FLOPs")
        return (self.total - baseline.total) / baseline.total


def count_flops(model: Model, sample_input: Optional[np.ndarray] = None,
                batch_size: int = 1) -> FlopsReport:
    """Count FLOPs for one inference of ``model``.

    ``sample_input`` defaults to a zero batch matching the model's configured
    input shape.
    """
    if sample_input is None:
        input_shape = model.config.get("input_shape")
        if input_shape is None:
            raise ValueError("model config lacks input_shape; pass sample_input")
        sample_input = np.zeros((batch_size,) + tuple(input_shape))

    shapes: Dict[str, Tuple[int, ...]] = {}
    per_node: Dict[str, int] = {}
    executor = model.executor()

    def observer(node: Node, output: np.ndarray) -> None:
        shapes[node.name] = tuple(np.asarray(output).shape)

    executor.add_observer(observer)
    try:
        executor.run({model.input_name: sample_input},
                     outputs=[model.output_name])
    finally:
        executor.remove_observer(observer)

    for node in model.graph:
        if node.category in ("input", "variable"):
            continue
        input_shapes = []
        for name in node.inputs:
            if name in shapes:
                input_shapes.append(shapes[name])
            else:
                # Fall back to the stored value shape for variables/constants
                # that were not observed (e.g. when hooks filtered them out).
                value = getattr(model.graph.node(name).op, "value", None)
                input_shapes.append(tuple(np.shape(value)))
        output_shape = shapes.get(node.name, ())
        per_node[node.name] = int(node.op.flops(input_shapes, output_shape))

    return FlopsReport(model_name=model.name, per_node=per_node)


def protection_overhead(unprotected: Model, protected: Model,
                        sample_input: Optional[np.ndarray] = None
                        ) -> Dict[str, float]:
    """FLOPs overhead of a protection transform (Table IV row).

    Returns a dict with the baseline FLOPs, protected FLOPs and the relative
    overhead.
    """
    base = count_flops(unprotected, sample_input)
    guarded = count_flops(protected, sample_input)
    return {
        "model": unprotected.name,
        "flops_without": float(base.total),
        "flops_with": float(guarded.total),
        "overhead": guarded.overhead_relative_to(base),
    }
