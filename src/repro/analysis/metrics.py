"""Accuracy and deviation metrics used by the evaluation (Table II, Table V).

* Classifiers: top-1 / top-5 accuracy.
* Steering models: RMSE and average absolute deviation per frame, in degrees
  (the metrics the paper reports for Dave and Comma.ai).
* Mergeable counters: the aggregation primitive behind sharded
  fault-injection campaigns (``CampaignResult.merge``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from ..datasets.driving import degrees_from_output
from ..models.base import Model


def merge_count_dicts(counts: Sequence[Mapping[str, int]]) -> Dict[str, int]:
    """Sum per-key counters that share one key set.

    The merge primitive for sharded campaign statistics: every statistic a
    campaign reports (SDC rate, confidence interval, recompute fraction) is
    a ratio of additive counters, so summing the counters of disjoint trial
    shards reproduces the unsharded statistics exactly, in any shard order.
    Key order follows the first counter; a shard with a different key set is
    a programming error (its trials classified different criteria) and
    raises ``ValueError``.
    """
    if not counts:
        raise ValueError("merge_count_dicts() requires at least one counter")
    first = counts[0]
    for other in counts[1:]:
        if set(other.keys()) != set(first.keys()):
            raise ValueError(
                f"cannot merge counters with different key sets: "
                f"{sorted(first.keys())} vs. {sorted(other.keys())}")
    return {key: int(sum(c[key] for c in counts)) for key in first.keys()}


def top_k_accuracy(probabilities: np.ndarray, labels: np.ndarray,
                   k: int = 1) -> float:
    """Fraction of rows whose true label is within the top-k predictions."""
    probabilities = np.asarray(probabilities)
    labels = np.asarray(labels).astype(int).reshape(-1)
    if probabilities.ndim != 2:
        raise ValueError(f"expected 2-D probabilities, got {probabilities.shape}")
    if k < 1 or k > probabilities.shape[1]:
        raise ValueError(f"k={k} out of range for {probabilities.shape[1]} classes")
    top_k = np.argsort(probabilities, axis=1)[:, ::-1][:, :k]
    hits = (top_k == labels[:, None]).any(axis=1)
    return float(hits.mean())


def rmse(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Root mean squared error."""
    predictions = np.asarray(predictions).reshape(-1)
    targets = np.asarray(targets).reshape(-1)
    return float(np.sqrt(np.mean((predictions - targets) ** 2)))


def average_deviation(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Mean absolute deviation per frame."""
    predictions = np.asarray(predictions).reshape(-1)
    targets = np.asarray(targets).reshape(-1)
    return float(np.mean(np.abs(predictions - targets)))


@dataclass
class AccuracyReport:
    """Fault-free accuracy of one model on one evaluation set."""

    model_name: str
    task: str
    top1: Optional[float] = None
    top5: Optional[float] = None
    rmse_degrees: Optional[float] = None
    avg_deviation_degrees: Optional[float] = None

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        if self.top1 is not None:
            out["top1"] = self.top1
        if self.top5 is not None:
            out["top5"] = self.top5
        if self.rmse_degrees is not None:
            out["rmse"] = self.rmse_degrees
        if self.avg_deviation_degrees is not None:
            out["avg_deviation"] = self.avg_deviation_degrees
        return out

    def matches(self, other: "AccuracyReport", atol: float = 1e-9) -> bool:
        """True when two reports are numerically identical (Table II check)."""
        mine, theirs = self.as_dict(), other.as_dict()
        if mine.keys() != theirs.keys():
            return False
        return all(abs(mine[k] - theirs[k]) <= atol for k in mine)


def evaluate_accuracy(model: Model, inputs: np.ndarray, targets: np.ndarray,
                      batch_size: int = 64, top5: bool = True,
                      ) -> AccuracyReport:
    """Evaluate fault-free accuracy of a model on an evaluation split."""
    predictions = []
    executor = model.executor()
    for start in range(0, len(inputs), batch_size):
        batch = inputs[start:start + batch_size]
        predictions.append(model.predict(batch, executor=executor))
    outputs = np.concatenate(predictions, axis=0)

    if model.is_classifier:
        num_classes = outputs.shape[1]
        report = AccuracyReport(model_name=model.name, task=model.task,
                                top1=top_k_accuracy(outputs, targets, k=1))
        if top5 and num_classes >= 5:
            report.top5 = top_k_accuracy(outputs, targets, k=5)
        return report

    unit = model.angle_unit or "degrees"
    predicted_degrees = degrees_from_output(outputs, unit)
    target_degrees = degrees_from_output(targets, unit)
    return AccuracyReport(model_name=model.name, task=model.task,
                          rmse_degrees=rmse(predicted_degrees, target_degrees),
                          avg_deviation_degrees=average_deviation(
                              predicted_degrees, target_degrees))
