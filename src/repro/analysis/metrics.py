"""Accuracy, deviation and campaign statistics (Table II, Table V, Sec. IV).

* Classifiers: top-1 / top-5 accuracy.
* Steering models: RMSE and average absolute deviation per frame, in degrees
  (the metrics the paper reports for Dave and Comma.ai).
* Mergeable counters: the aggregation primitive behind sharded
  fault-injection campaigns (``CampaignResult.merge``).
* Binomial interval methods (Wilson, Jeffreys, normal approximation): the
  SDC-rate error bars and the half-width stopping rule of adaptive
  campaigns.  Wilson is the default everywhere — unlike the normal
  approximation it never collapses to a zero-width bar at 0 (or n)
  successes, which matters because protected models routinely measure
  zero SDCs at laptop-scale trial counts.
* Stratified (Horvitz–Thompson) estimators: the unbiased overall-rate
  reconstruction behind importance-sampled campaigns
  (``CampaignResult.stratified_sdc_rate``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..datasets.driving import degrees_from_output
from ..models.base import Model

try:  # pragma: no cover - exercised via jeffreys_interval either way
    from scipy.special import betaincinv as _betaincinv
except ImportError:  # pragma: no cover - scipy-less deployments
    _betaincinv = None


# ---------------------------------------------------------------------------
# Binomial confidence intervals
# ---------------------------------------------------------------------------

#: Interval methods :func:`binomial_interval` accepts, in preference order.
INTERVAL_METHODS = ("wilson", "jeffreys", "normal")


def _validate_counts(successes: int, trials: int) -> None:
    if trials < 0:
        raise ValueError(f"trials must be non-negative, got {trials}")
    if not 0 <= successes <= max(trials, 0):
        raise ValueError(
            f"successes must lie in [0, trials], got {successes}/{trials}")


def normal_interval(successes: int, trials: int,
                    z: float = 1.96) -> Tuple[float, float]:
    """Normal-approximation (Wald) interval on a binomial proportion.

    Kept as the legacy reference: its ``p(1-p)`` variance collapses at the
    boundaries, so 0 successes yield a misleading zero-width bar (the
    ``max(..., 1e-12)`` floor below only keeps the math finite).  Prefer
    :func:`wilson_interval`.
    """
    _validate_counts(successes, trials)
    if trials == 0:
        return 0.0, 0.0
    p = successes / trials
    half = z * math.sqrt(max(p * (1.0 - p), 1e-12) / trials)
    return max(0.0, p - half), min(1.0, p + half)


def wilson_interval(successes: int, trials: int,
                    z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval on a binomial proportion.

    The inversion of the score test: all ``p`` with
    ``|p_hat - p| <= z * sqrt(p (1 - p) / n)``.  Unlike the normal
    approximation it is well-behaved at the boundaries — 0 successes give
    ``[0, z^2 / (n + z^2)]``, a correct nonzero upper bound — and its
    coverage is close to nominal even at small ``n``, which is what makes
    it a sound basis for a sequential stopping rule.
    """
    _validate_counts(successes, trials)
    if trials == 0:
        return 0.0, 0.0
    n = float(trials)
    p = successes / n
    z2 = z * z
    denominator = 1.0 + z2 / n
    center = (p + z2 / (2.0 * n)) / denominator
    half = (z / denominator) * math.sqrt(
        p * (1.0 - p) / n + z2 / (4.0 * n * n))
    return max(0.0, center - half), min(1.0, center + half)


def _regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """``I_x(a, b)`` via the continued-fraction expansion (Lentz's method).

    Pure-python fallback used when scipy is unavailable; accurate to ~1e-12
    for the Jeffreys parameters (``a, b = s + 1/2, n - s + 1/2``).
    """
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
                + a * math.log(x) + b * math.log1p(-x))
    front = math.exp(ln_front)
    # The continued fraction converges fast for x < (a + 1) / (a + b + 2);
    # otherwise use the symmetry I_x(a, b) = 1 - I_{1-x}(b, a).
    if x >= (a + 1.0) / (a + b + 2.0):
        return 1.0 - _regularized_incomplete_beta(b, a, 1.0 - x)
    tiny = 1e-300
    c, d = 1.0, 1.0 - (a + b) * x / (a + 1.0)
    d = 1.0 / (d if abs(d) > tiny else tiny)
    result = d
    for m in range(1, 300):
        numerator = m * (b - m) * x / ((a + 2 * m - 1.0) * (a + 2 * m))
        d = 1.0 + numerator * d
        d = 1.0 / (d if abs(d) > tiny else tiny)
        c = 1.0 + numerator / (c if abs(c) > tiny else tiny)
        result *= c * d
        numerator = -(a + m) * (a + b + m) * x / (
            (a + 2 * m) * (a + 2 * m + 1.0))
        d = 1.0 + numerator * d
        d = 1.0 / (d if abs(d) > tiny else tiny)
        c = 1.0 + numerator / (c if abs(c) > tiny else tiny)
        delta = c * d
        result *= delta
        if abs(delta - 1.0) < 1e-14:
            break
    return front * result / a


def _beta_quantile(a: float, b: float, q: float) -> float:
    """Inverse regularized incomplete beta (the Beta(a, b) quantile)."""
    if _betaincinv is not None:
        return float(_betaincinv(a, b, q))
    lo, hi = 0.0, 1.0
    for _ in range(200):  # bisection: 2^-200 easily exceeds float precision
        mid = 0.5 * (lo + hi)
        if _regularized_incomplete_beta(a, b, mid) < q:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-15:
            break
    return 0.5 * (lo + hi)


def z_to_two_sided_alpha(z: float) -> float:
    """The two-sided tail mass of ``±z`` under the standard normal."""
    return 1.0 - math.erf(z / math.sqrt(2.0))


def jeffreys_interval(successes: int, trials: int,
                      z: float = 1.96) -> Tuple[float, float]:
    """Jeffreys (Beta(1/2, 1/2)-posterior) equal-tailed credible interval.

    ``z`` is translated to the matching two-sided level (1.96 -> 95%) so
    the signature stays interchangeable with the other methods.  Follows
    the standard boundary convention: the lower endpoint is 0 when no
    successes were observed, the upper endpoint 1 when all trials succeed.
    """
    _validate_counts(successes, trials)
    if trials == 0:
        return 0.0, 0.0
    tail = z_to_two_sided_alpha(z) / 2.0
    a, b = successes + 0.5, trials - successes + 0.5
    low = 0.0 if successes == 0 else _beta_quantile(a, b, tail)
    high = 1.0 if successes == trials else _beta_quantile(a, b, 1.0 - tail)
    return low, high


_INTERVAL_FUNCTIONS = {"wilson": wilson_interval,
                       "jeffreys": jeffreys_interval,
                       "normal": normal_interval}


def binomial_interval(successes: int, trials: int, z: float = 1.96,
                      method: str = "wilson") -> Tuple[float, float]:
    """Dispatch to one of the :data:`INTERVAL_METHODS` by name."""
    try:
        function = _INTERVAL_FUNCTIONS[method]
    except KeyError:
        raise ValueError(
            f"unknown interval method '{method}'; "
            f"expected one of {INTERVAL_METHODS}") from None
    return function(successes, trials, z)


def interval_half_width(successes: int, trials: int, z: float = 1.96,
                        method: str = "wilson") -> float:
    """Half the width of the chosen interval — the stopping-rule statistic."""
    low, high = binomial_interval(successes, trials, z, method)
    return (high - low) / 2.0


# ---------------------------------------------------------------------------
# Stratified (Horvitz–Thompson) estimators
# ---------------------------------------------------------------------------


def _sampled_strata(weights: Mapping[str, float],
                    trials: Mapping[str, int]) -> Dict[str, float]:
    """Renormalized weights of the strata that received at least one trial.

    The estimators condition on the sampled strata: a stratum with zero
    trials contributes no information, so its weight is redistributed
    proportionally (exact when every stratum is sampled, which the uniform
    first wave of adaptive campaigns guarantees).
    """
    sampled = {key: weights[key] for key, n in trials.items()
               if n > 0 and key in weights}
    missing = [key for key, n in trials.items()
               if n > 0 and key not in weights]
    if missing:
        raise ValueError(
            f"trials recorded for strata without weights: {sorted(missing)}")
    total = sum(sampled.values())
    if total <= 0.0:
        raise ValueError("stratified estimate requires at least one trial "
                         "in a stratum with positive weight")
    return {key: weight / total for key, weight in sampled.items()}


def stratified_rate(weights: Mapping[str, float],
                    counts: Mapping[str, int],
                    trials: Mapping[str, int]) -> float:
    """Horvitz–Thompson estimate of the overall rate from stratum counters.

    ``sum_h q_h * s_h / n_h`` — every trial in stratum ``h`` carries the
    importance weight ``q_h / n_h`` (its stratum's probability under the
    target uniform-fault distribution over the allocation it received), so
    the estimate is unbiased for **any** allocation with ``n_h >= 1``, in
    particular the Neyman allocations adaptive campaigns converge to.
    Counters are additive across shards, so merged campaigns reproduce the
    unsharded estimate exactly.
    """
    normalized = _sampled_strata(weights, trials)
    return float(sum(weight * counts.get(key, 0) / trials[key]
                     for key, weight in normalized.items()))


def stratified_variance(weights: Mapping[str, float],
                        counts: Mapping[str, int],
                        trials: Mapping[str, int]) -> float:
    """Variance of the stratified estimator, Jeffreys-smoothed.

    ``sum_h q_h^2 * p_h (1 - p_h) / n_h`` with the per-stratum variance
    evaluated at the Jeffreys posterior mean ``(s + 1/2) / (n + 1)`` rather
    than the raw proportion — a stratum that has seen 0 (or all) successes
    so far keeps a nonzero variance contribution, which keeps the stopping
    rule conservative instead of declaring a stratum settled after one
    lucky wave.  The smoothing affects only the *interval*; the rate
    estimate itself stays the unbiased :func:`stratified_rate`.
    """
    normalized = _sampled_strata(weights, trials)
    variance = 0.0
    for key, weight in normalized.items():
        n = trials[key]
        smoothed = (counts.get(key, 0) + 0.5) / (n + 1.0)
        variance += weight * weight * smoothed * (1.0 - smoothed) / n
    return float(variance)


def stratified_interval(weights: Mapping[str, float],
                        counts: Mapping[str, int],
                        trials: Mapping[str, int],
                        z: float = 1.96) -> Tuple[float, float]:
    """Normal-theory interval around the stratified rate estimate."""
    rate = stratified_rate(weights, counts, trials)
    half = z * math.sqrt(stratified_variance(weights, counts, trials))
    return max(0.0, rate - half), min(1.0, rate + half)


def merge_partial_count_dicts(counts: Iterable[Mapping[str, int]]
                              ) -> Dict[str, int]:
    """Sum per-key counters whose key sets may differ (union semantics).

    The merge primitive for *stratum* counters: shards of an adaptive
    campaign legitimately see different stratum subsets (a wave's Neyman
    allocation can skip settled strata entirely), so missing keys mean
    "zero trials there", not a programming error as in
    :func:`merge_count_dicts`.
    """
    merged: Dict[str, int] = {}
    for counter in counts:
        for key, value in counter.items():
            merged[key] = merged.get(key, 0) + int(value)
    return merged


def merge_count_dicts(counts: Sequence[Mapping[str, int]]) -> Dict[str, int]:
    """Sum per-key counters that share one key set.

    The merge primitive for sharded campaign statistics: every statistic a
    campaign reports (SDC rate, confidence interval, recompute fraction) is
    a ratio of additive counters, so summing the counters of disjoint trial
    shards reproduces the unsharded statistics exactly, in any shard order.
    Key order follows the first counter; a shard with a different key set is
    a programming error (its trials classified different criteria) and
    raises ``ValueError``.
    """
    if not counts:
        raise ValueError("merge_count_dicts() requires at least one counter")
    first = counts[0]
    for other in counts[1:]:
        if set(other.keys()) != set(first.keys()):
            raise ValueError(
                f"cannot merge counters with different key sets: "
                f"{sorted(first.keys())} vs. {sorted(other.keys())}")
    return {key: int(sum(c[key] for c in counts)) for key in first.keys()}


def top_k_accuracy(probabilities: np.ndarray, labels: np.ndarray,
                   k: int = 1) -> float:
    """Fraction of rows whose true label is within the top-k predictions.

    Ranks with a reversed *stable* argsort — tied scores rank
    higher-index-first — matching the tie order of the SDC verdict paths
    (``TopKMisclassification``, see ``injection/sdc.py``).  Under
    fixed-point quantization tied logits are routine, and the default
    introsort is only incidentally stable below ~16 elements, so without
    ``kind="stable"`` a label tied at the top-k boundary could count as
    correct here while the same outputs produce an SDC verdict (or vice
    versa) for ≥64-class models.
    """
    probabilities = np.asarray(probabilities)
    labels = np.asarray(labels).astype(int).reshape(-1)
    if probabilities.ndim != 2:
        raise ValueError(f"expected 2-D probabilities, got {probabilities.shape}")
    if k < 1 or k > probabilities.shape[1]:
        raise ValueError(f"k={k} out of range for {probabilities.shape[1]} classes")
    top_k = np.argsort(probabilities, axis=1, kind="stable")[:, ::-1][:, :k]
    hits = (top_k == labels[:, None]).any(axis=1)
    return float(hits.mean())


def rmse(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Root mean squared error."""
    predictions = np.asarray(predictions).reshape(-1)
    targets = np.asarray(targets).reshape(-1)
    return float(np.sqrt(np.mean((predictions - targets) ** 2)))


def average_deviation(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Mean absolute deviation per frame."""
    predictions = np.asarray(predictions).reshape(-1)
    targets = np.asarray(targets).reshape(-1)
    return float(np.mean(np.abs(predictions - targets)))


@dataclass
class AccuracyReport:
    """Fault-free accuracy of one model on one evaluation set."""

    model_name: str
    task: str
    top1: Optional[float] = None
    top5: Optional[float] = None
    rmse_degrees: Optional[float] = None
    avg_deviation_degrees: Optional[float] = None

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        if self.top1 is not None:
            out["top1"] = self.top1
        if self.top5 is not None:
            out["top5"] = self.top5
        if self.rmse_degrees is not None:
            out["rmse"] = self.rmse_degrees
        if self.avg_deviation_degrees is not None:
            out["avg_deviation"] = self.avg_deviation_degrees
        return out

    def matches(self, other: "AccuracyReport", atol: float = 1e-9) -> bool:
        """True when two reports are numerically identical (Table II check)."""
        mine, theirs = self.as_dict(), other.as_dict()
        if mine.keys() != theirs.keys():
            return False
        return all(abs(mine[k] - theirs[k]) <= atol for k in mine)


def evaluate_accuracy(model: Model, inputs: np.ndarray, targets: np.ndarray,
                      batch_size: int = 64, top5: bool = True,
                      ) -> AccuracyReport:
    """Evaluate fault-free accuracy of a model on an evaluation split."""
    predictions = []
    executor = model.executor()
    for start in range(0, len(inputs), batch_size):
        batch = inputs[start:start + batch_size]
        predictions.append(model.predict(batch, executor=executor))
    outputs = np.concatenate(predictions, axis=0)

    if model.is_classifier:
        num_classes = outputs.shape[1]
        report = AccuracyReport(model_name=model.name, task=model.task,
                                top1=top_k_accuracy(outputs, targets, k=1))
        if top5 and num_classes >= 5:
            report.top5 = top_k_accuracy(outputs, targets, k=5)
        return report

    unit = model.angle_unit or "degrees"
    predicted_degrees = degrees_from_output(outputs, unit)
    target_degrees = degrees_from_output(targets, unit)
    return AccuracyReport(model_name=model.name, task=model.task,
                          rmse_degrees=rmse(predicted_degrees, target_degrees),
                          avg_deviation_degrees=average_deviation(
                              predicted_degrees, target_degrees))
