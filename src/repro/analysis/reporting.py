"""Plain-text tables and series for the experiment harness.

Every benchmark prints its result in the same row/column structure as the
corresponding paper table or figure, so paper-vs-measured comparisons (in
``EXPERIMENTS.md``) can be made line by line.  Only the standard library and
numpy are used — no plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]


def format_cell(value, precision: int = 2) -> str:
    """Render one table cell."""
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None, precision: int = 2) -> str:
    """Render an aligned plain-text table."""
    cells = [[format_cell(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(cell.ljust(widths[i])
                                for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(series: Mapping[str, Sequence[Number]],
                  x_labels: Sequence, title: Optional[str] = None,
                  precision: int = 3) -> str:
    """Render named series (one per row) against shared x labels.

    Used for figure-style results (e.g. SDC rate vs. bit count, range
    convergence vs. data fraction).
    """
    headers = ["series"] + [format_cell(x, precision) for x in x_labels]
    rows = []
    for name, values in series.items():
        rows.append([name] + list(values))
    return render_table(headers, rows, title=title, precision=precision)


def render_comparison(title: str, labels: Sequence[str],
                      original: Sequence[Number], protected: Sequence[Number],
                      original_name: str = "original",
                      protected_name: str = "ranger",
                      precision: int = 2) -> str:
    """Two-row comparison table (the original-vs-Ranger bar charts)."""
    return render_series({original_name: original, protected_name: protected},
                         labels, title=title, precision=precision)


def equivalence_note(mode: str, max_ulp_deviation: float = 0.0) -> str:
    """One-line description of a result's numerical-equivalence guarantee.

    Campaign summaries attach this to every result so a reader can tell
    whether the numbers come from the bit-exact incremental path
    (``exact``) or from batched replay (``ulp_tolerant``), and — for
    tolerant runs — how far any masked row actually strayed from its
    batch-1 golden value (in float64 ULPs).
    """
    if mode == "exact":
        return "equivalence: exact (bit-identical replay)"
    return (f"equivalence: {mode} "
            f"(max observed deviation {max_ulp_deviation:g} ulps)")


def reduction_factor(before: float, after: float) -> float:
    """The paper's "Nx reduction" headline number (before / after)."""
    if after <= 0:
        return float("inf") if before > 0 else 1.0
    return before / after


def relative_reduction_percent(before: float, after: float) -> float:
    """Relative SDC reduction in percent, as reported in Fig. 8."""
    if before <= 0:
        return 0.0
    return 100.0 * (before - after) / before
