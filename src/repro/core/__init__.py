"""Ranger: selective range restriction for low-cost fault correction."""

from .bounds import LayerObservation, RestrictionBounds
from .policies import (
    ClipToBound,
    POLICY_REGISTRY,
    RangeRestrictionOp,
    ReplaceWithRandom,
    ResetToZero,
    make_restriction_op,
)
from .profiler import ActivationProfiler, BoundsProfile
from .ranger import ProtectionInfo, Ranger, protect_model
from .transform import (
    EXTENDABLE_CATEGORIES,
    RangerTransform,
    TransformReport,
    apply_ranger,
)

__all__ = [
    "ActivationProfiler",
    "BoundsProfile",
    "ClipToBound",
    "EXTENDABLE_CATEGORIES",
    "LayerObservation",
    "POLICY_REGISTRY",
    "ProtectionInfo",
    "RangeRestrictionOp",
    "Ranger",
    "RangerTransform",
    "ReplaceWithRandom",
    "ResetToZero",
    "RestrictionBounds",
    "TransformReport",
    "apply_ranger",
    "make_restriction_op",
    "protect_model",
]
