"""Restriction bounds: the per-layer value ranges Ranger enforces.

Bounds are derived in two ways (paper, Section III-C, Step 1):

* **Inherently bounded activations** (Tanh, Sigmoid, Atan) use the function's
  own range — no profiling needed.
* **Unbounded activations** (ReLU, ELU, ...) are profiled over a sample of
  the training data; the restriction bound is then chosen from the observed
  value distribution.  The paper's default is the observed maximum (the
  "100th percentile"), and Section VI-A studies tighter percentiles (99.9%,
  99%, 98%) that trade a little accuracy for extra resilience.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np


@dataclass
class LayerObservation:
    """Streaming statistics of one activation layer's output values.

    Keeps exact minimum / maximum plus a bounded reservoir sample of observed
    values so percentile bounds can be computed without storing every
    activation of every profiling input.
    """

    node_name: str
    reservoir_size: int = 4096
    count: int = 0
    min_value: float = np.inf
    max_value: float = -np.inf
    _reservoir: np.ndarray = field(default_factory=lambda: np.empty(0))
    _rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(1234))

    def update(self, values: np.ndarray) -> None:
        """Fold one batch of activation values into the statistics."""
        flat = np.asarray(values, dtype=np.float64).reshape(-1)
        if flat.size == 0:
            return
        self.min_value = float(min(self.min_value, flat.min()))
        self.max_value = float(max(self.max_value, flat.max()))
        self.count += int(flat.size)
        # Reservoir update: keep a uniform subsample across everything seen.
        if self._reservoir.size < self.reservoir_size:
            take = min(self.reservoir_size - self._reservoir.size, flat.size)
            picked = self._rng.choice(flat, size=take, replace=False)
            self._reservoir = np.concatenate([self._reservoir, picked])
            flat = flat[take:] if take < flat.size else np.empty(0)
        if flat.size:
            # Each remaining value replaces a reservoir slot with probability
            # reservoir_size / count (approximate streaming reservoir).
            accept = self._rng.random(flat.size) < (self.reservoir_size
                                                    / max(self.count, 1))
            replacements = flat[accept]
            if replacements.size:
                slots = self._rng.integers(0, self.reservoir_size,
                                           size=replacements.size)
                self._reservoir[slots] = replacements

    def percentile_bound(self, percentile: float) -> float:
        """Upper bound at the given percentile of the observed distribution.

        ``percentile=100`` returns the exact observed maximum (the paper's
        conservative default); lower percentiles are computed from the
        reservoir sample.
        """
        if self.count == 0:
            raise ValueError(f"no observations recorded for '{self.node_name}'")
        if percentile >= 100.0:
            return self.max_value
        if self._reservoir.size == 0:
            return self.max_value
        return float(np.percentile(self._reservoir, percentile))

    def lower_bound(self) -> float:
        """Observed minimum (most activations are ReLU-like, so usually 0)."""
        if self.count == 0:
            raise ValueError(f"no observations recorded for '{self.node_name}'")
        return self.min_value


@dataclass(frozen=True)
class RestrictionBounds:
    """The concrete (low, high) restriction bound for every protected layer.

    ``bounds`` maps activation node names to ``(low, high)`` pairs; this is
    the object Algorithm 1 consumes.
    """

    bounds: Dict[str, Tuple[float, float]]
    percentile: float = 100.0

    def __post_init__(self) -> None:
        for name, (low, high) in self.bounds.items():
            if low > high:
                raise ValueError(
                    f"bound for '{name}' has low ({low}) > high ({high})")

    def __contains__(self, node_name: str) -> bool:
        return node_name in self.bounds

    def __getitem__(self, node_name: str) -> Tuple[float, float]:
        return self.bounds[node_name]

    def __len__(self) -> int:
        return len(self.bounds)

    def items(self):
        return self.bounds.items()

    def get(self, node_name: str, default=None):
        return self.bounds.get(node_name, default)

    def merged(self, names) -> Tuple[float, float]:
        """The merged bound for a concatenation of several protected streams:
        ``(min of lows, max of highs)`` — Algorithm 1, line 8."""
        lows, highs = zip(*(self.bounds[name] for name in names))
        return min(lows), max(highs)

    def scaled(self, factor: float) -> "RestrictionBounds":
        """Bounds with every upper limit multiplied by ``factor`` (ablations)."""
        return RestrictionBounds(
            bounds={name: (low, high * factor)
                    for name, (low, high) in self.bounds.items()},
            percentile=self.percentile)

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-serializable form (e.g. to ship bounds with a deployed model)."""
        return {name: {"low": low, "high": high}
                for name, (low, high) in self.bounds.items()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Mapping[str, float]],
                  percentile: float = 100.0) -> "RestrictionBounds":
        return cls(bounds={name: (float(v["low"]), float(v["high"]))
                           for name, v in data.items()},
                   percentile=percentile)
