"""Algorithm 1: the graph transformation that inserts range restriction.

The transformation duplicates the model graph (the original is never mutated,
mirroring TensorFlow's append-only graphs and the paper's use of
``import_graph_def`` + ``input_map``) and splices a protection operator after

* every **activation** node that has a restriction bound, and
* every **pooling / reshape / concatenate** node that directly consumes a
  protected value stream — the "value dependency" extension of Section III-C
  Step 2 (a value that was within bound before a max-pool, reshape or concat
  must still be within bound after it, so the same bound applies).

For a concatenation of two protected streams, the merged bound is
``(min(low_a, low_b), max(up_a, up_b))`` — Algorithm 1, line 8.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..graph import Graph, Node
from ..models.base import Model
from .bounds import RestrictionBounds
from .policies import make_restriction_op

#: Node categories to which a preceding activation's bound is extended.
EXTENDABLE_CATEGORIES = {"pooling", "reshape", "concat"}


@dataclass
class TransformReport:
    """What the transformation did — used by the overhead experiments."""

    model_name: str
    protected_nodes: List[str] = field(default_factory=list)
    inserted_nodes: List[str] = field(default_factory=list)
    node_bounds: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    insertion_seconds: float = 0.0

    @property
    def num_inserted(self) -> int:
        return len(self.inserted_nodes)


class RangerTransform:
    """Applies selective range restriction to a model graph.

    Parameters
    ----------
    bounds:
        The restriction bounds keyed by activation node name (from the
        profiler, or supplied manually).
    policy:
        Out-of-bound handling policy: ``"clip"`` (default), ``"zero"``, or
        ``"random"`` (Section VI-C design alternatives).
    protect_extended:
        When True (default, the paper's design) the activation bound is also
        applied to directly-following pooling / reshape / concatenate nodes.
        Setting this to False yields the "ACT-only" ablation discussed in
        Section III-C.
    """

    def __init__(self, bounds: RestrictionBounds, policy: str = "clip",
                 protect_extended: bool = True, seed: int = 0) -> None:
        self.bounds = bounds
        self.policy = policy
        self.protect_extended = protect_extended
        self.seed = seed

    # -- public API ----------------------------------------------------------------

    def apply(self, model: Model, suffix: str = "ranger"
              ) -> Tuple[Model, TransformReport]:
        """Return a protected copy of ``model`` plus a transformation report."""
        report = TransformReport(model_name=model.name)
        start = time.perf_counter()
        protected_graph = self._transform_graph(model, report)
        report.insertion_seconds = time.perf_counter() - start
        protected = model.with_graph(protected_graph, suffix=suffix)
        return protected, report

    # -- the transformation itself ------------------------------------------------

    def _transform_graph(self, model: Model, report: TransformReport) -> Graph:
        graph = model.graph
        # Nodes downstream of the final layer are never protected: the paper
        # excludes the last FC layer (its values are directly the output and
        # restricting them cannot help; duplication protects it instead).
        excluded = self._output_section(model)

        #: Bound of the protected value stream flowing out of each original
        #: node (activation bounds, propagated through extendable operators).
        stream_bounds: Dict[str, Tuple[float, float]] = {}
        insert_count = 0

        def node_hook(new_graph: Graph, copied: Node) -> Optional[str]:
            nonlocal insert_count
            original = graph.node(copied.name)
            if original.name in excluded:
                return None
            bound = self._bound_for(original, stream_bounds)
            if bound is None:
                return None
            stream_bounds[original.name] = bound
            low, high = bound
            op = make_restriction_op(self.policy, low, high,
                                     seed=self.seed + insert_count)
            insert_count += 1
            guard_name = new_graph.unique_name(f"{copied.name}/ranger")
            new_graph.add(guard_name, op, [copied.name])
            report.protected_nodes.append(copied.name)
            report.inserted_nodes.append(guard_name)
            report.node_bounds[copied.name] = (low, high)
            return guard_name

        return graph.duplicate(name=f"{graph.name}_ranger",
                               node_hook=node_hook)

    def _bound_for(self, node: Node,
                   stream_bounds: Dict[str, Tuple[float, float]]
                   ) -> Optional[Tuple[float, float]]:
        """The restriction bound to apply after ``node``, if any."""
        if node.category == "activation":
            return self.bounds.get(node.name)
        if not self.protect_extended:
            return None
        if node.category not in EXTENDABLE_CATEGORIES:
            return None
        input_bounds = [stream_bounds.get(name) for name in node.inputs]
        if not input_bounds or any(b is None for b in input_bounds):
            # At least one feeding stream is unprotected — extending a bound
            # here could clip legitimate unbounded values, so skip.
            return None
        if node.category == "concat":
            lows, highs = zip(*input_bounds)
            return min(lows), max(highs)
        return input_bounds[0]

    def _output_section(self, model: Model) -> Set[str]:
        """Nodes at or downstream of the final layer (never protected)."""
        from ..injection.injector import downstream_nodes
        return downstream_nodes(model.graph, model.logits_name)


def apply_ranger(model: Model, bounds: RestrictionBounds, policy: str = "clip",
                 protect_extended: bool = True, seed: int = 0,
                 ) -> Tuple[Model, TransformReport]:
    """Convenience wrapper: protect ``model`` with the given bounds."""
    transform = RangerTransform(bounds, policy=policy,
                                protect_extended=protect_extended, seed=seed)
    return transform.apply(model)
