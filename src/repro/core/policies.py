"""Out-of-bound handling policies.

Ranger's default behaviour truncates out-of-range values to the restriction
bound.  Section VI-C of the paper evaluates two alternatives — resetting
out-of-range values to zero (as Minerva does on fault detection) and
replacing them with a random in-range value — and finds truncation is the
best choice.  All three are implemented here as protection operators the
transformation can insert.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..ops.base import Array, Operator
from ..ops.dense import ClipByValue


class RangeRestrictionOp(Operator):
    """Base class for the operators Ranger splices into the graph."""

    category = "protection"
    injectable = False
    #: Clip/zero are deterministic per-element compare/selects against
    #: compile-time bounds, so sparse replay applies them at just the
    #: changed positions; ``ReplaceWithRandom`` overrides this back to
    #: False (a fresh whole-array draw cannot be replayed per element).
    elementwise_exact = True

    def __init__(self, low: float, high: float) -> None:
        if low > high:
            raise ValueError(f"low bound {low} exceeds high bound {high}")
        self.low = float(low)
        self.high = float(high)

    def out_of_range(self, x: Array) -> Array:
        return (x < self.low) | (x > self.high)

    def flops(self, input_shapes, output_shape) -> int:
        # Two comparisons per element (range check) — matches the paper's
        # observation that Ranger adds only simple compare/select operations.
        return 2 * int(np.prod(output_shape))

    def config(self) -> Dict[str, float]:
        return {"low": self.low, "high": self.high}


class ClipToBound(RangeRestrictionOp):
    """Ranger's default policy: truncate out-of-range values to the bound."""

    def forward(self, x: Array) -> Array:
        return np.clip(x, self.low, self.high)

    def backward(self, grad, inputs, output):
        (x,) = inputs
        mask = (x >= self.low) & (x <= self.high)
        return [grad * mask]


class ResetToZero(RangeRestrictionOp):
    """Replace out-of-range values with zero (the Minerva-style alternative).

    The paper finds this policy *degrades accuracy* because zeroing a large
    legitimate activation is a much bigger perturbation than truncating it,
    and zeros propagate multiplicatively through later layers.
    """

    def forward(self, x: Array) -> Array:
        return np.where(self.out_of_range(x), 0.0, x)

    def backward(self, grad, inputs, output):
        (x,) = inputs
        return [grad * ~self.out_of_range(x)]


class ReplaceWithRandom(RangeRestrictionOp):
    """Replace out-of-range values with a random value inside the bound.

    The paper finds this maintains accuracy but is non-deterministic, which
    is why clipping remains the recommended policy for safety-critical use.
    """

    #: Non-deterministic: forward draws one uniform array over the *whole*
    #: input shape, so per-element replay would consume the RNG differently
    #: — the sparse frontier must densify before this operator.
    elementwise_exact = False

    def __init__(self, low: float, high: float, seed: int = 0) -> None:
        super().__init__(low, high)
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Array) -> Array:
        mask = self.out_of_range(x)
        if not np.any(mask):
            return x
        replacement = self._rng.uniform(max(self.low, 0.0), self.high,
                                        size=x.shape)
        return np.where(mask, replacement, x)

    def backward(self, grad, inputs, output):
        (x,) = inputs
        return [grad * ~self.out_of_range(x)]


#: Policy registry keyed by the names accepted by ``apply_ranger``.
POLICY_REGISTRY = {
    "clip": ClipToBound,
    "zero": ResetToZero,
    "random": ReplaceWithRandom,
}


def make_restriction_op(policy: str, low: float, high: float,
                        seed: int = 0) -> RangeRestrictionOp:
    """Instantiate the protection operator for one protected node."""
    if policy not in POLICY_REGISTRY:
        raise ValueError(f"unknown policy '{policy}'; "
                         f"expected one of {sorted(POLICY_REGISTRY)}")
    if policy == "random":
        return ReplaceWithRandom(low, high, seed=seed)
    return POLICY_REGISTRY[policy](low, high)
