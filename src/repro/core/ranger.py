"""High-level Ranger API: profile, select bounds, protect.

This is the entry point downstream users call:

>>> from repro.core import Ranger
>>> ranger = Ranger(percentile=100.0, policy="clip")
>>> protected, info = ranger.protect(model, profile_inputs=x_train_sample)

``protect`` performs the full pipeline of the paper: profile the activation
ranges over (a sample of) the training data, select the restriction bounds at
the configured percentile, and apply the Algorithm-1 graph transformation.
The returned :class:`ProtectionInfo` carries everything the evaluation
harness needs (bounds, insertion time, inserted node count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..models.base import Model
from .bounds import RestrictionBounds
from .profiler import ActivationProfiler, BoundsProfile
from .transform import RangerTransform, TransformReport, apply_ranger


@dataclass
class ProtectionInfo:
    """Everything produced while protecting one model."""

    bounds: RestrictionBounds
    report: TransformReport
    profile: Optional[BoundsProfile] = None

    @property
    def insertion_seconds(self) -> float:
        return self.report.insertion_seconds

    @property
    def num_protected_layers(self) -> int:
        return len(self.report.protected_nodes)

    def memory_overhead_values(self) -> int:
        """Number of stored bound scalars (the paper's memory overhead)."""
        return 2 * len(self.bounds)


class Ranger:
    """The automated range-restriction transformation.

    Parameters
    ----------
    percentile:
        Restriction-bound percentile.  ``100`` (default) uses the maximum
        value observed during profiling — the conservative setting that the
        paper shows does not affect accuracy.  Lower percentiles (99.9, 99,
        98) trade accuracy for resilience (Section VI-A).
    policy:
        Out-of-bound handling: ``"clip"`` (default), ``"zero"``, ``"random"``.
    protect_extended:
        Extend activation bounds to following pooling / reshape / concat
        operators (the paper's design).  ``False`` gives the ACT-only
        ablation.
    sample_fraction:
        Fraction of the provided profiling inputs actually used (the paper
        profiles ~20% of the training set).  ``1.0`` uses everything passed.
    """

    def __init__(self, percentile: float = 100.0, policy: str = "clip",
                 protect_extended: bool = True, sample_fraction: float = 1.0,
                 seed: int = 0) -> None:
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError(
                f"sample_fraction must be in (0, 1], got {sample_fraction}")
        if not 0.0 < percentile <= 100.0:
            raise ValueError(
                f"percentile must be in (0, 100], got {percentile}")
        self.percentile = float(percentile)
        self.policy = policy
        self.protect_extended = protect_extended
        self.sample_fraction = float(sample_fraction)
        self.seed = seed

    # -- pipeline pieces -----------------------------------------------------------

    def profile(self, model: Model, inputs: np.ndarray,
                batch_size: int = 32) -> BoundsProfile:
        """Profile activation ranges over a sample of ``inputs``."""
        inputs = np.asarray(inputs)
        if self.sample_fraction < 1.0:
            rng = np.random.default_rng(self.seed)
            count = max(1, int(round(len(inputs) * self.sample_fraction)))
            idx = rng.choice(len(inputs), size=count, replace=False)
            inputs = inputs[idx]
        profiler = ActivationProfiler(model, seed=self.seed)
        return profiler.profile(inputs, batch_size=batch_size)

    def select_bounds(self, profile: BoundsProfile) -> RestrictionBounds:
        """Choose restriction bounds from a profile at this Ranger's percentile."""
        return profile.select_bounds(self.percentile)

    def transform(self, model: Model, bounds: RestrictionBounds
                  ) -> Tuple[Model, TransformReport]:
        """Apply Algorithm 1 with pre-computed bounds."""
        return apply_ranger(model, bounds, policy=self.policy,
                            protect_extended=self.protect_extended,
                            seed=self.seed)

    # -- the one-call API -------------------------------------------------------------

    def protect(self, model: Model,
                profile_inputs: Optional[np.ndarray] = None,
                bounds: Optional[RestrictionBounds] = None,
                batch_size: int = 32) -> Tuple[Model, ProtectionInfo]:
        """Protect ``model`` and return (protected_model, protection_info).

        Either ``profile_inputs`` (training data to profile) or pre-computed
        ``bounds`` must be provided.
        """
        profile: Optional[BoundsProfile] = None
        if bounds is None:
            if profile_inputs is None:
                raise ValueError(
                    "protect() needs either profile_inputs or bounds")
            profile = self.profile(model, profile_inputs, batch_size=batch_size)
            bounds = self.select_bounds(profile)
        protected, report = self.transform(model, bounds)
        return protected, ProtectionInfo(bounds=bounds, report=report,
                                         profile=profile)


def protect_model(model: Model, profile_inputs: np.ndarray,
                  percentile: float = 100.0, policy: str = "clip",
                  sample_fraction: float = 1.0, seed: int = 0,
                  ) -> Tuple[Model, ProtectionInfo]:
    """Functional shorthand for ``Ranger(...).protect(model, inputs)``."""
    ranger = Ranger(percentile=percentile, policy=policy,
                    sample_fraction=sample_fraction, seed=seed)
    return ranger.protect(model, profile_inputs=profile_inputs)
