"""Activation profiler: derives restriction bounds from training data.

The profiler runs the (fault-free) model over a sample of the training set —
the paper samples about 20% — while observing every activation node's output,
and turns the observed distributions into :class:`RestrictionBounds`.

It also produces the per-layer range-convergence curves of the paper's
Fig. 4, which show that the observed maxima converge to the global maxima
well before the full training set has been profiled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph import Node
from ..models.base import Model
from ..ops.activations import Activation
from .bounds import LayerObservation, RestrictionBounds


@dataclass
class BoundsProfile:
    """The raw profiling result: per-activation-layer observations."""

    model_name: str
    observations: Dict[str, LayerObservation]
    inherent: Dict[str, Tuple[float, float]]
    samples_used: int

    def activation_layers(self) -> List[str]:
        """Profiled activation node names in graph order."""
        return list(self.observations.keys()) + list(self.inherent.keys())

    def select_bounds(self, percentile: float = 100.0) -> RestrictionBounds:
        """Turn the observations into concrete restriction bounds.

        Profiled layers get ``(observed_min, percentile_of_observed_max)``;
        inherently-bounded activations keep their mathematical range
        regardless of the percentile.
        """
        bounds: Dict[str, Tuple[float, float]] = {}
        for name, obs in self.observations.items():
            bounds[name] = (obs.lower_bound(), obs.percentile_bound(percentile))
        bounds.update(self.inherent)
        return RestrictionBounds(bounds=bounds, percentile=percentile)


class ActivationProfiler:
    """Collects activation-value distributions for one model."""

    def __init__(self, model: Model, reservoir_size: int = 4096,
                 seed: int = 0) -> None:
        self.model = model
        self.reservoir_size = reservoir_size
        self.seed = seed

    def _activation_nodes(self) -> List[Node]:
        return [node for node in self.model.graph
                if node.category == "activation"]

    def profile(self, inputs: np.ndarray, batch_size: int = 32
                ) -> BoundsProfile:
        """Profile activation ranges over ``inputs``.

        Inherently bounded activations (Tanh/Sigmoid/Atan) are recorded with
        their mathematical bounds and skipped during observation, matching
        the paper's Step 1.
        """
        if len(inputs) == 0:
            raise ValueError("profiling requires at least one input")
        observations: Dict[str, LayerObservation] = {}
        inherent: Dict[str, Tuple[float, float]] = {}
        for node in self._activation_nodes():
            op = node.op
            if isinstance(op, Activation) and op.inherent_bounds is not None:
                inherent[node.name] = (float(op.inherent_bounds[0]),
                                       float(op.inherent_bounds[1]))
            else:
                observations[node.name] = LayerObservation(
                    node_name=node.name, reservoir_size=self.reservoir_size,
                    _rng=np.random.default_rng(self.seed + len(observations)))
        if not observations and not inherent:
            raise ValueError(
                f"model '{self.model.name}' has no activation layers to profile")

        if not observations:
            # Every activation is inherently bounded: no forward passes are
            # needed to know the ranges.
            return BoundsProfile(model_name=self.model.name,
                                 observations=observations, inherent=inherent,
                                 samples_used=len(inputs))
        executor = self.model.executor()
        # Dependency-pruned execution: profiling only needs the activations,
        # so request exactly the observed nodes — the executor evaluates the
        # union of their ancestors and skips the classifier/regression head.
        observed_nodes = list(observations)

        def observer(node: Node, output: np.ndarray) -> None:
            if node.name in observations:
                observations[node.name].update(output)

        executor.add_observer(observer)
        try:
            for start in range(0, len(inputs), batch_size):
                batch = inputs[start:start + batch_size]
                executor.run({self.model.input_name: batch},
                             outputs=observed_nodes)
        finally:
            executor.remove_observer(observer)

        return BoundsProfile(model_name=self.model.name,
                             observations=observations, inherent=inherent,
                             samples_used=len(inputs))

    # -- Fig. 4: convergence of the observed ranges -----------------------------

    def convergence_curve(self, inputs: np.ndarray,
                          fractions: Sequence[float] = (0.05, 0.1, 0.2, 0.4,
                                                        0.6, 0.8, 1.0),
                          batch_size: int = 32,
                          ) -> Dict[str, List[float]]:
        """Observed per-layer maxima vs. amount of profiling data.

        Returns, per profiled activation layer, the running maximum after
        each fraction of ``inputs``, normalized to the layer's global maximum
        over all of ``inputs`` — the quantity plotted in the paper's Fig. 4.
        """
        if len(inputs) == 0:
            raise ValueError("convergence curve requires at least one input")
        fractions = sorted(set(float(f) for f in fractions))
        if any(f <= 0.0 or f > 1.0 for f in fractions):
            raise ValueError("fractions must lie in (0, 1]")
        checkpoints = [max(1, int(round(f * len(inputs)))) for f in fractions]

        nodes = [node.name for node in self._activation_nodes()
                 if not (isinstance(node.op, Activation)
                         and node.op.inherent_bounds is not None)]
        if not nodes:
            return {}
        running_max = {name: -np.inf for name in nodes}
        curves: Dict[str, List[float]] = {name: [] for name in nodes}
        executor = self.model.executor()

        def observer(node: Node, output: np.ndarray) -> None:
            if node.name in running_max:
                running_max[node.name] = max(running_max[node.name],
                                             float(np.max(output)))

        executor.add_observer(observer)
        try:
            processed = 0
            checkpoint_iter = iter(checkpoints)
            next_checkpoint = next(checkpoint_iter)
            for start in range(0, len(inputs), batch_size):
                batch = inputs[start:start + batch_size]
                # Pruned execution: the curves only need the activations.
                executor.run({self.model.input_name: batch},
                             outputs=nodes)
                processed += len(batch)
                while next_checkpoint is not None and processed >= next_checkpoint:
                    for name in nodes:
                        curves[name].append(running_max[name])
                    next_checkpoint = next(checkpoint_iter, None)
        finally:
            executor.remove_observer(observer)

        # Normalize by the global maximum (the last recorded value).
        for name in nodes:
            global_max = curves[name][-1]
            if global_max <= 0:
                curves[name] = [1.0 for _ in curves[name]]
            else:
                curves[name] = [v / global_max for v in curves[name]]
        return curves
