"""Training engine: initializers, losses, optimizers, trainer."""

from .initializers import (
    Initializer,
    glorot_uniform,
    he_normal,
    ones,
    truncated_normal,
    zeros,
)
from .losses import Loss, MeanAbsoluteError, MeanSquaredError, SoftmaxCrossEntropy
from .optimizers import Adam, Optimizer, SGD
from .trainer import Trainer, TrainingHistory

__all__ = [
    "Adam",
    "Initializer",
    "Loss",
    "MeanAbsoluteError",
    "MeanSquaredError",
    "Optimizer",
    "SGD",
    "SoftmaxCrossEntropy",
    "Trainer",
    "TrainingHistory",
    "glorot_uniform",
    "he_normal",
    "ones",
    "truncated_normal",
    "zeros",
]
