"""Gradient-descent optimizers operating on graph Variables."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ops.base import Variable


class Optimizer:
    """Base class.  Subclasses implement :meth:`update` for a single variable."""

    def __init__(self, learning_rate: float = 0.01,
                 grad_clip: Optional[float] = None) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning rate must be positive, got {learning_rate}")
        self.learning_rate = float(learning_rate)
        self.grad_clip = grad_clip

    def step(self, variables: Sequence[Variable]) -> None:
        """Apply one update to every trainable variable with a gradient."""
        for var in variables:
            if not var.trainable or var.grad is None:
                continue
            grad = var.grad
            if self.grad_clip is not None:
                grad = np.clip(grad, -self.grad_clip, self.grad_clip)
            self.update(var, grad)

    def zero_grad(self, variables: Sequence[Variable]) -> None:
        for var in variables:
            var.zero_grad()

    def update(self, var: Variable, grad: np.ndarray) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0,
                 grad_clip: Optional[float] = None) -> None:
        super().__init__(learning_rate, grad_clip)
        self.momentum = float(momentum)
        self._velocity: Dict[int, np.ndarray] = {}

    def update(self, var: Variable, grad: np.ndarray) -> None:
        if self.momentum:
            velocity = self._velocity.get(id(var))
            if velocity is None:
                velocity = np.zeros_like(var.value)
            velocity = self.momentum * velocity - self.learning_rate * grad
            self._velocity[id(var)] = velocity
            var.value += velocity
        else:
            var.value -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(self, learning_rate: float = 0.001, beta1: float = 0.9,
                 beta2: float = 0.999, epsilon: float = 1e-8,
                 grad_clip: Optional[float] = None) -> None:
        super().__init__(learning_rate, grad_clip)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t: Dict[int, int] = {}

    def update(self, var: Variable, grad: np.ndarray) -> None:
        key = id(var)
        m = self._m.get(key, np.zeros_like(var.value))
        v = self._v.get(key, np.zeros_like(var.value))
        t = self._t.get(key, 0) + 1

        m = self.beta1 * m + (1.0 - self.beta1) * grad
        v = self.beta2 * v + (1.0 - self.beta2) * grad ** 2
        m_hat = m / (1.0 - self.beta1 ** t)
        v_hat = v / (1.0 - self.beta2 ** t)
        var.value -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

        self._m[key] = m
        self._v[key] = v
        self._t[key] = t
