"""Mini-batch trainer for graph models.

The trainer is deliberately small: the reproduction only needs models that are
*good enough* to exhibit realistic activation distributions and correct
predictions on a set of evaluation inputs, not state-of-the-art accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph.executor import Executor, set_training_mode
from ..graph.graph import Graph
from .losses import Loss
from .optimizers import Optimizer


@dataclass
class TrainingHistory:
    """Per-epoch loss and metric trace recorded by the trainer."""

    epoch_losses: List[float] = field(default_factory=list)
    epoch_metrics: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> Optional[float]:
        return self.epoch_losses[-1] if self.epoch_losses else None


class Trainer:
    """Trains a graph model whose loss is computed on a designated output node.

    Parameters
    ----------
    graph:
        The model graph.  It must have exactly one placeholder and the
        ``output_node`` must produce the pre-loss predictions (logits for
        classification, raw values for regression).
    loss:
        Loss object from :mod:`repro.nn.losses`.
    optimizer:
        Optimizer from :mod:`repro.nn.optimizers`.
    output_node:
        Name of the node whose output feeds the loss; defaults to the graph's
        first marked output.
    """

    def __init__(self, graph: Graph, loss: Loss, optimizer: Optimizer,
                 output_node: Optional[str] = None) -> None:
        self.graph = graph
        self.loss = loss
        self.optimizer = optimizer
        placeholders = graph.placeholders()
        if len(placeholders) != 1:
            raise ValueError(
                f"Trainer requires exactly one placeholder, found "
                f"{len(placeholders)}")
        self.input_node = placeholders[0].name
        self.output_node = output_node or graph.outputs[0]
        self.executor = Executor(graph)

    # -- single steps ------------------------------------------------------------

    def train_step(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """One forward/backward/update step on a mini-batch; returns the loss."""
        variables = self.graph.variables()
        self.optimizer.zero_grad(variables)
        result = self.executor.run({self.input_node: inputs},
                                   outputs=[self.output_node])
        predictions = result.output(self.output_node)
        loss_value = self.loss.value(predictions, targets)
        grad = self.loss.gradient(predictions, targets)
        self.executor.run_with_gradients({self.input_node: inputs},
                                         {self.output_node: grad})
        self.optimizer.step(variables)
        return loss_value

    def evaluate_loss(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        result = self.executor.run({self.input_node: inputs},
                                   outputs=[self.output_node])
        return self.loss.value(result.output(self.output_node), targets)

    # -- full training loop ---------------------------------------------------------

    def fit(self, inputs: np.ndarray, targets: np.ndarray, epochs: int = 5,
            batch_size: int = 32, shuffle: bool = True,
            seed: int = 0, verbose: bool = False) -> TrainingHistory:
        """Train for ``epochs`` passes over ``(inputs, targets)``."""
        if len(inputs) != len(targets):
            raise ValueError(
                f"inputs ({len(inputs)}) and targets ({len(targets)}) differ "
                f"in length")
        history = TrainingHistory()
        rng = np.random.default_rng(seed)
        n = len(inputs)
        set_training_mode(self.graph, True)
        try:
            for epoch in range(epochs):
                order = rng.permutation(n) if shuffle else np.arange(n)
                batch_losses = []
                for start in range(0, n, batch_size):
                    idx = order[start:start + batch_size]
                    batch_losses.append(
                        self.train_step(inputs[idx], targets[idx]))
                epoch_loss = float(np.mean(batch_losses))
                history.epoch_losses.append(epoch_loss)
                if verbose:
                    print(f"epoch {epoch + 1}/{epochs}: loss={epoch_loss:.4f}")
        finally:
            set_training_mode(self.graph, False)
        return history
