"""Loss functions for the in-repo training engine.

Each loss exposes ``value`` (scalar loss) and ``gradient`` (gradient of the
loss with respect to the model output), which is what
``Executor.run_with_gradients`` consumes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class Loss:
    """Base class: a differentiable scalar objective on model outputs."""

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, predictions: np.ndarray,
                 targets: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class SoftmaxCrossEntropy(Loss):
    """Cross-entropy on logits with an internal softmax.

    ``targets`` are integer class indices of shape ``(batch,)``.  Combining
    the softmax with the loss gives the numerically stable gradient
    ``softmax(logits) - onehot(targets)``.
    """

    def _probabilities(self, logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        probs = self._probabilities(predictions)
        batch = predictions.shape[0]
        picked = probs[np.arange(batch), targets.astype(int)]
        return float(-np.mean(np.log(np.clip(picked, 1e-12, None))))

    def gradient(self, predictions: np.ndarray,
                 targets: np.ndarray) -> np.ndarray:
        probs = self._probabilities(predictions)
        batch = predictions.shape[0]
        onehot = np.zeros_like(probs)
        onehot[np.arange(batch), targets.astype(int)] = 1.0
        return (probs - onehot) / batch


class MeanSquaredError(Loss):
    """Mean squared error, used for the steering-angle regression models."""

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        targets = targets.reshape(predictions.shape)
        return float(np.mean((predictions - targets) ** 2))

    def gradient(self, predictions: np.ndarray,
                 targets: np.ndarray) -> np.ndarray:
        targets = targets.reshape(predictions.shape)
        return 2.0 * (predictions - targets) / predictions.size


class MeanAbsoluteError(Loss):
    """Mean absolute error — robust alternative for regression heads."""

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        targets = targets.reshape(predictions.shape)
        return float(np.mean(np.abs(predictions - targets)))

    def gradient(self, predictions: np.ndarray,
                 targets: np.ndarray) -> np.ndarray:
        targets = targets.reshape(predictions.shape)
        return np.sign(predictions - targets) / predictions.size
