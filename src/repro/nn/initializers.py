"""Weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so that model
construction is deterministic and reproducible — the fault-injection
experiments depend on the exact same weights being rebuilt for every run.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

#: An initializer maps (rng, shape) to an array of that shape.
Initializer = Callable[[np.random.Generator, Tuple[int, ...]], np.ndarray]


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and convolutional kernels."""
    if len(shape) == 2:  # (in_features, out_features)
        return shape[0], shape[1]
    if len(shape) == 4:  # (kh, kw, in_channels, out_channels)
        receptive = shape[0] * shape[1]
        return receptive * shape[2], receptive * shape[3]
    size = int(np.prod(shape))
    return size, size


def zeros(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """All-zeros initializer (used for biases)."""
    return np.zeros(shape, dtype=np.float64)


def ones(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """All-ones initializer (used for normalization scales)."""
    return np.ones(shape, dtype=np.float64)


def glorot_uniform(rng: np.random.Generator,
                   shape: Tuple[int, ...]) -> np.ndarray:
    """Glorot / Xavier uniform initialization."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """He normal initialization, appropriate for ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def truncated_normal(rng: np.random.Generator, shape: Tuple[int, ...],
                     std: float = 0.05) -> np.ndarray:
    """Normal initialization truncated to two standard deviations."""
    values = rng.normal(0.0, std, size=shape)
    return np.clip(values, -2.0 * std, 2.0 * std)
