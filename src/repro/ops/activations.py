"""Activation-function operators.

Activations are the anchor points for Ranger: the restriction bounds are
profiled at activation outputs and Algorithm 1 inserts range checks directly
after every activation operator (and after the pooling / reshape / concat
operators that consume them).  Each activation therefore carries two pieces of
metadata used by ``repro.core``:

* ``inherent_bounds`` — ``(low, high)`` if the function is bounded by
  construction (Tanh, Sigmoid), else ``None``.  Bounded activations do not
  need profiling (paper, Section III-C, Step 1).
* ``category`` — always ``"activation"`` so the transformation pass can find
  them without relying on names.

Batch-transparency audit: every activation is elementwise and ``Softmax``
normalizes over the last (class) axis only, so all operators here are
batch-transparent and safe for batched trial replay.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .base import Array, Operator


class Activation(Operator):
    """Common base class for activation operators."""

    category = "activation"

    #: Elementwise-exactness audit: every activation below is a pure
    #: per-element composition of numpy ufuncs (maximum / where / exp /
    #: tanh / arctan and scalar arithmetic), whose result bits on a gathered
    #: 1-D subset match the full-array evaluation element-for-element, so
    #: the default shape-agnostic :meth:`~repro.ops.base.Operator.sparse_forward`
    #: applies.  ``Softmax`` is *not* an Activation and stays dense (its row
    #: normalization couples every element of the class axis).
    elementwise_exact = True

    #: (low, high) if mathematically bounded, else None.
    inherent_bounds: Optional[Tuple[float, float]] = None


class ReLU(Activation):
    """Rectified linear unit: ``max(x, 0)``.  Unbounded above."""

    inherent_bounds = None
    supports_out = True

    def forward(self, x: Array) -> Array:
        return np.maximum(x, 0.0)

    def forward_out(self, out: Array, x: Array) -> Array:
        return np.maximum(x, 0.0, out=out)

    def backward(self, grad, inputs, output):
        (x,) = inputs
        return [grad * (x > 0.0)]


class LeakyReLU(Activation):
    """Leaky ReLU with configurable negative slope."""

    supports_out = True

    def __init__(self, alpha: float = 0.01) -> None:
        self.alpha = float(alpha)

    def forward(self, x: Array) -> Array:
        return np.where(x > 0.0, x, self.alpha * x)

    def forward_out(self, out: Array, x: Array) -> Array:
        # alpha * x commuted to x * alpha: IEEE multiply is commutative,
        # so the branch bits match forward's np.where exactly.
        np.multiply(x, self.alpha, out=out)
        np.copyto(out, x, where=x > 0.0)
        return out

    def backward(self, grad, inputs, output):
        (x,) = inputs
        return [grad * np.where(x > 0.0, 1.0, self.alpha)]

    def config(self) -> Dict[str, float]:
        return {"alpha": self.alpha}


class ELU(Activation):
    """Exponential linear unit, used by the Comma.ai steering model.

    Bounded below by ``-alpha`` but unbounded above, so it still requires a
    profiled upper restriction bound.
    """

    supports_out = True

    def __init__(self, alpha: float = 1.0) -> None:
        self.alpha = float(alpha)

    def forward(self, x: Array) -> Array:
        return np.where(x > 0.0, x, self.alpha * (np.exp(np.minimum(x, 0.0)) - 1.0))

    def forward_out(self, out: Array, x: Array) -> Array:
        # Same pipeline as forward with the final multiply commuted
        # ((e-1)*alpha == alpha*(e-1) bit-exactly).
        np.minimum(x, 0.0, out=out)
        np.exp(out, out=out)
        np.subtract(out, 1.0, out=out)
        np.multiply(out, self.alpha, out=out)
        np.copyto(out, x, where=x > 0.0)
        return out

    def backward(self, grad, inputs, output):
        (x,) = inputs
        dx = np.where(x > 0.0, 1.0, self.alpha * np.exp(np.minimum(x, 0.0)))
        return [grad * dx]

    def config(self) -> Dict[str, float]:
        return {"alpha": self.alpha}


class Tanh(Activation):
    """Hyperbolic tangent.  Inherently bounded to (-1, 1)."""

    inherent_bounds = (-1.0, 1.0)
    supports_out = True

    def forward(self, x: Array) -> Array:
        return np.tanh(x)

    def forward_out(self, out: Array, x: Array) -> Array:
        return np.tanh(x, out=out)

    def backward(self, grad, inputs, output):
        return [grad * (1.0 - output ** 2)]


class Sigmoid(Activation):
    """Logistic sigmoid.  Inherently bounded to (0, 1)."""

    inherent_bounds = (0.0, 1.0)
    supports_out = True

    def forward(self, x: Array) -> Array:
        return 1.0 / (1.0 + np.exp(-x))

    def forward_out(self, out: Array, x: Array) -> Array:
        # -x, exp, +1 (commuted from 1+exp), reciprocal — each step is
        # the same IEEE operation forward performs.
        np.negative(x, out=out)
        np.exp(out, out=out)
        np.add(out, 1.0, out=out)
        np.divide(1.0, out, out=out)
        return out

    def backward(self, grad, inputs, output):
        return [grad * output * (1.0 - output)]


class Atan(Activation):
    """Arctangent, used as the output head of the Nvidia Dave model.

    The paper highlights that the horizontal asymptote of atan (output in
    ``(-pi/2, pi/2)``) makes the radians-output Dave model much more sensitive
    to faults at the atan input; we reproduce exactly that head here.
    """

    inherent_bounds = (-np.pi / 2.0, np.pi / 2.0)
    supports_out = True

    def forward(self, x: Array) -> Array:
        return np.arctan(x)

    def forward_out(self, out: Array, x: Array) -> Array:
        return np.arctan(x, out=out)

    def backward(self, grad, inputs, output):
        (x,) = inputs
        return [grad / (1.0 + x ** 2)]


class ScaledAtan(Activation):
    """``scale * atan(x)`` — the Dave model multiplies the atan output by 2."""

    supports_out = True

    def __init__(self, scale: float = 2.0) -> None:
        self.scale = float(scale)
        self.inherent_bounds = (-self.scale * np.pi / 2.0,
                                self.scale * np.pi / 2.0)

    def forward(self, x: Array) -> Array:
        return self.scale * np.arctan(x)

    def forward_out(self, out: Array, x: Array) -> Array:
        # scale * atan commuted to atan * scale (bit-exact).
        np.arctan(x, out=out)
        np.multiply(out, self.scale, out=out)
        return out

    def backward(self, grad, inputs, output):
        (x,) = inputs
        return [grad * self.scale / (1.0 + x ** 2)]

    def config(self) -> Dict[str, float]:
        return {"scale": self.scale}


class Softmax(Operator):
    """Row-wise softmax over the last axis.

    Classified as an output operator rather than an activation: Ranger does
    not place restriction bounds after the final softmax (the paper excludes
    the last FC layer / output from protection).
    """

    category = "output"
    #: Not elementwise-exact: the max-shift and sum normalization couple
    #: every element of the class axis, so sparse deltas densify here.
    elementwise_exact = False

    def forward(self, x: Array) -> Array:
        shifted = x - np.max(x, axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / np.sum(exp, axis=-1, keepdims=True)

    def backward(self, grad, inputs, output):
        # Jacobian-vector product of softmax: s * (g - sum(g * s))
        dot = np.sum(grad * output, axis=-1, keepdims=True)
        return [output * (grad - dot)]

    def flops(self, input_shapes, output_shape) -> int:
        return 3 * int(np.prod(output_shape))


ACTIVATION_REGISTRY: Dict[str, type] = {
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "elu": ELU,
    "tanh": Tanh,
    "sigmoid": Sigmoid,
    "atan": Atan,
}


def make_activation(name: str, **kwargs) -> Activation:
    """Instantiate an activation operator by name.

    Parameters
    ----------
    name:
        One of ``relu``, ``leaky_relu``, ``elu``, ``tanh``, ``sigmoid``,
        ``atan``.
    """
    key = name.lower()
    if key not in ACTIVATION_REGISTRY:
        raise ValueError(f"unknown activation '{name}'; "
                         f"expected one of {sorted(ACTIVATION_REGISTRY)}")
    return ACTIVATION_REGISTRY[key](**kwargs)
