"""Normalization operators: batch normalization and local response norm."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .base import Array, Operator, OperatorError


class BatchNorm(Operator):
    """Batch normalization over the channel (last) axis.

    During training the operator normalizes with batch statistics and updates
    exponential moving averages; at inference it uses the stored moving
    statistics, matching the frozen graphs the paper instruments.

    Inputs: ``x``, ``gamma``, ``beta`` (both of shape ``(channels,)``).
    """

    category = "normalization"

    @property
    def batch_transparent(self) -> bool:
        """Batch-transparent at inference only.

        Inference-mode BN normalizes every row with the stored *moving*
        statistics — rows are independent and the operator can be replayed
        batched.  Training-mode BN computes statistics across the batch
        axis, coupling every row to every other; stacking independent
        trials through it would silently change their semantics, so the
        batched executor must refuse it.
        """
        return not self.training

    @property
    def elementwise_exact(self) -> bool:
        """Elementwise-exact at inference only: the moving statistics are
        per-channel constants, so each output element is a pure scalar
        function of its input element.  Training-mode statistics couple
        every element, exactly as for :attr:`batch_transparent`."""
        return not self.training

    def __init__(self, momentum: float = 0.9, epsilon: float = 1e-5) -> None:
        self.momentum = float(momentum)
        self.epsilon = float(epsilon)
        self.training = False
        self.moving_mean: Optional[Array] = None
        self.moving_var: Optional[Array] = None
        self._cache: Optional[Tuple[Array, Array, Array]] = None

    def forward(self, x: Array, gamma: Array, beta: Array) -> Array:
        channels = x.shape[-1]
        if gamma.shape != (channels,) or beta.shape != (channels,):
            raise OperatorError(
                f"BatchNorm parameter shapes {gamma.shape}/{beta.shape} do not "
                f"match channel count {channels}")
        axes = tuple(range(x.ndim - 1))
        if self.moving_mean is None:
            self.moving_mean = np.zeros(channels, dtype=np.float64)
            self.moving_var = np.ones(channels, dtype=np.float64)

        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.moving_mean = (self.momentum * self.moving_mean
                                + (1.0 - self.momentum) * mean)
            self.moving_var = (self.momentum * self.moving_var
                               + (1.0 - self.momentum) * var)
        else:
            mean = self.moving_mean
            var = self.moving_var

        inv_std = 1.0 / np.sqrt(var + self.epsilon)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std, mean)
        return gamma * x_hat + beta

    def sparse_forward(self, indices: Array, x: Array, gamma: Array,
                       beta: Array) -> Array:
        """Normalize just the elements at ``indices`` with moving statistics.

        ``inv_std`` is computed over the full channel vector and then
        sampled, replicating the dense pass's IEEE operation sequence
        bit-for-bit; ``gamma``/``beta`` arrive already gathered to the
        changed positions (channels are the last row axis, so the gather
        lands on ``indices % channels``, the same positions used here for
        the moving statistics).
        """
        if self.training or self.moving_mean is None:
            raise OperatorError(
                "sparse BatchNorm replay requires inference mode with "
                "populated moving statistics")
        channel = indices % self.moving_mean.shape[0]
        inv_std = 1.0 / np.sqrt(self.moving_var + self.epsilon)
        x_hat = (x - self.moving_mean[channel]) * inv_std[channel]
        return gamma * x_hat + beta

    def backward(self, grad, inputs, output):
        x, gamma, beta = inputs
        axes = tuple(range(x.ndim - 1))
        x_hat, inv_std, _ = self._cache
        grad_gamma = (grad * x_hat).sum(axis=axes)
        grad_beta = grad.sum(axis=axes)
        if self.training:
            n = float(np.prod([x.shape[a] for a in axes]))
            grad_xhat = grad * gamma
            grad_x = (inv_std / n) * (
                n * grad_xhat
                - grad_xhat.sum(axis=axes)
                - x_hat * (grad_xhat * x_hat).sum(axis=axes))
        else:
            grad_x = grad * gamma * inv_std
        return [grad_x, grad_gamma, grad_beta]

    def flops(self, input_shapes, output_shape) -> int:
        return 4 * int(np.prod(output_shape))

    def config(self) -> Dict[str, float]:
        return {"momentum": self.momentum, "epsilon": self.epsilon}


class LocalResponseNorm(Operator):
    """Local response normalization across channels (AlexNet-style).

    Batch-transparent: the normalization window slides over the channel
    axis only, so rows stay independent and batched replay is safe.
    """

    category = "normalization"
    #: Not elementwise-exact: each output element mixes a window of
    #: neighboring channels, so sparse deltas densify here.
    elementwise_exact = False

    def __init__(self, depth_radius: int = 2, bias: float = 1.0,
                 alpha: float = 1e-4, beta: float = 0.75) -> None:
        self.depth_radius = int(depth_radius)
        self.bias = float(bias)
        self.alpha = float(alpha)
        self.beta = float(beta)

    def _scale(self, x: Array) -> Array:
        squared = x ** 2
        channels = x.shape[-1]
        acc = np.zeros_like(x)
        for offset in range(-self.depth_radius, self.depth_radius + 1):
            lo = max(0, offset)
            hi = min(channels, channels + offset)
            acc[..., lo:hi] += squared[..., lo - offset:hi - offset]
        return self.bias + self.alpha * acc

    def forward(self, x: Array) -> Array:
        return x / (self._scale(x) ** self.beta)

    def backward(self, grad, inputs, output):
        # Exact LRN gradients are rarely needed (LRN appears only in AlexNet's
        # inference path here); a straight-through scaled gradient keeps
        # training stable and is the standard simplification.
        (x,) = inputs
        scale = self._scale(x)
        return [grad / (scale ** self.beta)]

    def flops(self, input_shapes, output_shape) -> int:
        window = 2 * self.depth_radius + 1
        return (window + 3) * int(np.prod(output_shape))

    def config(self) -> Dict[str, float]:
        return {"depth_radius": self.depth_radius, "bias": self.bias,
                "alpha": self.alpha, "beta": self.beta}
