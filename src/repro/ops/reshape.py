"""Shape-manipulation operators: reshape, flatten, concatenate, pad, dropout.

Reshape and Concatenate are specifically called out in the paper's
Algorithm 1 as operators to which the preceding activation's restriction
bound can be extended (they carry values through unchanged, so any value that
was in range before them must remain in range after them).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .base import Array, Operator, OperatorError


class Reshape(Operator):
    """Reshape to a fixed target shape (excluding the batch dimension).

    Batch-transparent by construction: the hardcoded ``target_shape``
    deliberately excludes the batch axis (``forward`` re-prepends
    ``x.shape[0]``), so the same node handles batch-1 golden runs and
    B-row batched replays without baking a batch size into the graph.
    """

    category = "reshape"
    #: Values pass through bit-unchanged and the C-order flat offset of
    #: every element within its row is preserved (only the row *shape*
    #: changes), so the sparse index remap is the identity.
    elementwise_exact = True
    sparse_kind = "remap"

    def __init__(self, target_shape: Tuple[int, ...]) -> None:
        self.target_shape = tuple(int(d) for d in target_shape)

    def forward(self, x: Array) -> Array:
        return x.reshape((x.shape[0],) + self.target_shape)

    def sparse_remap(self, input_position, indices, input_row_shapes,
                     output_row_shape):
        return indices

    def backward(self, grad, inputs, output):
        (x,) = inputs
        return [grad.reshape(x.shape)]

    def flops(self, input_shapes, output_shape) -> int:
        return 0

    def config(self) -> Dict[str, object]:
        return {"target_shape": self.target_shape}


class Flatten(Operator):
    """Flatten all non-batch dimensions into one."""

    category = "reshape"
    #: Identity remap, exactly as :class:`Reshape`.
    elementwise_exact = True
    sparse_kind = "remap"

    def forward(self, x: Array) -> Array:
        return x.reshape(x.shape[0], -1)

    def sparse_remap(self, input_position, indices, input_row_shapes,
                     output_row_shape):
        return indices

    def backward(self, grad, inputs, output):
        (x,) = inputs
        return [grad.reshape(x.shape)]

    def flops(self, input_shapes, output_shape) -> int:
        return 0


class Concatenate(Operator):
    """Concatenate inputs along a given axis.

    SqueezeNet's fire modules concatenate the 1x1 and 3x3 expand branches
    along the channel axis; Algorithm 1 bounds this operator with
    ``(min(low_{j-1}, low_j), max(up_{j-1}, up_j))`` of the two feeding
    activations.
    """

    category = "concat"

    @property
    def batch_transparent(self) -> bool:
        """Transparent for any feature axis; axis 0 concatenates the batch
        dimension itself, which merges rows across trials and cannot be
        replayed batched."""
        return self.axis != 0

    sparse_kind = "remap"

    @property
    def elementwise_exact(self) -> bool:
        """Pure element movement (offset remap) for any feature axis; an
        axis-0 concat merges rows across the batch and cannot carry a
        per-row sparse delta (see :attr:`batch_transparent`)."""
        return self.axis != 0

    def __init__(self, axis: int = -1) -> None:
        self.axis = int(axis)

    def forward(self, *inputs: Array) -> Array:
        if not inputs:
            raise OperatorError("Concatenate requires at least one input")
        return np.concatenate(inputs, axis=self.axis)

    def sparse_remap(self, input_position, indices, input_row_shapes,
                     output_row_shape):
        ndim = len(output_row_shape) + 1  # rows exclude the batch axis
        axis = self.axis if self.axis >= 0 else self.axis + ndim
        if axis == 0:
            raise OperatorError(
                "axis-0 Concatenate cannot remap per-row sparse indices")
        along = axis - 1  # concat axis within the row shape
        inner = int(np.prod(output_row_shape[along + 1:], dtype=np.int64))
        in_extent = int(input_row_shapes[input_position][along])
        out_extent = int(output_row_shape[along])
        offset = int(sum(shape[along]
                         for shape in input_row_shapes[:input_position]))
        outer, rem = np.divmod(indices, in_extent * inner)
        pos, rest = np.divmod(rem, inner)
        return (outer * out_extent + pos + offset) * inner + rest

    def backward(self, grad, inputs, output):
        sizes = [inp.shape[self.axis] for inp in inputs]
        splits = np.cumsum(sizes)[:-1]
        return list(np.split(grad, splits, axis=self.axis))

    def flops(self, input_shapes, output_shape) -> int:
        return 0

    def config(self) -> Dict[str, object]:
        return {"axis": self.axis}


class Pad2D(Operator):
    """Zero-pad the spatial dimensions of an NHWC tensor."""

    category = "reshape"
    #: An index remap is possible in principle (the pad region is golden
    #: zero), but no model in the zoo routes through Pad2D, so it keeps the
    #: dense fallback rather than carrying untested remap arithmetic.
    elementwise_exact = False

    def __init__(self, pad_h: Tuple[int, int], pad_w: Tuple[int, int]) -> None:
        self.pad_h = (int(pad_h[0]), int(pad_h[1]))
        self.pad_w = (int(pad_w[0]), int(pad_w[1]))

    def forward(self, x: Array) -> Array:
        if x.ndim != 4:
            raise OperatorError(f"Pad2D expects NHWC input, got {x.shape}")
        return np.pad(x, ((0, 0), self.pad_h, self.pad_w, (0, 0)),
                      mode="constant")

    def backward(self, grad, inputs, output):
        (x,) = inputs
        h, w = x.shape[1], x.shape[2]
        return [grad[:, self.pad_h[0]:self.pad_h[0] + h,
                     self.pad_w[0]:self.pad_w[0] + w, :]]

    def flops(self, input_shapes, output_shape) -> int:
        return 0

    def config(self) -> Dict[str, object]:
        return {"pad_h": self.pad_h, "pad_w": self.pad_w}


class Dropout(Operator):
    """Inverted dropout.

    Behaves as identity at inference (the mode the fault model targets) and
    applies a random mask during training.  The executor flips
    :attr:`training` through the trainer.
    """

    @property
    def batch_transparent(self) -> bool:
        """Batch-transparent at inference (identity) only.

        A training-mode dropout mask is drawn from one shared RNG stream
        over the whole array, so the mask a row receives depends on the
        batch shape and on the rows evaluated before it — stacked trials
        would not reproduce their batch-1 draws.
        """
        return not self.training or self.rate == 0.0

    @property
    def elementwise_exact(self) -> bool:
        """Identity at inference (the default ``sparse_forward`` just passes
        values through); a training-mode mask is a whole-array random draw
        that per-element replay cannot reproduce."""
        return not self.training or self.rate == 0.0

    def __init__(self, rate: float = 0.5, seed: Optional[int] = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self.training = False
        self._rng = np.random.default_rng(seed)
        self._mask: Optional[Array] = None

    def forward(self, x: Array) -> Array:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad, inputs, output):
        if self._mask is None:
            return [grad]
        return [grad * self._mask]

    def flops(self, input_shapes, output_shape) -> int:
        return 0

    def config(self) -> Dict[str, float]:
        return {"rate": self.rate}
