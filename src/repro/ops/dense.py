"""Dense (fully-connected) and bias operators.

Batch-transparency audit: all operators here are row-independent at
inference (``MatMul`` rows, elementwise ``Add``/``Multiply``/``Scale``, the
Ranger range checks) and thus safe for batched trial replay.  The
elementwise binaries additionally broadcast a batch-1 operand against a
B-row one, which is how the batched executor mixes cached golden values
with stacked dirty frontiers without materializing B copies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .base import Array, Operator, OperatorError


class MatMul(Operator):
    """Matrix multiplication ``x @ w`` for 2-D inputs.

    ``x`` has shape ``(batch, in_features)`` and ``w`` has shape
    ``(in_features, out_features)``.
    """

    #: Not elementwise-exact: every output element is a reduction over the
    #: whole input row, so sparse deltas densify here.
    elementwise_exact = False

    def forward(self, x: Array, w: Array) -> Array:
        if x.ndim != 2 or w.ndim != 2:
            raise OperatorError(
                f"MatMul expects 2-D operands, got {x.shape} and {w.shape}")
        if x.shape[1] != w.shape[0]:
            raise OperatorError(
                f"MatMul inner dimensions differ: {x.shape} vs {w.shape}")
        return x @ w

    def backward(self, grad, inputs, output):
        x, w = inputs
        return [grad @ w.T, x.T @ grad]

    def flops(self, input_shapes, output_shape) -> int:
        (batch, in_features), (_, out_features) = input_shapes
        return 2 * batch * in_features * out_features


class BiasAdd(Operator):
    """Adds a bias vector to the last axis of the input."""

    elementwise_exact = True
    supports_out = True

    def forward(self, x: Array, b: Array) -> Array:
        if b.ndim != 1 or x.shape[-1] != b.shape[0]:
            raise OperatorError(
                f"BiasAdd shape mismatch: input {x.shape}, bias {b.shape}")
        return x + b

    def forward_out(self, out: Array, x: Array, b: Array) -> Array:
        if b.ndim != 1 or x.shape[-1] != b.shape[0]:
            raise OperatorError(
                f"BiasAdd shape mismatch: input {x.shape}, bias {b.shape}")
        return np.add(x, b, out=out)

    def sparse_forward(self, indices: Array, x: Array, b: Array) -> Array:
        # The bias arrives gathered to the changed positions (the same
        # last-axis broadcast the dense pass applies), so forward()'s shape
        # guard must not run against the 1-D gathered operands.
        return x + b

    def backward(self, grad, inputs, output):
        reduce_axes = tuple(range(grad.ndim - 1))
        return [grad, grad.sum(axis=reduce_axes)]

    def flops(self, input_shapes, output_shape) -> int:
        return int(np.prod(output_shape))


class Add(Operator):
    """Element-wise addition (used by ResNet shortcut connections)."""

    elementwise_exact = True
    supports_out = True

    def forward(self, a: Array, b: Array) -> Array:
        return a + b

    def forward_out(self, out: Array, a: Array, b: Array) -> Array:
        return np.add(a, b, out=out)

    def backward(self, grad, inputs, output):
        a, b = inputs
        return [_unbroadcast(grad, a.shape), _unbroadcast(grad, b.shape)]


class Multiply(Operator):
    """Element-wise multiplication."""

    elementwise_exact = True
    supports_out = True

    def forward(self, a: Array, b: Array) -> Array:
        return a * b

    def forward_out(self, out: Array, a: Array, b: Array) -> Array:
        return np.multiply(a, b, out=out)

    def backward(self, grad, inputs, output):
        a, b = inputs
        return [_unbroadcast(grad * b, a.shape), _unbroadcast(grad * a, b.shape)]


class Scale(Operator):
    """Multiplication by a compile-time scalar constant."""

    elementwise_exact = True
    supports_out = True

    def __init__(self, factor: float) -> None:
        self.factor = float(factor)

    def forward(self, x: Array) -> Array:
        return x * self.factor

    def forward_out(self, out: Array, x: Array) -> Array:
        return np.multiply(x, self.factor, out=out)

    def backward(self, grad, inputs, output):
        return [grad * self.factor]

    def config(self) -> Dict[str, float]:
        return {"factor": self.factor}


class Minimum(Operator):
    """Element-wise minimum — one half of Ranger's range check."""

    category = "protection"
    injectable = False
    #: Per-element comparison against a broadcast bound; the executor
    #: gathers the bound at the changed positions.
    elementwise_exact = True
    supports_out = True

    def forward(self, x: Array, bound: Array) -> Array:
        return np.minimum(x, bound)

    def forward_out(self, out: Array, x: Array, bound: Array) -> Array:
        return np.minimum(x, bound, out=out)

    def backward(self, grad, inputs, output):
        x, bound = inputs
        mask = (x <= bound)
        return [grad * mask, _unbroadcast(grad * ~mask, np.shape(bound))]


class Maximum(Operator):
    """Element-wise maximum — the other half of Ranger's range check."""

    category = "protection"
    injectable = False
    #: Per-element comparison against a broadcast bound; the executor
    #: gathers the bound at the changed positions.
    elementwise_exact = True
    supports_out = True

    def forward(self, x: Array, bound: Array) -> Array:
        return np.maximum(x, bound)

    def forward_out(self, out: Array, x: Array, bound: Array) -> Array:
        return np.maximum(x, bound, out=out)

    def backward(self, grad, inputs, output):
        x, bound = inputs
        mask = (x >= bound)
        return [grad * mask, _unbroadcast(grad * ~mask, np.shape(bound))]


class ClipByValue(Operator):
    """Fused ``clip(x, low, high)`` used by Ranger's clip policy."""

    category = "protection"
    injectable = False
    #: Per-element clip against compile-time scalar bounds.
    elementwise_exact = True
    supports_out = True

    def __init__(self, low: float, high: float) -> None:
        if low > high:
            raise ValueError(f"clip lower bound {low} exceeds upper bound {high}")
        self.low = float(low)
        self.high = float(high)

    def forward(self, x: Array) -> Array:
        return np.clip(x, self.low, self.high)

    def forward_out(self, out: Array, x: Array) -> Array:
        return np.clip(x, self.low, self.high, out=out)

    def backward(self, grad, inputs, output):
        (x,) = inputs
        mask = (x >= self.low) & (x <= self.high)
        return [grad * mask]

    def flops(self, input_shapes, output_shape) -> int:
        # One comparison against each bound per element.
        return 2 * int(np.prod(output_shape))

    def config(self) -> Dict[str, float]:
        return {"low": self.low, "high": self.high}


def _unbroadcast(grad: Array, shape: Tuple[int, ...]) -> Array:
    """Reduce a gradient back to ``shape`` after numpy broadcasting."""
    if np.shape(grad) == tuple(shape):
        return grad
    grad = np.asarray(grad)
    # Sum over leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were 1 in the original shape.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)
