"""Numpy operator library used by the dataflow-graph substrate.

This package provides every operator needed by the eight DNNs evaluated in
the Ranger paper (LeNet, AlexNet, VGG11/16, ResNet-18, SqueezeNet, Nvidia
Dave, Comma.ai), plus the protection operators (Minimum / Maximum /
ClipByValue) that Ranger's graph transformation inserts.
"""

from .base import (
    Array,
    Constant,
    Identity,
    Operator,
    OperatorError,
    Placeholder,
    Variable,
)
from .activations import (
    ACTIVATION_REGISTRY,
    Activation,
    Atan,
    ELU,
    LeakyReLU,
    ReLU,
    ScaledAtan,
    Sigmoid,
    Softmax,
    Tanh,
    make_activation,
)
from .conv import Conv2D, conv_output_size
from .dense import (
    Add,
    BiasAdd,
    ClipByValue,
    MatMul,
    Maximum,
    Minimum,
    Multiply,
    Scale,
)
from .norm import BatchNorm, LocalResponseNorm
from .pooling import AvgPool2D, GlobalAvgPool, MaxPool2D
from .reshape import Concatenate, Dropout, Flatten, Pad2D, Reshape

__all__ = [
    "ACTIVATION_REGISTRY",
    "Activation",
    "Add",
    "Array",
    "Atan",
    "AvgPool2D",
    "BatchNorm",
    "BiasAdd",
    "ClipByValue",
    "Concatenate",
    "Constant",
    "Conv2D",
    "Dropout",
    "ELU",
    "Flatten",
    "GlobalAvgPool",
    "Identity",
    "LeakyReLU",
    "LocalResponseNorm",
    "MatMul",
    "Maximum",
    "MaxPool2D",
    "Minimum",
    "Multiply",
    "Operator",
    "OperatorError",
    "Pad2D",
    "Placeholder",
    "ReLU",
    "Reshape",
    "Scale",
    "ScaledAtan",
    "Sigmoid",
    "Softmax",
    "Tanh",
    "Variable",
    "conv_output_size",
    "make_activation",
]
