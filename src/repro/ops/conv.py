"""2-D convolution via im2col.

All convolutions in the model zoo use the NHWC layout (batch, height, width,
channels), which matches the TensorFlow models the paper instrumented.  The
implementation lowers convolution to a single matrix multiplication over an
im2col patch matrix; the backward pass reuses the same patch matrix, giving a
compact and numerically verifiable gradient.

Batch-transparency audit: convolution treats every batch row independently
(patches never cross rows), so it is safe for batched trial replay; note
that the im2col matmul is exactly the kind of BLAS call whose blocking —
and therefore last-ULP rounding — depends on the batch shape, which is why
batched replay carries the ULP_TOLERANT equivalence mode.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .base import Array, Operator, OperatorError


def compute_padding(in_size: int, kernel: int, stride: int,
                    padding: str) -> Tuple[int, int]:
    """Return (pad_before, pad_after) for one spatial dimension.

    ``"same"`` reproduces TensorFlow's SAME padding (output size =
    ceil(in / stride)); ``"valid"`` applies no padding.
    """
    if padding == "valid":
        return 0, 0
    if padding != "same":
        raise ValueError(f"unknown padding mode '{padding}'")
    out_size = -(-in_size // stride)  # ceil division
    total = max((out_size - 1) * stride + kernel - in_size, 0)
    before = total // 2
    return before, total - before


def conv_output_size(in_size: int, kernel: int, stride: int,
                     padding: str) -> int:
    """Spatial output size of a convolution / pooling window."""
    before, after = compute_padding(in_size, kernel, stride, padding)
    return (in_size + before + after - kernel) // stride + 1


def im2col(x: Array, kh: int, kw: int, stride: int,
           padding: str) -> Tuple[Array, Tuple[int, int]]:
    """Extract sliding patches from an NHWC tensor.

    Returns a matrix of shape ``(batch * out_h * out_w, kh * kw * channels)``
    together with the output spatial size.
    """
    batch, h, w, c = x.shape
    pt, pb = compute_padding(h, kh, stride, padding)
    pl, pr = compute_padding(w, kw, stride, padding)
    if pt or pb or pl or pr:
        x = np.pad(x, ((0, 0), (pt, pb), (pl, pr), (0, 0)), mode="constant")
    ph, pw = x.shape[1], x.shape[2]
    out_h = (ph - kh) // stride + 1
    out_w = (pw - kw) // stride + 1

    strides = x.strides
    window = np.lib.stride_tricks.as_strided(
        x,
        shape=(batch, out_h, out_w, kh, kw, c),
        strides=(strides[0], strides[1] * stride, strides[2] * stride,
                 strides[1], strides[2], strides[3]),
        writeable=False,
    )
    cols = window.reshape(batch * out_h * out_w, kh * kw * c)
    return np.ascontiguousarray(cols), (out_h, out_w)


def col2im(cols: Array, x_shape: Tuple[int, int, int, int], kh: int, kw: int,
           stride: int, padding: str) -> Array:
    """Inverse of :func:`im2col` — scatter-add patch gradients back."""
    batch, h, w, c = x_shape
    pt, pb = compute_padding(h, kh, stride, padding)
    pl, pr = compute_padding(w, kw, stride, padding)
    ph, pw = h + pt + pb, w + pl + pr
    out_h = (ph - kh) // stride + 1
    out_w = (pw - kw) // stride + 1

    grad_padded = np.zeros((batch, ph, pw, c), dtype=cols.dtype)
    cols = cols.reshape(batch, out_h, out_w, kh, kw, c)
    for i in range(kh):
        for j in range(kw):
            grad_padded[:, i:i + stride * out_h:stride,
                        j:j + stride * out_w:stride, :] += cols[:, :, :, i, j, :]
    if pt or pb or pl or pr:
        return grad_padded[:, pt:pt + h, pl:pl + w, :]
    return grad_padded


class Conv2D(Operator):
    """2-D convolution with NHWC input and HWIO kernel layout.

    Inputs: ``x`` of shape ``(batch, h, w, in_channels)`` and ``kernel`` of
    shape ``(kh, kw, in_channels, out_channels)``.
    """

    #: Not elementwise-exact: every output element reduces a kh*kw*in_c
    #: window, so sparse deltas densify here (and may re-sparsify after —
    #: a k-element input delta touches only the windows that cover it).
    elementwise_exact = False

    def __init__(self, stride: int = 1, padding: str = "same") -> None:
        if stride < 1:
            raise ValueError(f"stride must be positive, got {stride}")
        if padding not in ("same", "valid"):
            raise ValueError(f"padding must be 'same' or 'valid', got '{padding}'")
        self.stride = int(stride)
        self.padding = padding

    def forward(self, x: Array, kernel: Array) -> Array:
        if x.ndim != 4 or kernel.ndim != 4:
            raise OperatorError(
                f"Conv2D expects 4-D input and kernel, got {x.shape} and "
                f"{kernel.shape}")
        kh, kw, in_c, out_c = kernel.shape
        if x.shape[3] != in_c:
            raise OperatorError(
                f"Conv2D channel mismatch: input has {x.shape[3]} channels, "
                f"kernel expects {in_c}")
        cols, (out_h, out_w) = im2col(x, kh, kw, self.stride, self.padding)
        out = cols @ kernel.reshape(kh * kw * in_c, out_c)
        return out.reshape(x.shape[0], out_h, out_w, out_c)

    def backward(self, grad, inputs, output):
        x, kernel = inputs
        kh, kw, in_c, out_c = kernel.shape
        cols, (out_h, out_w) = im2col(x, kh, kw, self.stride, self.padding)
        grad_mat = grad.reshape(-1, out_c)
        grad_kernel = (cols.T @ grad_mat).reshape(kernel.shape)
        grad_cols = grad_mat @ kernel.reshape(kh * kw * in_c, out_c).T
        grad_x = col2im(grad_cols, x.shape, kh, kw, self.stride, self.padding)
        return [grad_x, grad_kernel]

    def flops(self, input_shapes, output_shape) -> int:
        kernel_shape = input_shapes[1]
        kh, kw, in_c, _ = kernel_shape
        return 2 * kh * kw * in_c * int(np.prod(output_shape))

    def config(self) -> Dict[str, object]:
        return {"stride": self.stride, "padding": self.padding}
