"""Pooling operators (NHWC layout).

Pooling operators carry the category ``"pooling"`` so that Ranger's
Algorithm 1 can extend the restriction bound of a preceding activation onto
them (paper, Section III-C, step 2).

Batch-transparency audit: pooling windows are strictly spatial (the strided
views never cross the batch axis) and ``GlobalAvgPool`` reduces only the
spatial axes, so every operator here is batch-transparent and safe for
batched trial replay.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .base import Array, Operator, OperatorError
from .conv import compute_padding


def _pool_windows(x: Array, pool: int, stride: int,
                  padding: str, pad_value: float) -> Tuple[Array, Tuple[int, int]]:
    """Return a strided view of pooling windows and the output spatial size."""
    batch, h, w, c = x.shape
    pt, pb = compute_padding(h, pool, stride, padding)
    pl, pr = compute_padding(w, pool, stride, padding)
    if pt or pb or pl or pr:
        x = np.pad(x, ((0, 0), (pt, pb), (pl, pr), (0, 0)),
                   mode="constant", constant_values=pad_value)
    ph, pw = x.shape[1], x.shape[2]
    out_h = (ph - pool) // stride + 1
    out_w = (pw - pool) // stride + 1
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(batch, out_h, out_w, pool, pool, c),
        strides=(strides[0], strides[1] * stride, strides[2] * stride,
                 strides[1], strides[2], strides[3]),
        writeable=False,
    )
    return windows, (out_h, out_w)


class MaxPool2D(Operator):
    """Max pooling over square windows."""

    category = "pooling"
    #: Not elementwise-exact: window reductions mix elements, so sparse
    #: deltas densify at every pooling operator.
    elementwise_exact = False

    def __init__(self, pool: int = 2, stride: Optional[int] = None,
                 padding: str = "valid") -> None:
        if pool < 1:
            raise ValueError(f"pool size must be positive, got {pool}")
        self.pool = int(pool)
        self.stride = int(stride) if stride is not None else int(pool)
        self.padding = padding

    def forward(self, x: Array) -> Array:
        if x.ndim != 4:
            raise OperatorError(f"MaxPool2D expects NHWC input, got {x.shape}")
        windows, _ = _pool_windows(x, self.pool, self.stride, self.padding,
                                   pad_value=-np.inf)
        return windows.max(axis=(3, 4))

    def backward(self, grad, inputs, output):
        (x,) = inputs
        batch, h, w, c = x.shape
        pt, _ = compute_padding(h, self.pool, self.stride, self.padding)
        pl, _ = compute_padding(w, self.pool, self.stride, self.padding)
        out_h, out_w = output.shape[1], output.shape[2]
        grad_x = np.zeros_like(x, dtype=np.float64)
        windows, _ = _pool_windows(x, self.pool, self.stride, self.padding,
                                   pad_value=-np.inf)
        # For every output position, route the gradient to the argmax element.
        flat = windows.reshape(batch, out_h, out_w, self.pool * self.pool, c)
        argmax = flat.argmax(axis=3)  # (batch, out_h, out_w, c)
        for oi in range(out_h):
            for oj in range(out_w):
                idx = argmax[:, oi, oj, :]  # (batch, c)
                ki, kj = np.divmod(idx, self.pool)
                src_i = oi * self.stride + ki - pt
                src_j = oj * self.stride + kj - pl
                valid = ((src_i >= 0) & (src_i < h) & (src_j >= 0) & (src_j < w))
                b_idx, c_idx = np.nonzero(valid)
                np.add.at(grad_x,
                          (b_idx, src_i[b_idx, c_idx], src_j[b_idx, c_idx], c_idx),
                          grad[b_idx, oi, oj, c_idx])
        return [grad_x]

    def flops(self, input_shapes, output_shape) -> int:
        return self.pool * self.pool * int(np.prod(output_shape))

    def config(self) -> Dict[str, object]:
        return {"pool": self.pool, "stride": self.stride, "padding": self.padding}


class AvgPool2D(Operator):
    """Average pooling over square windows."""

    category = "pooling"

    def __init__(self, pool: int = 2, stride: Optional[int] = None,
                 padding: str = "valid") -> None:
        if pool < 1:
            raise ValueError(f"pool size must be positive, got {pool}")
        self.pool = int(pool)
        self.stride = int(stride) if stride is not None else int(pool)
        self.padding = padding

    def forward(self, x: Array) -> Array:
        if x.ndim != 4:
            raise OperatorError(f"AvgPool2D expects NHWC input, got {x.shape}")
        windows, _ = _pool_windows(x, self.pool, self.stride, self.padding,
                                   pad_value=0.0)
        return windows.mean(axis=(3, 4))

    def backward(self, grad, inputs, output):
        (x,) = inputs
        batch, h, w, c = x.shape
        pt, _ = compute_padding(h, self.pool, self.stride, self.padding)
        pl, _ = compute_padding(w, self.pool, self.stride, self.padding)
        out_h, out_w = output.shape[1], output.shape[2]
        share = 1.0 / (self.pool * self.pool)
        grad_x = np.zeros_like(x, dtype=np.float64)
        for oi in range(out_h):
            for oj in range(out_w):
                i0 = oi * self.stride - pt
                j0 = oj * self.stride - pl
                for ki in range(self.pool):
                    for kj in range(self.pool):
                        si, sj = i0 + ki, j0 + kj
                        if 0 <= si < h and 0 <= sj < w:
                            grad_x[:, si, sj, :] += grad[:, oi, oj, :] * share
        return [grad_x]

    def flops(self, input_shapes, output_shape) -> int:
        return self.pool * self.pool * int(np.prod(output_shape))

    def config(self) -> Dict[str, object]:
        return {"pool": self.pool, "stride": self.stride, "padding": self.padding}


class GlobalAvgPool(Operator):
    """Global average pooling — reduces NHWC to (batch, channels).

    Used by ResNet-18 and SqueezeNet before their classification heads.
    """

    category = "pooling"

    def forward(self, x: Array) -> Array:
        if x.ndim != 4:
            raise OperatorError(f"GlobalAvgPool expects NHWC input, got {x.shape}")
        return x.mean(axis=(1, 2))

    def backward(self, grad, inputs, output):
        (x,) = inputs
        batch, h, w, c = x.shape
        expanded = grad[:, None, None, :] / float(h * w)
        return [np.broadcast_to(expanded, x.shape).copy()]

    def flops(self, input_shapes, output_shape) -> int:
        return int(np.prod(input_shapes[0]))
