"""Operator base classes for the dataflow-graph substrate.

Every computation in the reproduction — model inference, training, fault
injection, and Ranger's range-restriction operators — is expressed as a graph
of :class:`Operator` nodes.  An operator is a small, stateless-by-default
object exposing a ``forward`` method (numpy in, numpy out) and, for the
trainable subset, a ``backward`` method that returns gradients with respect to
each input.

The design deliberately mirrors a TensorFlow-1.x-style static graph: operators
are named, immutable once created, and the graph is append-only.  Ranger's
Algorithm 1 (see ``repro.core.transform``) relies on exactly that structure.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

Array = np.ndarray


class OperatorError(RuntimeError):
    """Raised when an operator receives inputs it cannot process."""


class Operator:
    """Base class for all graph operators.

    Subclasses implement :meth:`forward` and, when they participate in
    training, :meth:`backward`.  ``forward`` receives the already-evaluated
    input arrays in the order the node's inputs were declared, and returns a
    single output array.  ``backward`` receives the upstream gradient together
    with the cached forward inputs/output and returns one gradient per input
    (``None`` for inputs that do not need gradients, e.g. integer shape
    arguments).
    """

    #: Category tag used by Ranger's layer-selection logic and the fault
    #: injector.  One of: "input", "variable", "compute", "activation",
    #: "pooling", "reshape", "concat", "normalization", "output",
    #: "protection".
    category: str = "compute"

    #: Whether the operator is a legal fault-injection site.  Inputs and
    #: constants are excluded (the paper's fault model injects into the output
    #: of computational operators only).
    injectable: bool = True

    #: **Batch-transparency contract** (audited for the batched replay
    #: engine).  An operator is batch-transparent when, at inference, row
    #: ``i`` of its output depends only on row ``i`` of each batch-carrying
    #: input (plus the batch-invariant parameter inputs) — i.e. stacking B
    #: independent batch-1 inputs yields the B stacked batch-1 outputs, up
    #: to BLAS reassociation noise.  Every inference-mode operator in this
    #: codebase satisfies the contract; the two training-mode exceptions
    #: (``BatchNorm`` with batch statistics, ``Dropout`` with an active
    #: mask) override this as a property so the batched executor can refuse
    #: them with a clear error instead of silently coupling trials.
    batch_transparent: bool = True

    #: Axis of the batch dimension in the operator's *output*, or ``None``
    #: for batch-invariant outputs (weights, constants, restriction bounds)
    #: that are implicitly shared by every row of a batched evaluation.
    #: The batched executor uses this to decide which cached inputs must be
    #: broadcast to the stacked batch and which are passed through as-is.
    batch_axis: Optional[int] = 0

    #: **Elementwise-exactness contract** (audited for sparse delta replay).
    #: An operator is elementwise-exact when, at inference, output element
    #: ``i`` of a row is a pure, deterministic function of element ``i`` of
    #: each batch-carrying input row (plus batch-invariant parameters),
    #: computed with per-element IEEE-754 arithmetic whose result bits do not
    #: depend on which *other* elements are evaluated alongside it.  The
    #: sparse replay engine then applies the operator to just the changed
    #: elements of a cached golden activation (:meth:`sparse_forward` /
    #: :meth:`sparse_remap`) and gets results bit-identical to a dense
    #: forward pass at those positions.  False for anything that mixes
    #: elements within a row (convolution, matmul, pooling, softmax, LRN) —
    #: there the dirty frontier densifies — and for non-deterministic
    #: operators (a fresh random draw cannot be replayed per element).
    #: ``BatchNorm``, ``Dropout`` and ``Concatenate`` override this as a
    #: property, mirroring :attr:`batch_transparent`.
    elementwise_exact: bool = False

    #: How a sparse delta passes through an elementwise-exact operator:
    #: ``"value"`` operators keep the changed indices and map the *values*
    #: (:meth:`sparse_forward`); ``"remap"`` operators carry values through
    #: unchanged and map the *indices* (:meth:`sparse_remap`) — reshape,
    #: flatten and concat move elements without altering their bits.
    sparse_kind: str = "value"

    #: **Preallocated-output contract** (audited for the replay buffer
    #: arena).  True when :meth:`forward_out` writes the forward result
    #: into a caller-provided buffer with bits identical to
    #: :meth:`forward` — each override is a re-expression of the same
    #: IEEE-754 elementwise computation through ufunc ``out=`` arguments
    #: (using only bit-exact rewrites such as commuting a multiply), so
    #: buffer reuse can never change a result byte.  Operators that
    #: return views (``Identity``, reshape) or allocate internally
    #: (matmul, conv) keep the default and the arena skips them.
    supports_out: bool = False

    def forward(self, *inputs: Array) -> Array:
        raise NotImplementedError

    def forward_out(self, out: Array, *inputs: Array) -> Array:
        """Forward pass writing into ``out`` (same shape/dtype as the
        result).  ``out`` is never aliased with any input — the arena
        keys buffers per node, and a DAG node is not its own input.
        The default ignores ``out`` and defers to :meth:`forward`;
        overrides must return ``out``.  Only called when
        :attr:`supports_out` is True.
        """
        return self.forward(*inputs)

    def sparse_forward(self, indices: Array, *inputs: Array) -> Array:
        """Evaluate only the row elements at C-order flat ``indices``.

        ``inputs`` mirror :meth:`forward`'s arguments, gathered to 1-D
        arrays aligned with ``indices``: the executor gathers batch-carrying
        inputs from their golden caches (with each input's own delta
        overlaid) and samples batch-invariant parameters through the same
        broadcast the dense pass applies.  The default defers to
        :meth:`forward`, which is bit-exact for every shape-agnostic
        elementwise expression (``np.maximum(x, 0.0)`` computes the same
        bits on a gathered 1-D subset as on the full array); operators whose
        ``forward`` inspects array shapes (``BiasAdd``, ``BatchNorm``)
        override it.  Only meaningful when :attr:`elementwise_exact` is True
        and :attr:`sparse_kind` is ``"value"``.
        """
        return self.forward(*inputs)

    def sparse_remap(self, input_position: int, indices: Array,
                     input_row_shapes: Sequence[Tuple[int, ...]],
                     output_row_shape: Tuple[int, ...]) -> Array:
        """Map within-row flat ``indices`` of one input to output positions.

        For :attr:`sparse_kind` ``"remap"`` operators only: values pass
        through bit-unchanged, so the delta is propagated by translating
        each changed input position (C-order flat within the row, for the
        input at ``input_position``) to its C-order flat position within the
        output row.  The mapping must be injective across inputs and
        strictly increasing in ``indices`` for a fixed input.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not remap sparse indices")

    def backward(self, grad: Array, inputs: Sequence[Array],
                 output: Array) -> List[Optional[Array]]:
        raise NotImplementedError(
            f"{type(self).__name__} does not support backpropagation")

    # -- introspection -----------------------------------------------------

    def flops(self, input_shapes: Sequence[Tuple[int, ...]],
              output_shape: Tuple[int, ...]) -> int:
        """Floating-point operation count for one forward evaluation.

        The default estimate is one operation per output element, which is
        accurate for element-wise operators; heavier operators (convolution,
        matmul, pooling) override this.
        """
        return int(np.prod(output_shape))

    def config(self) -> Dict[str, Any]:
        """A JSON-serializable description of the operator's parameters."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cfg = ", ".join(f"{k}={v!r}" for k, v in self.config().items())
        return f"{type(self).__name__}({cfg})"


class Placeholder(Operator):
    """Graph input.  Its value is supplied through the executor's feed dict."""

    category = "input"
    injectable = False

    def __init__(self, name: str = "input",
                 shape: Optional[Tuple[int, ...]] = None) -> None:
        self.name = name
        self.shape = shape

    def forward(self, *inputs: Array) -> Array:
        raise OperatorError(
            f"placeholder '{self.name}' must be fed a value at execution time")

    def config(self) -> Dict[str, Any]:
        return {"name": self.name, "shape": self.shape}


class Constant(Operator):
    """A fixed array baked into the graph (e.g. restriction bounds)."""

    category = "variable"
    injectable = False
    #: Constants (restriction bounds, shape parameters) have no batch axis:
    #: the same value is shared by every row of a batched evaluation.
    batch_axis = None

    def __init__(self, value: Array) -> None:
        self.value = np.asarray(value)

    def forward(self, *inputs: Array) -> Array:
        return self.value

    def backward(self, grad, inputs, output):
        return []

    def flops(self, input_shapes, output_shape) -> int:
        return 0

    def config(self) -> Dict[str, Any]:
        return {"shape": tuple(self.value.shape)}


class Variable(Operator):
    """A trainable parameter (weight or bias).

    The executor treats variables like constants during the forward pass, but
    the trainer accumulates gradients into :attr:`grad` and optimizers update
    :attr:`value` in place.
    """

    category = "variable"
    injectable = False

    #: Weights and biases have no batch axis; they are shared by every row
    #: of a batched evaluation exactly as in a batch-1 run.
    batch_axis = None

    def __init__(self, value: Array, trainable: bool = True,
                 name: str = "") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.trainable = trainable
        self.name = name
        self.grad: Optional[Array] = None

    def forward(self, *inputs: Array) -> Array:
        return self.value

    def backward(self, grad, inputs, output):
        return []

    def accumulate_grad(self, grad: Array) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64)
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        self.grad = None

    def flops(self, input_shapes, output_shape) -> int:
        return 0

    def config(self) -> Dict[str, Any]:
        return {"shape": tuple(self.value.shape), "trainable": self.trainable,
                "name": self.name}


class Identity(Operator):
    """Pass-through operator, useful as a named output anchor."""

    category = "reshape"
    #: The identity map is trivially elementwise-exact.
    elementwise_exact = True

    def forward(self, x: Array) -> Array:
        return x

    def backward(self, grad, inputs, output):
        return [grad]

    def flops(self, input_shapes, output_shape) -> int:
        return 0
