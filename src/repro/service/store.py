"""Content-addressed artifact store for the campaign service.

Campaigns are pure functions of their spec, so everything expensive they
produce can be keyed by content and reused across jobs, clients and (with
a disk root) server restarts:

* ``"result"`` — finished :class:`~repro.injection.CampaignResult`\\ s (or
  compare pairs), keyed by the **result fingerprint** of the submitted
  request (:func:`repro.service.serialization.result_fingerprint`).  A
  repeat submission is served without running a single trial.
* ``"golden"`` — per-input golden activation caches, keyed by the **spec
  fingerprint** (:func:`repro.injection.pool.spec_fingerprint`).  An
  overlapping campaign (same spec, different trial budget / backend)
  skips the golden rebuild, its dominant fixed cost.
* ``"ranger_profile"`` — :class:`~repro.core.profiler.BoundsProfile`
  activation profiles, keyed by a hash of (model, profile inputs, seed):
  sweep grids re-profile the same model for every figure otherwise.

Every ``get`` records a hit or a miss per kind (:meth:`ArtifactStore.stats`),
so cache behavior is observable — the CI smoke job asserts on these
counters.  Keys are hex SHA-1 digests, which double as safe file names for
the optional write-through disk backing.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from ..parallel.shm import shared_plane

#: Artifact kinds the store recognises (open set; these are the built-ins).
ARTIFACT_KINDS = ("result", "golden", "ranger_profile")

#: Default ceiling (bytes) on one golden-cache artifact **on the pickle
#: path**.  Golden caches hold every activation of every referenced
#: input; past this size the rebuild is cheaper than the private memory
#: the store would pin.  When the shared-memory cache plane is available
#: the gate is lifted entirely: the caches live once in ``/dev/shm`` and
#: every consumer maps the same physical pages, so pinning them costs
#: one copy total instead of one per process.
DEFAULT_GOLDEN_BUDGET_BYTES = 64 * 2 ** 20


def golden_caches_nbytes(caches: Dict[int, Dict[str, np.ndarray]]) -> int:
    """Total payload of a per-input golden-cache mapping."""
    return sum(np.asarray(value).nbytes
               for cache in caches.values() for value in cache.values())


def content_key(*parts: Any) -> str:
    """SHA-1 content key over pickled ``parts`` (for ad-hoc artifacts)."""
    digest = hashlib.sha1()
    for part in parts:
        digest.update(pickle.dumps(part, protocol=pickle.HIGHEST_PROTOCOL))
    return digest.hexdigest()


class SharedGoldenCaches:
    """A golden-cache artifact living on the shared-memory cache plane.

    ``get("golden", ...)`` hands this out instead of a pickled dict when
    the plane published the caches; consumers call :meth:`materialize`
    for the ``{input index: {node: activations}}`` mapping rebuilt
    around **read-only zero-copy views** of the shared segments.  The
    handle pins the segments; the store releases the pin when the entry
    is evicted or the store is closed.
    """

    def __init__(self, plane, encoded) -> None:
        self._plane = plane
        self._encoded = encoded
        self._lock = threading.Lock()
        self._cached: Optional[Dict[int, Dict[str, np.ndarray]]] = None

    @property
    def nbytes(self) -> int:
        """Shared payload size (what the segments pin in ``/dev/shm``)."""
        return self._encoded.inline_bytes + self._encoded.shared_bytes

    def materialize(self) -> Dict[int, Dict[str, np.ndarray]]:
        with self._lock:
            if self._cached is None:
                self._cached = self._plane.decode_local(
                    self._encoded.payload)
            return self._cached

    def release(self) -> None:
        """Drop the segment pins (idempotent; a prior :meth:`materialize`
        keeps its views valid — unlinking removes the name, not live
        mappings)."""
        self._encoded.release()


class ArtifactStore:
    """Content-addressed artifact cache with observable hit/miss counters.

    Thread-safe (the server's scheduler thread and client threads share
    it).  In-memory by default; pass ``root`` for write-through pickle
    persistence (``root/<kind>/<key>.pkl``) so artifacts survive server
    restarts — keys are content hashes, so a stale file is impossible,
    only an orphaned one.
    """

    def __init__(self, root: Optional[Path] = None,
                 golden_budget_bytes: int = DEFAULT_GOLDEN_BUDGET_BYTES,
                 entry_budgets: Optional[Dict[str, int]] = None,
                 byte_budgets: Optional[Dict[str, int]] = None,
                 ) -> None:
        self.root = Path(root) if root is not None else None
        self.golden_budget_bytes = golden_budget_bytes
        #: Per-kind LRU budgets: max in-memory entries / bytes per kind
        #: (unlisted kinds are unbounded, the historical behaviour).
        #: Eviction drops the *memory tier* only — a disk-rooted store
        #: keeps its write-through copy, so an evicted artifact costs a
        #: disk reload, never a recompute.
        self.entry_budgets = dict(entry_budgets or {})
        self.byte_budgets = dict(byte_budgets or {})
        self._memory: Dict[str, "OrderedDict[str, Any]"] = {}
        self._nbytes: Dict[str, Dict[str, int]] = {}
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}
        self._evictions: Dict[str, int] = {}
        self._lock = threading.Lock()

    # -- core ---------------------------------------------------------------

    def _path(self, kind: str, key: str) -> Optional[Path]:
        if self.root is None:
            return None
        return self.root / kind / f"{key}.pkl"

    def get(self, kind: str, key: str) -> Optional[Any]:
        """The stored artifact, or ``None`` — recording a hit or a miss."""
        with self._lock:
            entries = self._memory.get(kind)
            value = entries.get(key) if entries is not None else None
            if value is not None:
                entries.move_to_end(key)
                self._hits[kind] = self._hits.get(kind, 0) + 1
                return value
            path = self._path(kind, key)
            if path is not None and path.exists():
                with path.open("rb") as handle:
                    value = pickle.load(handle)
                self._insert(kind, key, value)
                self._hits[kind] = self._hits.get(kind, 0) + 1
                return value
            self._misses[kind] = self._misses.get(kind, 0) + 1
            return None

    def put(self, kind: str, key: str, value: Any,
            disk_value: Any = None) -> None:
        """Store an artifact (write-through to disk when rooted).

        ``disk_value`` overrides what the disk tier receives — the
        golden path stores a plane handle in memory but a plain pickled
        mapping on disk, so artifacts survive restarts (segments do not).
        """
        with self._lock:
            self._insert(kind, key, value)
            path = self._path(kind, key)
            if path is not None:
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = path.with_suffix(".tmp")
                with tmp.open("wb") as handle:
                    pickle.dump(value if disk_value is None else disk_value,
                                handle, protocol=pickle.HIGHEST_PROTOCOL)
                tmp.replace(path)  # atomic: readers never see partial pickles

    def _insert(self, kind: str, key: str, value: Any) -> None:
        """Memory-tier insert + LRU eviction sweep (caller holds the lock)."""
        entries = self._memory.setdefault(kind, OrderedDict())
        previous = entries.pop(key, None)
        if previous is not None and previous is not value:
            self._release_value(previous)
        entries[key] = value
        if kind in self.byte_budgets:
            self._nbytes.setdefault(kind, {})[key] = \
                self._value_nbytes(value)
        entry_budget = self.entry_budgets.get(kind)
        byte_budget = self.byte_budgets.get(kind)
        while entries and (
                (entry_budget is not None and len(entries) > entry_budget)
                or (byte_budget is not None
                    and sum(self._nbytes.get(kind, {}).values())
                    > byte_budget)):
            if len(entries) == 1:
                break  # never evict the entry just inserted
            stale_key, stale = entries.popitem(last=False)
            self._nbytes.get(kind, {}).pop(stale_key, None)
            self._release_value(stale)
            self._evictions[kind] = self._evictions.get(kind, 0) + 1

    @staticmethod
    def _release_value(value: Any) -> None:
        release = getattr(value, "release", None)
        if callable(release):
            release()

    @staticmethod
    def _value_nbytes(value: Any) -> int:
        if hasattr(value, "nbytes") and not isinstance(value, np.ndarray):
            return int(value.nbytes)
        if (isinstance(value, dict)
                and all(isinstance(entry, dict) for entry in value.values())):
            return golden_caches_nbytes(value)
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))

    def contains(self, kind: str, key: str) -> bool:
        """Presence probe that does *not* perturb the hit/miss counters."""
        with self._lock:
            if key in self._memory.get(kind, {}):
                return True
            path = self._path(kind, key)
            return path is not None and path.exists()

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-kind ``{"hits", "misses", "entries"}`` counters, plus an
        ``"evictions"`` count for kinds the LRU budgets have actually
        evicted from (omitted while zero, so unbudgeted deployments see
        the historical shape)."""
        with self._lock:
            kinds = (set(self._memory) | set(self._hits) | set(self._misses)
                     | set(self._evictions))
            out: Dict[str, Dict[str, int]] = {}
            for kind in sorted(kinds):
                counters = {"hits": self._hits.get(kind, 0),
                            "misses": self._misses.get(kind, 0),
                            "entries": len(self._memory.get(kind, {}))}
                if self._evictions.get(kind):
                    counters["evictions"] = self._evictions[kind]
                out[kind] = counters
            return out

    def close(self) -> None:
        """Drop the memory tier and release every plane-backed handle
        (idempotent; the disk tier is untouched)."""
        with self._lock:
            for entries in self._memory.values():
                for value in entries.values():
                    self._release_value(value)
            self._memory.clear()
            self._nbytes.clear()

    # -- golden caches ------------------------------------------------------

    def put_golden_caches(self, spec_key: str,
                          caches: Dict[int, Dict[str, np.ndarray]]) -> bool:
        """Store a campaign's golden caches.

        With the shared-memory cache plane available the caches are
        published once into shared segments and the store keeps a
        :class:`SharedGoldenCaches` handle — **no size gate**: the
        payload exists once in ``/dev/shm`` regardless of how many
        campaigns and workers consume it.  The disk tier (when rooted)
        still receives the plain pickled mapping, so artifacts survive
        restarts.  Without the plane the legacy pickle path applies its
        ``golden_budget_bytes`` gate unchanged.  Returns whether the
        caches were stored; empty mappings are always skipped.
        """
        if not caches:
            return False
        plane = shared_plane()
        if plane is not None:
            encoded = plane.encode(caches,
                                   body_key=f"store-golden:{spec_key}")
            if encoded is not None and encoded.shared_bytes > 0:
                handle = SharedGoldenCaches(plane, encoded)
                self.put("golden", spec_key, handle, disk_value=caches)
                return True
            if encoded is not None:
                # Nothing was worth externalizing (tiny arrays stay
                # inline) — the shared handle buys nothing; keep the
                # pickle path and its budget gate.
                encoded.release()
        if golden_caches_nbytes(caches) > self.golden_budget_bytes:
            return False
        self.put("golden", spec_key, caches)
        return True

    # -- ranger profiles ----------------------------------------------------

    @staticmethod
    def ranger_profile_key(model: Any, inputs: np.ndarray, seed: int) -> str:
        """Content key of one activation-profiling pass.

        The profile depends only on the model (graph + weights), the
        profiling inputs and the profiler seed — the selection percentile
        is applied *after* profiling, so one stored profile serves every
        percentile.
        """
        return content_key(model, np.asarray(inputs), seed)
