"""Content-addressed artifact store for the campaign service.

Campaigns are pure functions of their spec, so everything expensive they
produce can be keyed by content and reused across jobs, clients and (with
a disk root) server restarts:

* ``"result"`` — finished :class:`~repro.injection.CampaignResult`\\ s (or
  compare pairs), keyed by the **result fingerprint** of the submitted
  request (:func:`repro.service.serialization.result_fingerprint`).  A
  repeat submission is served without running a single trial.
* ``"golden"`` — per-input golden activation caches, keyed by the **spec
  fingerprint** (:func:`repro.injection.pool.spec_fingerprint`).  An
  overlapping campaign (same spec, different trial budget / backend)
  skips the golden rebuild, its dominant fixed cost.
* ``"ranger_profile"`` — :class:`~repro.core.profiler.BoundsProfile`
  activation profiles, keyed by a hash of (model, profile inputs, seed):
  sweep grids re-profile the same model for every figure otherwise.

Every ``get`` records a hit or a miss per kind (:meth:`ArtifactStore.stats`),
so cache behavior is observable — the CI smoke job asserts on these
counters.  Keys are hex SHA-1 digests, which double as safe file names for
the optional write-through disk backing.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

#: Artifact kinds the store recognises (open set; these are the built-ins).
ARTIFACT_KINDS = ("result", "golden", "ranger_profile")

#: Default ceiling (bytes) on one golden-cache artifact.  Golden caches
#: hold every activation of every referenced input; past this size the
#: rebuild is cheaper than the memory the store would pin.
DEFAULT_GOLDEN_BUDGET_BYTES = 64 * 2 ** 20


def golden_caches_nbytes(caches: Dict[int, Dict[str, np.ndarray]]) -> int:
    """Total payload of a per-input golden-cache mapping."""
    return sum(np.asarray(value).nbytes
               for cache in caches.values() for value in cache.values())


def content_key(*parts: Any) -> str:
    """SHA-1 content key over pickled ``parts`` (for ad-hoc artifacts)."""
    digest = hashlib.sha1()
    for part in parts:
        digest.update(pickle.dumps(part, protocol=pickle.HIGHEST_PROTOCOL))
    return digest.hexdigest()


class ArtifactStore:
    """Content-addressed artifact cache with observable hit/miss counters.

    Thread-safe (the server's scheduler thread and client threads share
    it).  In-memory by default; pass ``root`` for write-through pickle
    persistence (``root/<kind>/<key>.pkl``) so artifacts survive server
    restarts — keys are content hashes, so a stale file is impossible,
    only an orphaned one.
    """

    def __init__(self, root: Optional[Path] = None,
                 golden_budget_bytes: int = DEFAULT_GOLDEN_BUDGET_BYTES,
                 ) -> None:
        self.root = Path(root) if root is not None else None
        self.golden_budget_bytes = golden_budget_bytes
        self._memory: Dict[str, Dict[str, Any]] = {}
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}
        self._lock = threading.Lock()

    # -- core ---------------------------------------------------------------

    def _path(self, kind: str, key: str) -> Optional[Path]:
        if self.root is None:
            return None
        return self.root / kind / f"{key}.pkl"

    def get(self, kind: str, key: str) -> Optional[Any]:
        """The stored artifact, or ``None`` — recording a hit or a miss."""
        with self._lock:
            value = self._memory.get(kind, {}).get(key)
            if value is not None:
                self._hits[kind] = self._hits.get(kind, 0) + 1
                return value
            path = self._path(kind, key)
            if path is not None and path.exists():
                with path.open("rb") as handle:
                    value = pickle.load(handle)
                self._memory.setdefault(kind, {})[key] = value
                self._hits[kind] = self._hits.get(kind, 0) + 1
                return value
            self._misses[kind] = self._misses.get(kind, 0) + 1
            return None

    def put(self, kind: str, key: str, value: Any) -> None:
        """Store an artifact (write-through to disk when rooted)."""
        with self._lock:
            self._memory.setdefault(kind, {})[key] = value
            path = self._path(kind, key)
            if path is not None:
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = path.with_suffix(".tmp")
                with tmp.open("wb") as handle:
                    pickle.dump(value, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                tmp.replace(path)  # atomic: readers never see partial pickles

    def contains(self, kind: str, key: str) -> bool:
        """Presence probe that does *not* perturb the hit/miss counters."""
        with self._lock:
            if key in self._memory.get(kind, {}):
                return True
            path = self._path(kind, key)
            return path is not None and path.exists()

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-kind ``{"hits", "misses", "entries"}`` counters."""
        with self._lock:
            kinds = (set(self._memory) | set(self._hits) | set(self._misses))
            return {kind: {"hits": self._hits.get(kind, 0),
                           "misses": self._misses.get(kind, 0),
                           "entries": len(self._memory.get(kind, {}))}
                    for kind in sorted(kinds)}

    # -- golden caches ------------------------------------------------------

    def put_golden_caches(self, spec_key: str,
                          caches: Dict[int, Dict[str, np.ndarray]]) -> bool:
        """Store a campaign's golden caches if they fit the budget.

        Returns whether the caches were stored; empty mappings and
        over-budget payloads are skipped (the next campaign rebuilds
        lazily, exactly as without a store).
        """
        if not caches:
            return False
        if golden_caches_nbytes(caches) > self.golden_budget_bytes:
            return False
        self.put("golden", spec_key, caches)
        return True

    # -- ranger profiles ----------------------------------------------------

    @staticmethod
    def ranger_profile_key(model: Any, inputs: np.ndarray, seed: int) -> str:
        """Content key of one activation-profiling pass.

        The profile depends only on the model (graph + weights), the
        profiling inputs and the profiler seed — the selection percentile
        is applied *after* profiling, so one stored profile serves every
        percentile.
        """
        return content_key(model, np.asarray(inputs), seed)
