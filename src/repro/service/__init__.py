"""Campaign service: async scheduler + content-addressed artifact store.

A long-lived, in-process campaign server the experiment sweeps submit to
(:class:`CampaignServer` / :class:`CampaignClient`): jobs are admitted
through a prioritized queue with backpressure, executed wave-by-wave on
the campaign engine's own backends (sharing one persistent
:class:`~repro.injection.pool.CampaignPool`), streamed to subscribers as
merged-so-far snapshots, and their expensive artifacts — finished results,
golden activation caches, Ranger activation profiles — are reused across
jobs through a content-addressed :class:`ArtifactStore`.

Results are bit-identical (counts and fault records) to direct
``FaultInjectionCampaign.run()`` calls on every backend; see
``docs/service.md`` for the design and the determinism argument.
"""

from .client import CampaignClient, JobHandle
from .queue import AdmissionError, JobQueue
from .scheduler import JobCancelled, JobOutcome, WaveScheduler
from .serialization import (CampaignRequest, RunOptions, decode_request,
                            encode_request, request_from_campaign,
                            result_fingerprint)
from .server import CampaignServer, Job
from .store import ArtifactStore, content_key

__all__ = [
    "AdmissionError",
    "ArtifactStore",
    "CampaignClient",
    "CampaignRequest",
    "CampaignServer",
    "Job",
    "JobCancelled",
    "JobHandle",
    "JobOutcome",
    "JobQueue",
    "RunOptions",
    "WaveScheduler",
    "content_key",
    "decode_request",
    "encode_request",
    "request_from_campaign",
    "result_fingerprint",
]
