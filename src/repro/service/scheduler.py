"""Wave-by-wave job execution for the campaign server.

One :class:`WaveScheduler` turns an admitted
:class:`~repro.service.serialization.CampaignRequest` into its final
result, reusing the campaign engine's own backend router
(:meth:`~repro.injection.FaultInjectionCampaign.run` with explicit
``plans`` / ``trial_offset``) so serial, batched, multiprocess, pooled and
adaptive jobs all execute exactly as a direct call would.  Along the way it

* serves repeat submissions straight from the artifact store's result
  cache (checked *before* the campaign is even built),
* seeds freshly built campaigns with stored golden activation caches and
  banks the caches back after the run,
* cuts bit-exact jobs into waves and streams the merged-so-far
  :class:`~repro.injection.CampaignResult` to the job's subscribers after
  each wave (adaptive jobs stream through the engine's own ``on_wave``
  hook), and
* polls a cancellation flag between waves, so a cancel lands at the next
  wave boundary instead of orphaning worker processes mid-shard.

Determinism: results depend only on ``(seed, trial index)``, never on how
trials are sharded, so the scheduler's waves are invisible in the output —
a spec submitted through the service yields counts and fault records
bit-identical to a direct ``run()`` on every backend.  Waves are cut only
on the bit-exact ``batch_trials=1`` path; batched (ULP-tolerant) jobs
dispatch once so the packer sees the full plan list and stays bit-aligned
with a direct batched run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..injection.campaign import (CampaignResult, FaultInjectionCampaign,
                                  compare_protection)
from ..injection.pool import CampaignPool
from .serialization import CampaignRequest
from .store import ArtifactStore

#: Waves a scheduler-chunked fixed-budget job is cut into (streaming
#: granularity; the count/fault content is wave-invariant).
DEFAULT_WAVE_COUNT = 4


class JobCancelled(Exception):
    """Raised inside the scheduler when a job's cancel flag is observed."""


@dataclass
class JobOutcome:
    """What executing one request produced (and how)."""

    result: Any  # CampaignResult, or (unprotected, protected) for compares
    from_cache: bool = False
    golden_seeded: bool = False
    golden_stored: bool = False
    waves_streamed: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)


class WaveScheduler:
    """Executes admitted requests against a shared pool and artifact store.

    Parameters
    ----------
    store:
        Optional :class:`~repro.service.store.ArtifactStore` for result /
        golden-cache reuse.  Without one every job runs from scratch.
    pool:
        Optional persistent :class:`~repro.injection.pool.CampaignPool`
        jobs with ``use_pool=True`` are fanned out on.
    """

    def __init__(self, store: Optional[ArtifactStore] = None,
                 pool: Optional[CampaignPool] = None) -> None:
        self.store = store
        self.pool = pool

    # -- entry point --------------------------------------------------------

    def execute(self, request: CampaignRequest, *,
                publish: Optional[Callable[[Any], None]] = None,
                should_cancel: Optional[Callable[[], bool]] = None,
                ) -> JobOutcome:
        """Run one request to completion (or a cache hit / cancellation).

        ``publish`` receives every merged-so-far snapshot (including the
        final result, so a subscriber that arrives late still sees one
        terminal snapshot).  ``should_cancel`` is polled between waves;
        returning True raises :class:`JobCancelled`.
        """
        publish = publish or (lambda snapshot: None)
        should_cancel = should_cancel or (lambda: False)
        if request.options.trials <= 0:
            raise ValueError(
                f"trials must be positive, got {request.options.trials}")
        # Fingerprint once, at admission state: building and running the
        # campaign touches the spec's objects (lazy model/criteria state
        # rides along in their pickles), so a key computed *after* the run
        # would never match the next identical submission's lookup.
        result_key = request.result_key()
        spec_key = request.spec_key()

        if self.store is not None:
            cached = self.store.get("result", result_key)
            if cached is not None:
                publish(cached)
                return JobOutcome(result=cached, from_cache=True)
        if should_cancel():
            raise JobCancelled(result_key)

        if request.kind == "compare":
            outcome = self._run_compare(request, result_key, publish,
                                        should_cancel)
        else:
            outcome = self._run_campaign(request, result_key, spec_key,
                                         publish, should_cancel)

        if self.store is not None:
            self.store.put("result", result_key, outcome.result)
        return outcome

    # -- compare jobs -------------------------------------------------------

    def _run_compare(self, request: CampaignRequest, result_key: str,
                     publish, should_cancel) -> JobOutcome:
        options = request.options
        waves = [0]

        def on_wave(snapshots):
            if should_cancel():
                raise JobCancelled(result_key)
            waves[0] += 1
            publish(tuple(snapshots))

        pair = compare_protection(
            request.spec.model, request.protected_model, request.spec.inputs,
            fault_model=request.spec.fault_model,
            criteria=request.spec.criteria,
            dtype_policy=request.spec.dtype_policy,
            trials=options.trials, seed=request.spec.seed,
            incremental=options.incremental, workers=options.workers,
            batch_trials=options.batch_trials, equivalence=options.equivalence,
            pool=self._pool_for(options), sparse_delta=options.sparse_delta,
            target_half_width=options.target_half_width,
            wave_trials=options.wave_trials, strata=options.strata,
            z=options.z, interval_method=options.interval_method,
            joint_stop=options.joint_stop,
            on_wave=on_wave if self._engine_waved(options) else None)
        publish(pair)
        return JobOutcome(result=pair, waves_streamed=waves[0])

    # -- single campaigns ---------------------------------------------------

    def _run_campaign(self, request: CampaignRequest, result_key: str,
                      spec_key: str, publish, should_cancel) -> JobOutcome:
        options = request.options
        campaign = request.build_campaign()
        golden_seeded = self._seed_golden(spec_key, campaign)
        waves = [0]

        if self._engine_waved(options):
            # Adaptive / waved jobs: the engine owns the wave loop; stream
            # (and poll cancellation) through its on_wave hook.
            def on_wave(snapshot):
                if should_cancel():
                    raise JobCancelled(result_key)
                waves[0] += 1
                publish(snapshot)

            result = campaign.run(
                trials=options.trials, keep_faults=options.keep_faults,
                incremental=options.incremental, workers=options.workers,
                batch_trials=options.batch_trials,
                equivalence=options.equivalence, max_ulps=options.max_ulps,
                pool=self._pool_for(options),
                sparse_delta=options.sparse_delta,
                target_half_width=options.target_half_width,
                wave_trials=options.wave_trials, strata=options.strata,
                z=options.z, interval_method=options.interval_method,
                on_wave=on_wave)
        else:
            result = self._run_fixed_waved(campaign, options, publish,
                                           should_cancel, waves)

        publish(result)
        golden_stored = self._bank_golden(spec_key, campaign)
        return JobOutcome(result=result, golden_seeded=golden_seeded,
                          golden_stored=golden_stored,
                          waves_streamed=waves[0])

    def _run_fixed_waved(self, campaign: FaultInjectionCampaign, options,
                         publish, should_cancel, waves) -> CampaignResult:
        """Fixed-budget job: pre-sample once, dispatch wave-by-wave.

        Each wave is one ``run(plans=chunk, trial_offset=done)`` call —
        the same validated dispatch a direct run uses — and the
        order-insensitive :meth:`CampaignResult.merge` of the partials is
        bit-identical (counts and fault records) to the single dispatch,
        because every trial's RNG stream is keyed by its global index.
        """
        plans = campaign.generate_plans(options.trials)
        run_kwargs = dict(keep_faults=options.keep_faults,
                          incremental=options.incremental,
                          workers=options.workers,
                          batch_trials=options.batch_trials,
                          equivalence=options.equivalence,
                          max_ulps=options.max_ulps,
                          pool=self._pool_for(options),
                          sparse_delta=options.sparse_delta,
                          interval_method=options.interval_method)
        if options.batch_trials > 1:
            # ULP-tolerant path: one dispatch keeps the packing global and
            # the result bit-aligned with a direct batched run.
            waves[0] += 1
            return campaign.run(plans=plans, **run_kwargs)
        wave = max(1, math.ceil(len(plans) / DEFAULT_WAVE_COUNT))
        partials = []
        done = 0
        while done < len(plans):
            if should_cancel():
                raise JobCancelled("cancelled between waves")
            chunk = plans[done:done + wave]
            partials.append(campaign.run(plans=chunk, trial_offset=done,
                                         **run_kwargs))
            done += len(chunk)
            waves[0] += 1
            merged = CampaignResult.merge(partials)
            merged.interval_method = options.interval_method
            if done < len(plans):  # final snapshot published by the caller
                publish(merged)
        return merged

    # -- golden caches ------------------------------------------------------

    def _seed_golden(self, spec_key: str,
                     campaign: FaultInjectionCampaign) -> bool:
        if self.store is None:
            return False
        caches = self.store.get("golden", spec_key)
        if caches is None:
            return False
        if hasattr(caches, "materialize"):
            # Plane-backed handle (see SharedGoldenCaches): the mapping
            # rebuilds around read-only zero-copy views of the shared
            # segments — no unpickle, no private copy.
            caches = caches.materialize()
        # Same seeding path CampaignSpec.build uses for shipped caches:
        # the caches are a pure function of the spec, so reuse only skips
        # recomputing them.
        campaign._golden_caches.update(
            {index: dict(cache) for index, cache in caches.items()})
        return True

    def _bank_golden(self, spec_key: str,
                     campaign: FaultInjectionCampaign) -> bool:
        if self.store is None:
            return False
        caches = campaign._golden_caches
        if not caches:  # pooled/worker runs build caches worker-side
            return False
        if self.store.contains("golden", spec_key):
            return False
        return self.store.put_golden_caches(
            spec_key,
            {index: dict(cache) for index, cache in caches.items()})

    # -- helpers ------------------------------------------------------------

    def _pool_for(self, options) -> Optional[CampaignPool]:
        if not options.use_pool:
            return None
        if self.pool is None:
            raise RuntimeError(
                "request has use_pool=True but the scheduler owns no "
                "CampaignPool; start the server with workers > 1 or submit "
                "with use_pool=False")
        return self.pool

    @staticmethod
    def _engine_waved(options) -> bool:
        """Whether the campaign engine itself runs this job in waves."""
        return (options.target_half_width is not None
                or options.strata is not None
                or options.wave_trials is not None)
