"""End-to-end service smoke check (``python -m repro.service.smoke``).

Boots an in-process :class:`~repro.service.server.CampaignServer`, submits
two overlapping campaign specs plus one exact repeat, and asserts the
service's two load-bearing guarantees:

1. **Bit-identity** — the service's result matches a direct
   ``FaultInjectionCampaign.run()`` exactly (SDC counts and every fault
   record), and the streamed per-wave snapshots end in that same result.
2. **Artifact reuse** — the exact repeat is served from the result cache
   (observable hit counter, zero trials run) and the overlapping spec
   (same campaign, larger budget) reuses the stored golden caches.

CI runs this as its service smoke job; it is deliberately tiny (untrained
LeNet, dozens of trials) so it finishes in seconds.
"""

from __future__ import annotations

import sys

from ..injection import FaultInjectionCampaign
from ..models import prepare_model
from .client import CampaignClient
from .server import CampaignServer

TRIALS = 24
OVERLAP_TRIALS = 48


def main() -> int:
    prepared = prepare_model("lenet", train=False, seed=1)
    inputs, _ = prepared.dataset.sample_train(4, seed=0)
    model = prepared.model

    failures = []

    def check(condition: bool, label: str) -> None:
        print(f"  {'ok' if condition else 'FAIL'}: {label}")
        if not condition:
            failures.append(label)

    with CampaignServer() as server:
        client = CampaignClient(server)

        print("service vs direct run (bit-identity):")
        handle = client.submit_campaign(model, inputs, seed=0, trials=TRIALS,
                                        keep_faults=True)
        snapshots = list(handle.stream(timeout=300.0))
        served = snapshots[-1]
        direct = FaultInjectionCampaign(model, inputs, seed=0).run(
            trials=TRIALS, keep_faults=True)
        check(served.sdc_counts == direct.sdc_counts, "sdc counts match")
        check(served.faults == direct.faults, "fault records match")
        check(len(snapshots) > 1, "per-wave snapshots streamed")
        check(all(earlier.trials <= later.trials for earlier, later
                  in zip(snapshots, snapshots[1:])),
              "snapshots are cumulative")

        print("exact repeat (result cache):")
        repeat = client.submit_campaign(model, inputs, seed=0, trials=TRIALS,
                                        keep_faults=True)
        repeat_result = repeat.result(timeout=300.0)
        check(repeat.from_cache is True, "repeat served from result cache")
        check(repeat_result.sdc_counts == direct.sdc_counts
              and repeat_result.faults == direct.faults,
              "cached result bit-identical")

        print("overlapping spec (golden cache):")
        overlap = client.submit_campaign(model, inputs, seed=0,
                                         trials=OVERLAP_TRIALS)
        overlap.result(timeout=300.0)
        check(overlap.status().get("golden_seeded") is True,
              "overlapping job seeded from stored golden caches")

        stats = server.stats()
        result_stats = stats["store"].get("result", {})
        golden_stats = stats["store"].get("golden", {})
        check(result_stats.get("hits", 0) >= 1, "result-cache hit recorded")
        check(golden_stats.get("hits", 0) >= 1, "golden-cache hit recorded")
        print(f"store stats: {stats['store']}")

    if failures:
        print(f"smoke FAILED ({len(failures)} checks): {failures}")
        return 1
    print("smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
