"""Picklable job payloads and content fingerprints for the campaign service.

Everything a client hands the server travels as a :class:`CampaignRequest`
— a picklable bundle of the campaign's :class:`~repro.injection.CampaignSpec`
(model, inputs, fault model, criteria, dtype policy, seed) plus a
:class:`RunOptions` describing *how* to run it (trial budget, backend,
adaptivity).  The server round-trips every submission through
:func:`encode_request` / :func:`decode_request`, which both enforces the
"picklable specs only" contract at the admission boundary and isolates the
server from later client-side mutation of the submitted objects.

Fingerprint key format (see ``docs/service.md``)
------------------------------------------------

* **spec fingerprint** — ``sha1(pickle(model, inputs, fault_model,
  criteria, dtype_policy, seed))``, computed by
  :func:`repro.injection.pool.spec_fingerprint`.  Keys golden activation
  caches: everything a golden cache depends on is in the spec, nothing
  else is.
* **result fingerprint** — ``sha1(spec_fp [|| protected_spec_fp] ||
  repr(canonical options))`` via :func:`result_fingerprint`.  The
  canonical option tuple includes every knob that shapes the result
  *content* (trials, equivalence mode, adaptive targets, strata,
  interval method, backend) — so a stored result is indistinguishable
  from a fresh run of the same request, execution counters included.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..graph.equivalence import DEFAULT_MAX_ULPS, EquivalenceMode
from ..injection.campaign import (DEFAULT_INTERVAL_METHOD, CampaignSpec,
                                  FaultInjectionCampaign)
from ..injection.pool import spec_fingerprint
from ..injection.sampling import Stratification
from ..models.base import Model


@dataclass(frozen=True)
class RunOptions:
    """How one submitted campaign should run.

    Mirrors the keyword surface of
    :meth:`~repro.injection.FaultInjectionCampaign.run`; every field is a
    plain picklable value.  ``use_pool`` routes execution through the
    server's persistent :class:`~repro.injection.pool.CampaignPool` (when
    the server owns one) instead of per-job worker processes; results are
    bit-identical on every backend, so the backend fields are purely
    wall-clock knobs.
    """

    trials: int = 100
    keep_faults: bool = False
    incremental: bool = True
    workers: int = 1
    batch_trials: int = 1
    equivalence: Optional[str] = None
    max_ulps: float = DEFAULT_MAX_ULPS
    sparse_delta: bool = True
    use_pool: bool = False
    target_half_width: Optional[float] = None
    wave_trials: Optional[int] = None
    strata: Optional[Stratification] = None
    z: float = 1.96
    interval_method: str = DEFAULT_INTERVAL_METHOD
    joint_stop: bool = True

    @property
    def adaptive(self) -> bool:
        """Whether the job routes through the adaptive (waved) engine."""
        return (self.target_half_width is not None
                or self.strata is not None)

    def coerced_mode(self) -> EquivalenceMode:
        """The equivalence mode the run will satisfy after defaulting."""
        return EquivalenceMode.coerce(
            self.equivalence, EquivalenceMode.EXACT if self.batch_trials == 1
            else EquivalenceMode.ULP_TOLERANT)

    def canonical(self) -> Tuple:
        """The deterministic tuple :func:`result_fingerprint` hashes.

        Includes everything that shapes the stored result's content —
        counts and fault records (trials, adaptivity, strata), metadata
        (equivalence mode, interval method) *and* the execution counters
        (backend knobs: ``workers`` / ``batch_trials`` / ``use_pool`` /
        ``sparse_delta`` change ``nodes_recomputed`` /
        ``elements_evaluated`` even though counts stay bit-identical) —
        so a cache hit returns exactly what a fresh run would.
        """
        strata = (None if self.strata is None
                  else (self.strata.layer_bands, self.strata.bit_bands))
        return ("v1", self.trials, self.keep_faults, self.incremental,
                self.workers, self.batch_trials, self.coerced_mode().value,
                self.max_ulps, self.sparse_delta, self.use_pool,
                self.target_half_width, self.wave_trials, strata, self.z,
                self.interval_method, self.joint_stop)


@dataclass
class CampaignRequest:
    """One unit of admission: a campaign (or paired compare) to run.

    ``protected_model`` turns the request into a **paired compare** job:
    the server replays the same fault plans on ``spec.model`` and the
    protected variant (:func:`repro.injection.compare_protection`) and the
    job's result is the ``(unprotected, protected)`` pair.
    """

    spec: CampaignSpec
    options: RunOptions = field(default_factory=RunOptions)
    protected_model: Optional[Model] = None

    @property
    def kind(self) -> str:
        return "compare" if self.protected_model is not None else "campaign"

    def spec_key(self) -> str:
        """Spec fingerprint — the golden-cache key (unprotected side)."""
        return spec_fingerprint(self.spec)

    def protected_spec_key(self) -> Optional[str]:
        """Spec fingerprint of the protected arm, for its golden caches."""
        if self.protected_model is None:
            return None
        protected = CampaignSpec(
            model=self.protected_model, inputs=self.spec.inputs,
            fault_model=self.spec.fault_model, criteria=self.spec.criteria,
            dtype_policy=self.spec.dtype_policy, seed=self.spec.seed)
        return spec_fingerprint(protected)

    def result_key(self) -> str:
        return result_fingerprint(self)

    def build_campaign(self) -> FaultInjectionCampaign:
        return self.spec.build()


def request_from_campaign(model: Model, inputs, *, fault_model=None,
                          criteria=None, dtype_policy=None, seed: int = 0,
                          protected_model: Optional[Model] = None,
                          **option_kwargs) -> CampaignRequest:
    """Build a request from raw campaign ingredients.

    Constructing a throwaway :class:`FaultInjectionCampaign` normalizes
    the defaults exactly the way a direct ``run()`` would (default fault
    model, model-appropriate criteria), so the request's fingerprint
    matches the spec of the equivalent direct campaign.
    """
    campaign = FaultInjectionCampaign(model, inputs, fault_model=fault_model,
                                      criteria=criteria,
                                      dtype_policy=dtype_policy, seed=seed)
    return CampaignRequest(spec=campaign.spec(),
                           options=RunOptions(**option_kwargs),
                           protected_model=protected_model)


def result_fingerprint(request: CampaignRequest) -> str:
    """Content key of the request's finished result (see module docstring)."""
    digest = hashlib.sha1(request.spec_key().encode("ascii"))
    protected_key = request.protected_spec_key()
    if protected_key is not None:
        digest.update(protected_key.encode("ascii"))
    digest.update(repr(request.options.canonical()).encode("utf-8"))
    return digest.hexdigest()


def encode_request(request: CampaignRequest) -> bytes:
    """Serialize a request for admission (or transport)."""
    return pickle.dumps(request, protocol=pickle.HIGHEST_PROTOCOL)


def decode_request(payload: bytes) -> CampaignRequest:
    """Inverse of :func:`encode_request`."""
    request = pickle.loads(payload)
    if not isinstance(request, CampaignRequest):
        raise TypeError(
            f"expected a pickled CampaignRequest, got {type(request).__name__}")
    return request
