"""Client-side conveniences for talking to a :class:`CampaignServer`.

The server is in-process (a thread, not a socket), so the "client" is a
thin ergonomic layer: it owns no state beyond the server reference and
every submission still crosses the pickle admission boundary.  The shape
mirrors a remote client on purpose — code written against
:class:`CampaignClient` / :class:`JobHandle` doesn't care where the
server runs.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from ..models.base import Model
from .serialization import CampaignRequest, request_from_campaign
from .server import CampaignServer, Job


class JobHandle:
    """A submitted job, from the client's side of the boundary."""

    def __init__(self, server: CampaignServer, job: Job) -> None:
        self._server = server
        self._job = job
        self.job_id = job.job_id

    def status(self) -> Dict[str, Any]:
        return self._server.status(self.job_id)

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block for the final result (raises on failure / cancellation)."""
        return self._server.result(self.job_id, timeout=timeout)

    def stream(self, timeout: Optional[float] = None) -> Iterator[Any]:
        """Merged-so-far snapshots per wave; the last one is the result."""
        return self._server.stream_results(self.job_id, timeout=timeout)

    def cancel(self) -> bool:
        return self._server.cancel(self.job_id)

    @property
    def from_cache(self) -> Optional[bool]:
        """Whether the finished job was served from the result cache
        (``None`` while the job is still pending or running)."""
        return self.status().get("from_cache")


class CampaignClient:
    """Submit campaigns and paired compares to a campaign server."""

    def __init__(self, server: CampaignServer) -> None:
        self.server = server

    def submit(self, request: CampaignRequest,
               priority: int = 0) -> JobHandle:
        return JobHandle(self.server, self.server.submit(request,
                                                         priority=priority))

    def submit_campaign(self, model: Model, inputs, *, priority: int = 0,
                        **kwargs) -> JobHandle:
        """Build a request from raw ingredients and submit it.

        Spec keywords (``fault_model``, ``criteria``, ``dtype_policy``,
        ``seed``, ``protected_model``) and
        :class:`~repro.service.serialization.RunOptions` fields both pass
        through ``kwargs``.
        """
        return self.submit(request_from_campaign(model, inputs, **kwargs),
                           priority=priority)

    def run(self, model: Model, inputs, *, priority: int = 0,
            timeout: Optional[float] = None, **kwargs) -> Any:
        """Submit and block for the result — the drop-in replacement for a
        direct ``FaultInjectionCampaign(...).run(...)`` call (bit-identical
        counts and fault records, possibly served from the store)."""
        return self.submit_campaign(model, inputs, priority=priority,
                                    **kwargs).result(timeout=timeout)

    def compare(self, model: Model, protected_model: Model, inputs, *,
                priority: int = 0, timeout: Optional[float] = None,
                **kwargs) -> Any:
        """Submit a paired compare; returns ``(unprotected, protected)``."""
        return self.submit_campaign(model, inputs,
                                    protected_model=protected_model,
                                    priority=priority,
                                    **kwargs).result(timeout=timeout)
