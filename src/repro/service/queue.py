"""Prioritized job admission for the campaign server.

A thread-safe priority queue with **admission backpressure**: the server
caps how many jobs may wait (``max_pending``), and a submit against a full
queue fails fast with :class:`AdmissionError` instead of letting a burst of
clients grow an unbounded backlog — the client decides whether to retry,
downgrade priority, or walk away.  Within the queue, higher ``priority``
values run first and equal priorities run strictly FIFO (a monotonic
admission sequence number breaks ties), so a stream of same-priority
submissions is served in arrival order no matter how the heap rebalances.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, List, Optional, Tuple


class AdmissionError(RuntimeError):
    """The queue refused a submission (backpressure: too many pending jobs)."""


class JobQueue:
    """Bounded, thread-safe priority queue (FIFO within priority).

    Parameters
    ----------
    max_pending:
        Admission cap — submissions beyond this many *pending* (queued,
        not yet popped) jobs raise :class:`AdmissionError`.  ``None``
        disables backpressure.
    """

    def __init__(self, max_pending: Optional[int] = None) -> None:
        if max_pending is not None and max_pending < 1:
            raise ValueError(
                f"max_pending must be positive or None, got {max_pending}")
        self.max_pending = max_pending
        self._heap: List[Tuple[int, int, Any]] = []
        self._sequence = itertools.count()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def closed(self) -> bool:
        return self._closed

    def submit(self, item: Any, priority: int = 0) -> int:
        """Enqueue ``item``; returns its admission sequence number.

        Higher ``priority`` pops first; equal priorities pop in admission
        order.  Raises :class:`AdmissionError` when the queue is at its
        ``max_pending`` cap, ``RuntimeError`` when the queue is closed.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("queue is closed")
            if (self.max_pending is not None
                    and len(self._heap) >= self.max_pending):
                raise AdmissionError(
                    f"job queue is full ({len(self._heap)} pending, cap "
                    f"{self.max_pending}); retry after the backlog drains")
            sequence = next(self._sequence)
            # heapq is a min-heap: negate priority so larger values pop
            # first; the monotonic sequence makes equal priorities FIFO.
            heapq.heappush(self._heap, (-priority, sequence, item))
            self._not_empty.notify()
            return sequence

    def pop(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Dequeue the highest-priority item, blocking up to ``timeout``.

        Returns ``None`` on timeout or when the queue is closed while
        waiting — the server's scheduler loop uses the ``None`` wake-ups
        to re-check its shutdown flag.
        """
        with self._not_empty:
            while not self._heap:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None
            return heapq.heappop(self._heap)[2]

    def close(self) -> None:
        """Refuse further submissions and wake all blocked ``pop`` calls."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
