"""Long-lived campaign server: admission, scheduling, artifact reuse.

:class:`CampaignServer` is the in-process service façade the experiment
sweeps submit to.  One daemon scheduler thread drains a prioritized
:class:`~repro.service.queue.JobQueue` (admission backpressure included)
and executes each job through a :class:`~repro.service.scheduler
.WaveScheduler` that shares one persistent
:class:`~repro.injection.pool.CampaignPool` and one content-addressed
:class:`~repro.service.store.ArtifactStore` across every job.  Clients
hold :class:`Job` handles: poll :meth:`CampaignServer.status`, block on
:meth:`CampaignServer.result`, iterate :meth:`CampaignServer
.stream_results` for per-wave snapshots, or :meth:`CampaignServer.cancel`.

Submissions are round-tripped through ``encode_request`` /
``decode_request`` at the admission boundary, so only picklable specs are
admitted and the server's copy is isolated from client-side mutation.

The server runs jobs **one at a time** in admission-priority order:
campaign throughput comes from parallelism *inside* a job (the pool /
worker backends), not from racing jobs against each other — which keeps
wall-clock attribution per job meaningful and the pool's worker-side
campaign cache from thrashing between interleaved specs.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Dict, Iterator, List, Optional

from ..injection.pool import CampaignPool
from .queue import JobQueue
from .scheduler import JobCancelled, WaveScheduler
from .serialization import (CampaignRequest, decode_request, encode_request,
                            request_from_campaign)
from .store import ArtifactStore

#: Terminal job states.
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
#: Non-terminal job states.
PENDING = "pending"
RUNNING = "running"

TERMINAL_STATES = (DONE, FAILED, CANCELLED)


class Job:
    """Server-side record of one submitted request (also the client handle).

    Snapshots accumulate in ``_snapshots`` (each a merged-so-far result,
    the last one the final result); ``_condition`` serialises every state
    transition so ``wait`` / ``iter_snapshots`` never miss a wake-up.
    """

    def __init__(self, job_id: str, request: CampaignRequest,
                 priority: int) -> None:
        self.job_id = job_id
        self.request = request
        self.priority = priority
        self.state = PENDING
        self.error: Optional[str] = None
        self.outcome = None  # JobOutcome once finished
        self.cancel_requested = False
        self.waves_published = 0
        self._snapshots: List[Any] = []
        self._condition = threading.Condition()

    # -- scheduler side -----------------------------------------------------

    def publish(self, snapshot: Any) -> None:
        with self._condition:
            self._snapshots.append(snapshot)
            self.waves_published += 1
            self._condition.notify_all()

    def transition(self, state: str, outcome=None,
                   error: Optional[str] = None) -> None:
        with self._condition:
            self.state = state
            if outcome is not None:
                self.outcome = outcome
            if error is not None:
                self.error = error
            self._condition.notify_all()

    # -- client side --------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state."""
        with self._condition:
            return self._condition.wait_for(lambda: self.finished,
                                            timeout=timeout)

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block for the final result; raises on failure / cancellation."""
        if not self.wait(timeout=timeout):
            raise TimeoutError(
                f"job {self.job_id} still {self.state} after {timeout}s")
        if self.state == DONE:
            return self.outcome.result
        if self.state == CANCELLED:
            raise RuntimeError(f"job {self.job_id} was cancelled")
        raise RuntimeError(f"job {self.job_id} failed: {self.error}")

    def iter_snapshots(self, timeout: Optional[float] = None,
                       ) -> Iterator[Any]:
        """Yield merged-so-far snapshots as waves finish, then stop.

        The final snapshot equals the job's result (the scheduler always
        publishes it), so ``list(job.iter_snapshots())[-1]`` is the final
        result of a successful job.  Raises ``TimeoutError`` if no new
        snapshot (or terminal transition) arrives within ``timeout``.
        """
        cursor = 0
        while True:
            with self._condition:
                if not self._condition.wait_for(
                        lambda: len(self._snapshots) > cursor or self.finished,
                        timeout=timeout):
                    raise TimeoutError(
                        f"job {self.job_id}: no snapshot within {timeout}s")
                fresh = self._snapshots[cursor:]
                cursor = len(self._snapshots)
                drained = self.finished and cursor == len(self._snapshots)
            for snapshot in fresh:
                yield snapshot
            if drained:
                return

    def describe(self) -> Dict[str, Any]:
        with self._condition:
            info = {"job_id": self.job_id, "state": self.state,
                    "kind": self.request.kind, "priority": self.priority,
                    "snapshots": len(self._snapshots),
                    "cancel_requested": self.cancel_requested}
            if self.error is not None:
                info["error"] = self.error
            if self.outcome is not None:
                info["from_cache"] = self.outcome.from_cache
                info["golden_seeded"] = self.outcome.golden_seeded
            return info


class CampaignServer:
    """In-process campaign service (queue + scheduler thread + store).

    Parameters
    ----------
    pool_workers:
        Size of the persistent :class:`CampaignPool` the server owns for
        ``use_pool=True`` jobs; ``0`` (default) owns no pool.
    store:
        A shared :class:`ArtifactStore`; one is created (in-memory, or
        rooted at ``store_root``) when not given.
    max_pending:
        Admission cap forwarded to the :class:`JobQueue` — submissions
        beyond this many pending jobs raise
        :class:`~repro.service.queue.AdmissionError`.
    pool:
        An existing :class:`CampaignPool` to *borrow* (e.g. the
        experiment runner's process-wide pool); mutually exclusive with
        ``pool_workers``, and never closed by the server.
    """

    def __init__(self, pool_workers: int = 0,
                 store: Optional[ArtifactStore] = None,
                 store_root=None,
                 max_pending: Optional[int] = None,
                 pool: Optional[CampaignPool] = None) -> None:
        if pool is not None and pool_workers:
            raise ValueError("pass either pool_workers or pool, not both")
        self.store = store if store is not None else ArtifactStore(store_root)
        self._owns_store = store is None
        self._owns_pool = pool is None and bool(pool_workers)
        self.pool = pool if pool is not None else (
            CampaignPool(pool_workers) if pool_workers else None)
        self.scheduler = WaveScheduler(store=self.store, pool=self.pool)
        self.queue = JobQueue(max_pending=max_pending)
        self._jobs: Dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._counter = 0
        self._executed = 0
        self._closed = False
        self._thread = threading.Thread(target=self._serve, daemon=True,
                                        name="campaign-server")
        self._thread.start()

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "CampaignServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self, drain: bool = True,
              timeout: Optional[float] = 60.0) -> None:
        """Stop admitting, optionally drain the backlog, stop the thread."""
        if self._closed:
            return
        if drain:
            for job in list(self._jobs.values()):
                job.wait(timeout=timeout)
        self._closed = True
        self.queue.close()
        self._thread.join(timeout=timeout)
        if self.pool is not None and self._owns_pool:
            self.pool.close()
        if self._owns_store:
            # Releases the store's plane-backed golden handles, so the
            # shared segments they pin are unlinked with the server.
            self.store.close()

    # -- submission ---------------------------------------------------------

    def submit(self, request: CampaignRequest, priority: int = 0) -> Job:
        """Admit a request; returns its :class:`Job` handle.

        Raises :class:`~repro.service.queue.AdmissionError` under
        backpressure and ``RuntimeError`` once the server is closed.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        # The encode/decode round trip is the admission contract: only
        # picklable specs pass, and the server's copy is detached from
        # the client's objects.
        admitted = decode_request(encode_request(request))
        with self._jobs_lock:
            self._counter += 1
            job = Job(f"job-{self._counter}", admitted, priority)
            self._jobs[job.job_id] = job
        try:
            self.queue.submit(job, priority=priority)
        except Exception:
            with self._jobs_lock:
                del self._jobs[job.job_id]
            raise
        return job

    def submit_campaign(self, model, inputs, *, priority: int = 0,
                        **kwargs) -> Job:
        """Convenience: build a request from raw ingredients and submit.

        ``kwargs`` splits between the campaign spec (``fault_model``,
        ``criteria``, ``dtype_policy``, ``seed``, ``protected_model``) and
        :class:`~repro.service.serialization.RunOptions` fields.
        """
        return self.submit(request_from_campaign(model, inputs, **kwargs),
                           priority=priority)

    # -- observation --------------------------------------------------------

    def job(self, job_id: str) -> Job:
        with self._jobs_lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job {job_id!r}") from None

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.job(job_id).describe()

    def result(self, job_id: str, timeout: Optional[float] = None) -> Any:
        """Block for the job's final result; raises on failure/cancellation."""
        return self.job(job_id).result(timeout=timeout)

    def stream_results(self, job_id: str,
                       timeout: Optional[float] = None) -> Iterator[Any]:
        """Per-wave merged snapshots, ending with the final result."""
        return self.job(job_id).iter_snapshots(timeout=timeout)

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; returns whether the job can still stop.

        Pending jobs are skipped when popped; running jobs stop at the
        next wave boundary.  Finished jobs return False.
        """
        job = self.job(job_id)
        with job._condition:
            if job.finished:
                return False
            job.cancel_requested = True
            return True

    def stats(self) -> Dict[str, Any]:
        with self._jobs_lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        return {"jobs": states, "executed": self._executed,
                "pending": len(self.queue), "store": self.store.stats()}

    # -- scheduler thread ---------------------------------------------------

    def _serve(self) -> None:
        while True:
            job = self.queue.pop(timeout=0.1)
            if job is None:
                if self.queue.closed:
                    return
                continue
            if job.cancel_requested:
                job.transition(CANCELLED)
                continue
            job.transition(RUNNING)
            try:
                outcome = self.scheduler.execute(
                    job.request, publish=job.publish,
                    should_cancel=lambda: job.cancel_requested)
            except JobCancelled:
                job.transition(CANCELLED)
            except Exception:
                job.transition(FAILED, error=traceback.format_exc())
            else:
                self._executed += 1
                job.transition(DONE, outcome=outcome)
