"""Table VI harness: SDC coverage vs. overhead for every protection technique.

For a common set of fault-injection trials on one model, the harness measures

* **SDC coverage** — of the faults that cause an SDC on the unprotected
  model, the fraction the technique corrects (Ranger, TMR) or detects
  (duplication, symptom detector, ABFT, ML corrector — detection implies
  recovery by re-execution under the paper's accounting), and
* **overhead** — the technique's computational overhead relative to one
  unprotected inference.

This reproduces the structure of the paper's Table VI; absolute numbers
differ (different models/weights/trial counts) but the ordering — Ranger
achieving near-TMR coverage at near-zero overhead — is the result to check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.flops import protection_overhead
from ..core.ranger import Ranger
from ..injection.campaign import FaultInjectionCampaign
from ..injection.fault_models import FaultModel, SingleBitFlip
from ..injection.injector import FaultInjector
from ..injection.sdc import SDCCriterion, criteria_for_model
from ..models.zoo import PreparedModel
from .detectors import ABFTConvChecksum, SymptomDetector
from .ml_corrector import MLErrorCorrector, train_ml_corrector
from .redundancy import ModularRedundancy, SelectiveDuplication


@dataclass
class TechniqueResult:
    """One row of the comparison table."""

    technique: str
    sdc_coverage: float
    overhead: float
    notes: str = ""

    def as_row(self) -> List:
        return [self.technique, 100.0 * self.sdc_coverage,
                100.0 * self.overhead, self.notes]


@dataclass
class ComparisonConfig:
    """Knobs for the Table VI harness."""

    trials: int = 200
    ml_training_trials: int = 120
    duplication_fraction: float = 0.3
    symptom_margin: float = 1.0
    ranger_percentile: float = 100.0
    seed: int = 0


class TechniqueComparison:
    """Evaluates every protection technique on one prepared model."""

    def __init__(self, prepared: PreparedModel, inputs: np.ndarray,
                 fault_model: Optional[FaultModel] = None,
                 criterion: Optional[SDCCriterion] = None,
                 config: Optional[ComparisonConfig] = None) -> None:
        self.prepared = prepared
        self.model = prepared.model
        self.inputs = np.asarray(inputs)
        self.fault_model = fault_model or SingleBitFlip()
        self.criterion = criterion or criteria_for_model(self.model)[0]
        self.config = config or ComparisonConfig()
        self.injector = FaultInjector(self.model, self.fault_model,
                                      seed=self.config.seed)
        self._executor = self.model.executor()
        self.site_sizes = self.injector.profile_state_space(self.inputs[:1],
                                                            self._executor)
        self._golden = [
            self._executor.run({self.model.input_name: self.inputs[i:i + 1]},
                               outputs=[self.model.output_name]
                               ).output(self.model.output_name)
            for i in range(len(self.inputs))
        ]

    # -- shared trial material ------------------------------------------------------

    def _sample_trials(self, count: int, seed_offset: int = 1):
        rng = np.random.default_rng(self.config.seed + seed_offset)
        return [(int(rng.integers(len(self.inputs))),
                 self.injector.sample_plan()) for _ in range(count)]

    def _run_trials(self, trials):
        """Run trials on the unprotected model, keeping full value traces."""
        records = []
        for input_index, plan in trials:
            batch = self.inputs[input_index:input_index + 1]
            result, faults = self.injector.inject_full(self._executor, batch,
                                                       plan)
            faulty = result.output(self.model.output_name)
            is_sdc = self.criterion.is_sdc(self._golden[input_index], faulty)
            records.append({"input_index": input_index, "plan": plan,
                            "run": result, "faults": faults,
                            "is_sdc": is_sdc})
        return records

    # -- technique evaluations ---------------------------------------------------------

    def run(self, include_hong: Optional[PreparedModel] = None
            ) -> List[TechniqueResult]:
        """Run the full comparison; returns one result per technique."""
        cfg = self.config
        trials = self._sample_trials(cfg.trials)
        records = self._run_trials(trials)
        sdc_records = [r for r in records if r["is_sdc"]]
        results: List[TechniqueResult] = []

        # --- Triple modular redundancy -------------------------------------------
        tmr = ModularRedundancy(self.model, replicas=3)
        results.append(TechniqueResult(
            technique="tmr", sdc_coverage=1.0 if tmr.coverage_is_exact() else 0.0,
            overhead=tmr.overhead_fraction(),
            notes="majority vote over 3 replicas"))

        # --- Selective duplication -------------------------------------------------
        duplication = SelectiveDuplication(
            self.model, duplication_fraction=cfg.duplication_fraction)
        duplication.select_protected_nodes(self.site_sizes)
        covered = sum(1 for r in sdc_records
                      if duplication.detects(r["faults"]))
        results.append(TechniqueResult(
            technique="selective_duplication",
            sdc_coverage=covered / len(sdc_records) if sdc_records else 0.0,
            overhead=duplication.overhead_fraction(),
            notes=f"duplicates {cfg.duplication_fraction:.0%} of state space"))

        # --- Symptom-based detector -----------------------------------------------
        ranger_for_bounds = Ranger(percentile=cfg.ranger_percentile,
                                   seed=cfg.seed)
        profile = ranger_for_bounds.profile(
            self.model, self.prepared.dataset.x_train, batch_size=32)
        bounds = ranger_for_bounds.select_bounds(profile)
        symptom = SymptomDetector(bounds=bounds, margin=cfg.symptom_margin)
        detected = sum(1 for r in sdc_records if symptom.detects(r["run"]))
        detection_rate = (sum(1 for r in records if symptom.detects(r["run"]))
                          / len(records)) if records else 0.0
        results.append(TechniqueResult(
            technique="symptom_detector",
            sdc_coverage=detected / len(sdc_records) if sdc_records else 0.0,
            overhead=symptom.overhead_fraction(self.model, detection_rate),
            notes="re-executes on detection"))

        # --- ABFT conv checksums -----------------------------------------------------
        abft = ABFTConvChecksum(self.model)
        detected = sum(1 for r in sdc_records if abft.detects(r["run"]))
        results.append(TechniqueResult(
            technique="abft_conv",
            sdc_coverage=detected / len(sdc_records) if sdc_records else 0.0,
            overhead=abft.overhead_fraction(),
            notes="checksums cover convolution outputs only"))

        # --- ML-based corrector -------------------------------------------------------
        training_trials = self._sample_trials(cfg.ml_training_trials,
                                              seed_offset=7)
        training_records = self._run_trials(training_trials)
        labelled = [(r["run"], r["is_sdc"]) for r in training_records]
        has_both = (any(r["is_sdc"] for r in training_records)
                    and any(not r["is_sdc"] for r in training_records))
        if has_both:
            corrector = train_ml_corrector(self.model, labelled, seed=cfg.seed)
            detected = sum(1 for r in sdc_records if corrector.detects(r["run"]))
            detect_all = (sum(1 for r in records if corrector.detects(r["run"]))
                          / len(records)) if records else 0.0
            results.append(TechniqueResult(
                technique="ml_corrector",
                sdc_coverage=detected / len(sdc_records) if sdc_records else 0.0,
                overhead=corrector.overhead_fraction() + detect_all,
                notes="logistic detector trained on FI data"))
        else:
            results.append(TechniqueResult(
                technique="ml_corrector", sdc_coverage=0.0, overhead=0.01,
                notes="insufficient SDC examples to train"))

        # --- Hong et al. (Tanh variant) -----------------------------------------------
        if include_hong is not None:
            hong_result = self._evaluate_retrained_variant(include_hong)
            results.append(hong_result)

        # --- Ranger -----------------------------------------------------------------------
        protected, info = ranger_for_bounds.transform(self.model, bounds)
        corrected = 0
        protected_executor = protected.executor()
        protected_injector = FaultInjector(protected, self.fault_model,
                                           seed=cfg.seed)
        protected_injector._site_sizes = dict(self.injector._site_sizes)
        for record in sdc_records:
            batch = self.inputs[record["input_index"]:record["input_index"] + 1]
            faulty, _ = protected_injector.inject(protected_executor, batch,
                                                  record["plan"])
            if not self.criterion.is_sdc(self._golden[record["input_index"]],
                                         faulty):
                corrected += 1
        overhead = protection_overhead(self.model, protected)["overhead"]
        results.append(TechniqueResult(
            technique="ranger",
            sdc_coverage=corrected / len(sdc_records) if sdc_records else 1.0,
            overhead=overhead,
            notes=f"{info.num_inserted} restriction ops inserted"))

        return results

    def _evaluate_retrained_variant(self, variant: PreparedModel
                                    ) -> TechniqueResult:
        """Coverage of an architecture-level defense (Hong et al.).

        The variant has different weights, so trials cannot be replayed;
        instead the relative SDC-rate reduction between the two models under
        matched campaigns is reported as coverage (the paper does the same in
        Fig. 8 / Table VI footnote 2).
        """
        cfg = self.config
        base_campaign = FaultInjectionCampaign(
            self.model, self.inputs, fault_model=self.fault_model,
            criteria=[self.criterion], seed=cfg.seed)
        variant_inputs, _ = variant.correctly_predicted_inputs(
            len(self.inputs), seed=cfg.seed)
        variant_campaign = FaultInjectionCampaign(
            variant.model, variant_inputs, fault_model=self.fault_model,
            criteria=criteria_for_model(variant.model)[:1], seed=cfg.seed)
        base = base_campaign.run(trials=cfg.trials)
        swapped = variant_campaign.run(trials=cfg.trials)
        base_rate = base.sdc_rate(self.criterion.name)
        swapped_rate = swapped.sdc_rate(variant_campaign.criteria[0].name)
        coverage = 0.0
        if base_rate > 0:
            coverage = max(0.0, (base_rate - swapped_rate) / base_rate)
        return TechniqueResult(technique="hong_tanh", sdc_coverage=coverage,
                               overhead=0.0,
                               notes="architecture change, no runtime cost")
