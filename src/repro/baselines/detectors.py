"""Detection-based baselines: symptom detector and ABFT conv checksums.

* :class:`SymptomDetector` — Li et al.'s approach: unusual (out-of-range)
  activation values are treated as symptoms of a fault; detection triggers a
  re-execution to recover the output.  Coverage is high but the re-execution
  makes the worst-case overhead large, and an aggressive threshold produces
  false positives (the >30% false-positive rate the paper cites).
* :class:`ABFTConvChecksum` — algorithm-based fault tolerance for
  convolutional layers: the channel-sum of a convolution's output can be
  recomputed independently with a single summed kernel; any single-value
  corruption of the conv output breaks the equality.  Coverage is limited to
  faults that strike convolution outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..analysis.flops import count_flops
from ..core.bounds import RestrictionBounds
from ..graph import ExecutionResult
from ..injection.fault_models import FaultSpec
from ..models.base import Model
from ..ops.conv import Conv2D


@dataclass
class SymptomDetector:
    """Out-of-range activation values as fault symptoms (Li et al.).

    Parameters
    ----------
    bounds:
        Per-activation-node value ranges learned from fault-free profiling
        (the same kind of profile Ranger uses).
    margin:
        Multiplicative slack applied to the upper bounds: a value is a
        symptom only if it exceeds ``high * margin``.  ``margin < 1`` makes
        the detector aggressive (more coverage, more false positives).
    """

    bounds: RestrictionBounds
    margin: float = 1.0

    def check(self, values: Mapping[str, np.ndarray]) -> bool:
        """True when any monitored node's output contains a symptom."""
        for name, (low, high) in self.bounds.items():
            if name not in values:
                continue
            out = np.asarray(values[name])
            slack = (abs(high) + 1e-12) * (self.margin - 1.0)
            if np.any(out > high + slack) or np.any(out < low - slack):
                return True
        return False

    def detects(self, faulty_run: ExecutionResult) -> bool:
        return self.check(faulty_run.values)

    def false_positive_rate(self, model: Model, inputs: np.ndarray,
                            batch_size: int = 32) -> float:
        """Fraction of fault-free inputs flagged as faulty."""
        executor = model.executor()
        flagged = 0
        for start in range(0, len(inputs), batch_size):
            batch = inputs[start:start + batch_size]
            for i in range(len(batch)):
                result = executor.run({model.input_name: batch[i:i + 1]},
                                      outputs=[model.output_name])
                if self.check(result.values):
                    flagged += 1
        return flagged / max(len(inputs), 1)

    def overhead_fraction(self, model: Model,
                          detection_rate: float = 0.0) -> float:
        """Expected overhead: range checks plus re-execution when triggered.

        ``detection_rate`` is the probability that an inference triggers a
        re-execution (detections plus false positives); the re-execution
        costs a full extra inference.
        """
        flops = count_flops(model)
        checked_elements = 0
        for node in model.graph:
            if node.name in self.bounds.bounds:
                checked_elements += flops.per_node.get(node.name, 0)
        check_cost = 2.0 * checked_elements  # two comparisons per element
        return check_cost / max(flops.total, 1) + detection_rate


@dataclass
class ABFTConvChecksum:
    """Channel-sum checksums over convolution outputs.

    For ``y = conv(x, K)`` (no bias), summing y over its output channels
    equals convolving ``x`` with the kernel summed over output channels.  The
    checker recomputes that single-channel convolution and compares; a
    corrupted value in the stored conv output breaks the equality.
    """

    model: Model
    tolerance: float = 1e-3

    def __post_init__(self) -> None:
        self._conv_nodes: Dict[str, Tuple[str, str, Conv2D]] = {}
        for node in self.model.graph:
            if isinstance(node.op, Conv2D):
                x_name, kernel_name = node.inputs
                self._conv_nodes[node.name] = (x_name, kernel_name, node.op)

    @property
    def protected_nodes(self) -> Set[str]:
        return set(self._conv_nodes)

    def detects(self, faulty_run: ExecutionResult,
                faults: Sequence[FaultSpec] = ()) -> bool:
        """Verify every conv node's channel-sum checksum on a faulty run."""
        values = faulty_run.values
        for conv_name, (x_name, kernel_name, op) in self._conv_nodes.items():
            if conv_name not in values:
                continue
            output = values[conv_name]
            x = values[x_name]
            kernel = values[kernel_name]
            summed_kernel = kernel.sum(axis=3, keepdims=True)
            expected = op.forward(x, summed_kernel)[..., 0]
            actual = output.sum(axis=3)
            scale = np.maximum(np.abs(expected), 1.0)
            if np.any(np.abs(expected - actual) > self.tolerance * scale):
                return True
        return False

    def overhead_fraction(self) -> float:
        """FLOPs overhead of the checksum convolutions.

        Each checksum is a convolution with a single output channel, so its
        cost is ``1 / out_channels`` of the original convolution.
        """
        flops = count_flops(self.model)
        overhead = 0.0
        for conv_name, (_, kernel_name, _) in self._conv_nodes.items():
            kernel = self.model.graph.node(kernel_name).op.value
            out_channels = kernel.shape[3]
            overhead += flops.per_node.get(conv_name, 0) / max(out_channels, 1)
        return overhead / max(flops.total, 1)

    def coverage_upper_bound(self, site_sizes: Mapping[str, int]) -> float:
        """Fraction of the injectable state space that lies in conv outputs."""
        total = sum(site_sizes.values())
        covered = sum(size for name, size in site_sizes.items()
                      if name in self._conv_nodes)
        return covered / total if total else 0.0
