"""ML-based error detector/corrector (Schorn et al., simplified).

Schorn et al. train a supervised model on fault-injection data to classify
each inference as benign or critical from per-layer activation features, and
correct detected faults.  The full pipeline requires large FI-generated
training sets (the reason the paper calls it expensive); this reproduction
implements a faithful but compact version:

* **Features** — per monitored layer: maximum and mean absolute activation of
  the (possibly faulty) run, normalized by the fault-free profile.
* **Classifier** — a logistic-regression model trained with gradient descent
  on labelled FI outcomes (benign vs. SDC).
* **Correction** — when the classifier flags a run, the output is recovered
  by re-execution (as in the original work, which is why its effective
  coverage is bounded by the classifier's recall — the ~67% of Table VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..graph import ExecutionResult
from ..models.base import Model


@dataclass
class FeatureExtractor:
    """Turns a run's per-node values into a fixed-length feature vector."""

    monitored_nodes: List[str]
    reference_max: Dict[str, float]

    def extract(self, values: Mapping[str, np.ndarray]) -> np.ndarray:
        features = []
        for name in self.monitored_nodes:
            out = np.abs(np.asarray(values.get(name, 0.0)))
            ref = max(self.reference_max.get(name, 1.0), 1e-9)
            features.append(float(out.max()) / ref)
            features.append(float(out.mean()) / ref)
        return np.asarray(features, dtype=np.float64)

    @classmethod
    def from_model(cls, model: Model, sample_values: Mapping[str, np.ndarray]
                   ) -> "FeatureExtractor":
        """Monitor every activation node, using a clean run as the reference."""
        monitored = [node.name for node in model.graph
                     if node.category == "activation"]
        reference = {name: float(np.abs(np.asarray(sample_values[name])).max())
                     for name in monitored if name in sample_values}
        return cls(monitored_nodes=monitored, reference_max=reference)


class LogisticClassifier:
    """Minimal logistic-regression classifier trained by gradient descent."""

    def __init__(self, learning_rate: float = 0.5, epochs: int = 200,
                 seed: int = 0) -> None:
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.rng = np.random.default_rng(seed)
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))

    def fit(self, features: np.ndarray, labels: np.ndarray) -> None:
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64).reshape(-1)
        if len(features) != len(labels):
            raise ValueError("features and labels differ in length")
        n, d = features.shape
        self.weights = self.rng.normal(0.0, 0.01, size=d)
        self.bias = 0.0
        for _ in range(self.epochs):
            probs = self._sigmoid(features @ self.weights + self.bias)
            error = probs - labels
            self.weights -= self.learning_rate * (features.T @ error) / n
            self.bias -= self.learning_rate * float(error.mean())

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("classifier has not been trained")
        features = np.asarray(features, dtype=np.float64)
        return self._sigmoid(features @ self.weights + self.bias)

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(features) >= threshold).astype(int)


@dataclass
class MLErrorCorrector:
    """The assembled detector: feature extractor + trained classifier."""

    extractor: FeatureExtractor
    classifier: LogisticClassifier
    threshold: float = 0.5

    def detects(self, faulty_run: ExecutionResult) -> bool:
        features = self.extractor.extract(faulty_run.values)
        return bool(self.classifier.predict(features[None, :],
                                            self.threshold)[0])

    def overhead_fraction(self) -> float:
        """The classifier itself is tiny; its cost is a fraction of a percent
        of an inference (dominates the paper's 0.95% figure together with
        feature collection)."""
        return 0.01


def train_ml_corrector(model: Model,
                       training_runs: Sequence[Tuple[ExecutionResult, bool]],
                       seed: int = 0) -> MLErrorCorrector:
    """Train the corrector from labelled (run, is_sdc) fault-injection data.

    ``training_runs`` must contain at least one benign and one SDC example;
    generating it requires a fault-injection campaign, which is exactly the
    expensive prerequisite the paper criticises this technique for.
    """
    if not training_runs:
        raise ValueError("training requires at least one labelled run")
    reference_values = training_runs[0][0].values
    extractor = FeatureExtractor.from_model(model, reference_values)
    features = np.stack([extractor.extract(run.values)
                         for run, _ in training_runs])
    labels = np.asarray([1 if is_sdc else 0 for _, is_sdc in training_runs])
    if labels.min() == labels.max():
        raise ValueError("training runs must include both benign and SDC cases")
    classifier = LogisticClassifier(seed=seed)
    classifier.fit(features, labels)
    return MLErrorCorrector(extractor=extractor, classifier=classifier)
