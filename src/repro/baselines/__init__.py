"""Comparison techniques: Hong et al., redundancy, detectors, ML corrector."""

from .comparison import (
    ComparisonConfig,
    TechniqueComparison,
    TechniqueResult,
)
from .detectors import ABFTConvChecksum, SymptomDetector
from .hong import prepare_activation_variant, prepare_tanh_variant
from .ml_corrector import (
    FeatureExtractor,
    LogisticClassifier,
    MLErrorCorrector,
    train_ml_corrector,
)
from .redundancy import ModularRedundancy, SelectiveDuplication

__all__ = [
    "ABFTConvChecksum",
    "ComparisonConfig",
    "FeatureExtractor",
    "LogisticClassifier",
    "MLErrorCorrector",
    "ModularRedundancy",
    "SelectiveDuplication",
    "SymptomDetector",
    "TechniqueComparison",
    "TechniqueResult",
    "prepare_activation_variant",
    "prepare_tanh_variant",
    "train_ml_corrector",
]
