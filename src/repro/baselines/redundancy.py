"""Redundancy-based protection: full modular redundancy and selective
duplication.

* :class:`ModularRedundancy` — classic DMR/TMR at the whole-inference level.
  With three replicas and at most one fault per execution (the paper's fault
  model) the majority vote always recovers the fault-free output, at ~200%
  computational overhead.
* :class:`SelectiveDuplication` — the HarDNN-style approach (Mahmoud et al.):
  duplicate only the most fault-vulnerable portion of the computation and
  compare; a mismatch detects the fault (correction then requires
  re-execution).  Coverage is bounded by the fraction of the state space that
  is duplicated, which is how the paper's Table VI arrives at ~60% coverage
  for ~30% overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..analysis.flops import count_flops
from ..graph import Executor
from ..injection.fault_models import FaultSpec
from ..injection.injector import FaultInjector, InjectionPlan
from ..models.base import Model


class ModularRedundancy:
    """N-modular redundancy over whole inferences with element-wise voting."""

    def __init__(self, model: Model, replicas: int = 3) -> None:
        if replicas < 2:
            raise ValueError(f"redundancy needs at least 2 replicas, got {replicas}")
        self.model = model
        self.replicas = replicas

    def predict_under_fault(self, injector: FaultInjector, inputs: np.ndarray,
                            plan: Optional[InjectionPlan] = None,
                            executor: Optional[Executor] = None
                            ) -> Tuple[np.ndarray, List[FaultSpec]]:
        """Run one faulty replica and ``replicas - 1`` clean replicas, vote.

        Under the single-fault-per-execution model only one replica is
        corrupted, so the element-wise median recovers the clean output for
        any odd replica count >= 3; for DMR (2 replicas) the mismatch is
        detectable but not correctable, and this method returns the mean to
        reflect that ambiguity.
        """
        ex = executor or self.model.executor()
        faulty, faults = injector.inject(ex, inputs, plan)
        outputs = [faulty]
        for _ in range(self.replicas - 1):
            result = ex.run({self.model.input_name: inputs},
                            outputs=[self.model.output_name])
            outputs.append(result.output(self.model.output_name))
        stacked = np.stack(outputs, axis=0)
        if self.replicas >= 3:
            voted = np.median(stacked, axis=0)
        else:
            voted = np.mean(stacked, axis=0)
        return voted, faults

    def overhead_fraction(self) -> float:
        """Computational overhead relative to one unprotected inference."""
        return float(self.replicas - 1)

    def coverage_is_exact(self) -> bool:
        """Whether voting always recovers the output under single faults."""
        return self.replicas >= 3


@dataclass
class SelectiveDuplication:
    """Duplicate-and-compare on the most vulnerable fraction of the network.

    Parameters
    ----------
    model:
        The model to protect.
    duplication_fraction:
        Fraction of the injectable state space (by element count, largest
        tensors first — a proxy for the FI-derived vulnerability ranking of
        HarDNN) whose computation is duplicated.
    """

    model: Model
    duplication_fraction: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 < self.duplication_fraction <= 1.0:
            raise ValueError("duplication_fraction must be in (0, 1]")
        self._protected: Optional[Set[str]] = None

    def select_protected_nodes(self, site_sizes: Dict[str, int]) -> Set[str]:
        """Choose which nodes to duplicate from the state-space profile.

        Nodes are added in decreasing order of their per-element FLOPs weight
        (convolutions first — they dominate both vulnerability and cost in
        HarDNN's ranking) until the duplicated share of the state space
        reaches ``duplication_fraction``.
        """
        flops = count_flops(self.model).per_node
        order = sorted(site_sizes,
                       key=lambda name: flops.get(name, 0) / max(site_sizes[name], 1),
                       reverse=True)
        total = sum(site_sizes.values())
        budget = self.duplication_fraction * total
        protected: Set[str] = set()
        covered = 0
        for name in order:
            if covered >= budget:
                break
            protected.add(name)
            covered += site_sizes[name]
        self._protected = protected
        return protected

    def detects(self, faults: Sequence[FaultSpec]) -> bool:
        """Whether duplicate-and-compare flags this fault event.

        A duplicated computation recomputes the node's output and compares; a
        corrupted value in a duplicated node always mismatches, so detection
        reduces to whether the fault landed in a protected node.
        """
        if self._protected is None:
            raise RuntimeError("call select_protected_nodes() first")
        return any(fault.node_name in self._protected for fault in faults)

    def overhead_fraction(self) -> float:
        """FLOPs overhead: the share of compute that is executed twice."""
        if self._protected is None:
            raise RuntimeError("call select_protected_nodes() first")
        flops = count_flops(self.model).per_node
        total = sum(flops.values())
        duplicated = sum(flops.get(name, 0) for name in self._protected)
        return duplicated / total if total else 0.0
