"""Hong et al. (Terminal Brain Damage) defense: swap ReLU for Tanh.

Hong et al. propose mitigating bit-flip faults by changing the network
architecture so that activations are bounded by construction — concretely,
replacing ReLU with Tanh and retraining.  The paper's Fig. 8 compares this
defense with Ranger on both ReLU-based and Tanh-based variants of five
models and finds:

* on models that already use Tanh, the defense does nothing (0% relative SDC
  reduction) because faults can still strike *after* the Tanh operators;
* on ReLU models it helps, but far less than Ranger.

This module builds and trains the Tanh variant of any zoo model so the
comparison can be reproduced.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..models.zoo import PreparedModel, prepare_model


def prepare_tanh_variant(name: str, preset: str = "small", epochs: int = 6,
                         seed: int = 0,
                         dataset_overrides: Optional[Dict[str, Any]] = None,
                         **model_overrides) -> PreparedModel:
    """Build and train the Hong-et-al. variant (all hidden activations Tanh).

    The steering models keep their output heads unchanged (the defense only
    swaps hidden activations).
    """
    overrides = dict(model_overrides)
    overrides["activation"] = "tanh"
    return prepare_model(name, preset=preset, epochs=epochs, seed=seed,
                         dataset_overrides=dataset_overrides, **overrides)


def prepare_activation_variant(name: str, activation: str,
                               preset: str = "small", epochs: int = 6,
                               seed: int = 0,
                               dataset_overrides: Optional[Dict[str, Any]] = None,
                               **model_overrides) -> PreparedModel:
    """Build and train a model variant with the given hidden activation.

    Fig. 8 needs both the ReLU and Tanh variants of each model, each with and
    without Ranger, so this generalization keeps the experiment code simple.
    """
    overrides = dict(model_overrides)
    overrides["activation"] = activation
    return prepare_model(name, preset=preset, epochs=epochs, seed=seed,
                         dataset_overrides=dataset_overrides, **overrides)
