"""Benchmark: Fig. 7 — steering-model SDC rates at deviation thresholds."""

import numpy as np

from repro.experiments import run_fig7_steering_sdc

from bench_utils import run_and_report


def test_fig7_steering_sdc(benchmark, bench_scale):
    result = run_and_report(benchmark, run_fig7_steering_sdc, bench_scale)
    for model_name, model_data in result.data.items():
        originals = np.array(list(model_data["original"].values()))
        protected = np.array(list(model_data["ranger"].values()))
        assert np.all(protected <= originals + 1e-9)
    # Comma (degrees output) should be protected almost completely, matching
    # the paper's 50x reduction; Dave (radians/atan head) benefits less.
    comma = result.data["comma"]
    assert np.mean(list(comma["ranger"].values())) <= \
        np.mean(list(comma["original"].values())) / 2.0
