"""Benchmark: Table I — the model/dataset inventory builds and runs."""

import numpy as np

from repro.analysis import render_table
from repro.models import ALL_MODELS, build_model, dataset_for_model


def test_table1_model_zoo(benchmark):
    def build_all():
        rows = []
        for name in ALL_MODELS:
            model = build_model(name)
            dataset = dataset_for_model(model)
            x = np.zeros((1,) + tuple(model.config["input_shape"]))
            output = model.predict(x)
            rows.append([name, dataset.name, str(model.config["input_shape"]),
                         model.num_parameters, len(model.graph),
                         str(output.shape)])
        return rows

    rows = benchmark.pedantic(build_all, rounds=1, iterations=1)
    print()
    print(render_table(["model", "dataset", "input", "parameters", "nodes",
                        "output"], rows,
                       title="Table I — DNN models and datasets"))
    assert len(rows) == 8
