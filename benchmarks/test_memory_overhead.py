"""Benchmark: RQ3 memory overhead — stored bound values vs. model weights."""

from repro.experiments import run_memory_overhead

from bench_utils import run_and_report


def test_memory_overhead(benchmark, bench_scale):
    result = run_and_report(benchmark, run_memory_overhead, bench_scale)
    # The stored restriction bounds are a vanishing fraction of the weights
    # (the paper's "negligible memory overhead" claim).
    assert all(entry["ratio"] < 0.01 for entry in result.data.values())
