"""Benchmark: Fig. 6 — classifier SDC rates, original vs. Ranger."""

import numpy as np

from repro.experiments import run_fig6_classifier_sdc

from bench_utils import run_and_report


def test_fig6_classifier_sdc(benchmark, bench_scale):
    result = run_and_report(benchmark, run_fig6_classifier_sdc, bench_scale)
    originals, protected = [], []
    for model_data in result.data.values():
        originals.extend(model_data["original"].values())
        protected.extend(model_data["ranger"].values())
    # Shape of the paper's result: a large average SDC rate without Ranger,
    # cut by an order of magnitude (paper: 14.92% -> 0.44%) with it.
    assert np.mean(originals) > 3.0
    assert np.mean(protected) < np.mean(originals) / 2.0
