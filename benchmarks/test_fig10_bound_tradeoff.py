"""Benchmark: Fig. 10 / Table V — bound percentile vs. resilience/accuracy."""

import numpy as np

from repro.experiments import run_fig10_bound_tradeoff

from bench_utils import run_and_report


def test_fig10_bound_tradeoff(benchmark, bench_scale_light):
    result = run_and_report(benchmark, run_fig10_bound_tradeoff,
                            bench_scale_light,
                            percentiles=(100.0, 99.0, 98.0))
    sdc = result.data["sdc"]
    accuracy = result.data["accuracy"]
    original_sdc = np.mean(list(sdc["original"].values()))
    tightest_sdc = np.mean(list(sdc["bound-98%"].values()))
    loosest_sdc = np.mean(list(sdc["bound-100%"].values()))
    # Tighter bounds give at least as much resilience as the max-value bound,
    # and all protected configurations beat the unprotected model.
    assert tightest_sdc <= loosest_sdc + 1e-9
    assert loosest_sdc <= original_sdc + 1e-9
    # The 100% bound must not change accuracy; tighter bounds may cost some.
    assert accuracy["bound-100%"]["rmse"] <= accuracy["original"]["rmse"] * 1.01
    assert accuracy["bound-98%"]["rmse"] >= accuracy["bound-100%"]["rmse"] - 1e-9
