"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import os
from typing import Dict, Optional

#: Directory where every benchmark writes the table/series it regenerated.
#: These files are the measured side of the paper-vs-measured comparison in
#: EXPERIMENTS.md.
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def peak_rss_bytes(pid: Optional[int] = None) -> Optional[int]:
    """Peak resident set size (``VmHWM``) of a process, in bytes.

    Read from ``/proc/<pid>/status`` — the high-water mark survives
    frees, so one read after a workload captures its peak.  Returns
    ``None`` where procfs is unavailable (non-Linux) or the process is
    gone; callers should skip RSS guards in that case.
    """
    pid = os.getpid() if pid is None else pid
    try:
        with open(f"/proc/{pid}/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        return None
    return None


def worker_peak_rss_bytes(pool) -> Dict[int, int]:
    """Peak RSS per live worker process of a ``CampaignPool``.

    Must be called while the pool is open (worker pids come from the
    executor's process table); an empty mapping means no procfs.
    """
    executor = getattr(pool, "_executor", None)
    processes = getattr(executor, "_processes", None) or {}
    out: Dict[int, int] = {}
    for pid in list(processes):
        rss = peak_rss_bytes(pid)
        if rss is not None:
            out[pid] = rss
    return out


def run_and_report(benchmark, experiment_fn, scale, **kwargs):
    """Run one experiment under pytest-benchmark, print and persist its table."""
    result = benchmark.pedantic(lambda: experiment_fn(scale, **kwargs),
                                rounds=1, iterations=1)
    print()
    print(result.rendered)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{result.name}.txt")
    with open(path, "w") as handle:
        handle.write(f"{result.paper_reference} — {result.name}\n\n")
        handle.write(result.rendered + "\n")
    return result


def guard_minimum(result, label, value, minimum):
    """Performance regression guard: fail when ``value`` drops below ``minimum``.

    The measured value is appended to the experiment's persisted results file
    for this run (:func:`run_and_report` rewrites the file at the start of
    each run, like every fig/table output); the cross-PR perf trajectory is
    the git history of ``benchmarks/results/``.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{result.name}.txt")
    with open(path, "a") as handle:
        handle.write(f"guard: {label} = {value:.2f} (minimum {minimum})\n")
    assert value >= minimum, (
        f"performance regression: {label} = {value:.2f}, expected >= "
        f"{minimum} (see {path})")
