"""Benchmark: Table VI — protection techniques compared (coverage vs. overhead)."""

from repro.experiments import run_table6_technique_comparison

from bench_utils import run_and_report


def test_table6_technique_comparison(benchmark, bench_scale_light):
    result = run_and_report(benchmark, run_table6_technique_comparison,
                            bench_scale_light, model_name="lenet",
                            include_hong=True)
    data = result.data
    # The paper's ordering: TMR has full coverage at 200% overhead; Ranger
    # approaches that coverage at a tiny fraction of the cost; the partial
    # techniques (duplication, ABFT) sit below Ranger's coverage.
    assert data["tmr"]["coverage"] == 1.0
    assert data["tmr"]["overhead"] == 2.0
    assert data["ranger"]["overhead"] < 0.1
    assert data["ranger"]["coverage"] >= data["abft_conv"]["coverage"] - 0.1
    assert data["ranger"]["coverage"] >= 0.5
