"""Benchmark: Table III — time to insert Ranger into each model."""

from repro.experiments import run_table3_insertion_time

from bench_utils import run_and_report


def test_table3_insertion_time(benchmark, bench_scale):
    result = run_and_report(benchmark, run_table3_insertion_time, bench_scale)
    # The paper reports seconds per model on a laptop; our reduced models
    # should instrument in well under a second each.
    assert all(seconds < 5.0 for seconds in result.data.values())
