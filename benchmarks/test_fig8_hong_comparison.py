"""Benchmark: Fig. 8 — relative SDC reduction, Hong et al. vs. Ranger."""

import numpy as np

from repro.experiments import run_fig8_hong_comparison

from bench_utils import run_and_report


def test_fig8_hong_comparison(benchmark, bench_scale_light):
    result = run_and_report(benchmark, run_fig8_hong_comparison,
                            bench_scale_light, models=("lenet", "comma"))
    for model_name, entry in result.data.items():
        # The defense does nothing on models that already use Tanh...
        assert entry["tanh_hong"] == 0.0
        # ...while Ranger still reduces SDCs on both variants.
        assert entry["tanh_ranger"] >= 0.0
        assert entry["relu_ranger"] >= entry["relu_hong"] - 20.0
