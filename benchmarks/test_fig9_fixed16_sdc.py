"""Benchmark: Fig. 9 — SDC rates under the 16-bit (Q14.2) fixed-point type."""

import numpy as np

from repro.experiments import run_fig9_fixed16_sdc

from bench_utils import run_and_report


def test_fig9_fixed16_sdc(benchmark, bench_scale_light):
    result = run_and_report(benchmark, run_fig9_fixed16_sdc, bench_scale_light)
    originals = [entry["original"] for entry in result.data.values()]
    protected = [entry["ranger"] for entry in result.data.values()]
    # RQ4: Ranger remains effective with reduced-precision datatypes
    # (paper: 15.11% -> 0.93% on average).
    assert np.mean(protected) <= np.mean(originals)
