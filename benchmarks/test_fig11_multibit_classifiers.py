"""Benchmark: Fig. 11 — classifier SDC rates under multi-bit flips."""

import numpy as np

from repro.experiments import run_fig11_multibit_classifiers

from bench_utils import run_and_report


def test_fig11_multibit_classifiers(benchmark, bench_scale_light):
    result = run_and_report(benchmark, run_fig11_multibit_classifiers,
                            bench_scale_light, bit_counts=(2, 3, 4, 5),
                            models=("lenet",))
    for model_name, series in result.data["models"].items():
        original = np.array(series["original"])
        protected = np.array(series["ranger"])
        # Protected rates stay far below the multi-bit baseline at every bit
        # count (paper: 47.55% -> 0.87% on average for classifiers).
        assert np.all(protected <= original + 1e-9)
        assert protected.mean() < max(original.mean(), 1e-9)
