"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure of the paper at the committed
"bench" scale (reduced trial counts, reduced-size models — see DESIGN.md
section 5) and prints the resulting rows/series so the output can be compared
against the paper line by line.  ``pytest-benchmark`` records the wall-clock
cost of each regeneration.

Model training results are cached in-process (``repro.models.zoo``), so the
first benchmark that needs a given model pays its training cost and the rest
reuse it.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentScale

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__)) + os.sep


def pytest_collection_modifyitems(items):
    """Mark every benchmark as ``slow`` so CI can deselect the suite.

    The hook sees the whole session's items, so it filters down to this
    directory's.  The default local invocation (``pytest -x -q`` from the
    repo root) still runs everything; continuous integration passes
    ``-m "not slow"`` to keep the push/PR loop at tier-1 test latency.
    """
    for item in items:
        if str(item.fspath).startswith(_BENCH_DIR):
            item.add_marker(pytest.mark.slow)

#: The committed benchmark scale.  Raise `trials` toward 3000 and
#: `num_inputs` to 10 to approach the paper's campaign sizes.
BENCH_SCALE = ExperimentScale(
    trials=40,
    num_inputs=5,
    classifier_models=("lenet", "alexnet", "vgg11"),
    large_classifier_models=("vgg16", "resnet18", "squeezenet"),
    steering_models=("dave", "comma"),
    include_large_models=True,
    profile_samples=80,
    seed=0,
)

#: A lighter scale for the experiments that multiply campaign count by bit
#: counts or percentiles (Figs. 9-12, Table VI).
BENCH_SCALE_LIGHT = ExperimentScale(
    trials=30,
    num_inputs=4,
    classifier_models=("lenet", "alexnet"),
    large_classifier_models=("resnet18",),
    steering_models=("dave", "comma"),
    include_large_models=True,
    profile_samples=60,
    seed=0,
)


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_scale_light() -> ExperimentScale:
    return BENCH_SCALE_LIGHT


def run_and_report(benchmark, experiment_fn, scale, **kwargs):
    """Run one experiment under pytest-benchmark and print its table."""
    result = benchmark.pedantic(lambda: experiment_fn(scale, **kwargs),
                                rounds=1, iterations=1)
    print()
    print(result.rendered)
    return result
