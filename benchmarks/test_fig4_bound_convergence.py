"""Benchmark: Fig. 4 — restriction-bound convergence vs. profiling data."""

from repro.experiments import run_fig4_bound_convergence

from bench_utils import run_and_report


def test_fig4_bound_convergence(benchmark, bench_scale):
    result = run_and_report(benchmark, run_fig4_bound_convergence, bench_scale,
                            model_name="vgg16")
    # The paper's claim: the observed range converges well before the full
    # profiling set is used; at 100% it is exactly the global maximum.
    assert result.data["mean_curve"][-1] == 1.0
    assert result.data["mean_curve"][-2] > 0.8
