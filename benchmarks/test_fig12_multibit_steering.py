"""Benchmark: Fig. 12 — steering-model SDC rates under multi-bit flips."""

import numpy as np

from repro.experiments import run_fig12_multibit_steering

from bench_utils import run_and_report


def test_fig12_multibit_steering(benchmark, bench_scale_light):
    result = run_and_report(benchmark, run_fig12_multibit_steering,
                            bench_scale_light, bit_counts=(2, 4))
    for model_name, series in result.data["models"].items():
        original = np.array(series["original"])
        protected = np.array(series["ranger"])
        assert np.all(protected <= original + 1e-9)
