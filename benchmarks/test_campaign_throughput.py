"""Benchmark: fault-injection campaign throughput, incremental and parallel.

Measures trials/sec of the incremental execution engine (golden activation
cache + partial re-execution of the fault cone) against the legacy
full-re-execution flag, for paired (unprotected + Ranger) campaigns on the
deep models, under the paper's 32-bit and 16-bit fixed-point configurations —
plus the batched multi-trial replay (`run(batch_trials=B)`, ULP_TOLERANT)
against the incremental reference on a longer plan list, and the
multiprocess fan-out's scaling over worker counts.

The regression guards pin the speedups that the engine's design delivers:
feed-forward deep models mask faults aggressively (ReLU / pooling / Ranger
clipping / fixed-point quantization squash the corrupted value, ending the
replay early), so SqueezeNet's paired campaigns run several times faster
incrementally; ResNet's skip connections propagate every surviving fault to
the output, which bounds its gain near the cone-size ratio (~2x).

The fan-out guards are CPU-gated: parallel speedup is a property of the host
(a 4-worker campaign cannot beat serial on a single-core container), so the
>=2x scaling bar is enforced only where >=4 CPUs are actually available;
smaller machines instead enforce that fan-out overhead stays bounded.  The
scaling experiment itself asserts bit-identical per-criterion counts across
all worker counts on every run, so the determinism guarantee is re-checked
wherever the benchmark executes.
"""

import os

from repro.experiments import (
    ExperimentScale,
    run_campaign_throughput,
    run_parallel_scaling,
)

from bench_utils import guard_minimum, run_and_report

#: Dedicated scale: enough trials for stable timing ratios; models are
#: trained with the same configuration (and in-process cache) as the other
#: benchmarks.
THROUGHPUT_SCALE = ExperimentScale(
    trials=240,
    num_inputs=5,
    classifier_models=(),
    # vgg11 rides along for the batched-replay section only (its full-width
    # convolutions are the best BLAS-batching case in the zoo).
    large_classifier_models=("resnet18", "squeezenet", "vgg11"),
    steering_models=(),
    include_large_models=True,
    profile_samples=80,
    seed=0,
)


def test_campaign_throughput(benchmark):
    result = run_and_report(benchmark, run_campaign_throughput,
                            THROUGHPUT_SCALE)
    for model_name, by_dtype in result.data.items():
        for dtype_name, entry in by_dtype.items():
            for variant in ("unprotected", "protected"):
                if variant not in entry:
                    continue  # batched-section-only models (vgg11)
                # Partial re-execution must never be slower than full
                # re-execution by more than timing noise.
                guard_minimum(result,
                              f"{model_name}/{dtype_name}/{variant} speedup",
                              entry[variant]["speedup"], 1.2)
    # The headline targets: the deepest feed-forward model's paired
    # campaigns exceed 3x under the paper's 16-bit configuration, and the
    # 32-bit paired campaign stays comfortably above 2x.
    squeezenet = result.data["squeezenet"]
    guard_minimum(result, "squeezenet/fixed16 protected speedup",
                  squeezenet["fixed16"]["protected"]["speedup"], 3.0)
    guard_minimum(result, "squeezenet/fixed16 paired speedup",
                  squeezenet["fixed16"]["paired_speedup"], 2.5)
    guard_minimum(result, "squeezenet/fixed32 paired speedup",
                  squeezenet["fixed32"]["paired_speedup"], 2.0)
    resnet = result.data["resnet18"]
    guard_minimum(result, "resnet18/fixed32 paired speedup",
                  resnet["fixed32"]["paired_speedup"], 1.5)
    # Batched multi-trial replay: never slower than incremental on any
    # measured configuration, and the headline ULP_TOLERANT win — >=1.5x
    # trials/sec over the bit-exact incremental path — holds on at least
    # one zoo model.  VGG-11's full-width feed-forward convolutions batch
    # best (measured ~2-3x); the width-0.5 squeezenet preset sits around
    # ~1.3-1.5x and ResNet's skip connections keep whole cones alive,
    # capping its gain near ~1.2-1.3x.
    batched_speedups = {
        f"{model_name}/{dtype_name}":
            entry["batched"]["speedup"]
        for model_name, by_dtype in result.data.items()
        for dtype_name, entry in by_dtype.items()
        if "batched" in entry
    }
    for label, speedup in batched_speedups.items():
        guard_minimum(result, f"{label} batched-vs-incremental speedup",
                      speedup, 1.0)
    guard_minimum(result, "best batched-vs-incremental speedup",
                  max(batched_speedups.values()), 1.5)
    guard_minimum(result, "vgg11 batched-vs-incremental speedup (best dtype)",
                  max(result.data["vgg11"][dtype]["batched"]["speedup"]
                      for dtype in result.data["vgg11"]), 1.5)


#: Dedicated scale for the fan-out scaling sweep: one deep model, enough
#: trials that per-worker fixed costs (model unpickle + golden-cache build)
#: amortize away.
PARALLEL_SCALE = ExperimentScale(
    trials=320,
    num_inputs=4,
    classifier_models=(),
    large_classifier_models=("squeezenet",),
    steering_models=(),
    include_large_models=True,
    profile_samples=80,
    seed=0,
)


def test_parallel_scaling(benchmark):
    result = run_and_report(benchmark, run_parallel_scaling, PARALLEL_SCALE)
    cpus = result.data["cpus"]
    entry = result.data["squeezenet"]
    scaling = entry[4]["trials_per_sec"] / entry[1]["trials_per_sec"]
    if cpus >= 4:
        guard_minimum(result, "squeezenet workers=4 vs workers=1 scaling",
                      scaling, 2.0)
    elif cpus >= 2:
        # Two or three cores cannot reach the 4-way bar, and 4 workers
        # oversubscribing them while each rebuilds its golden caches can
        # eat most of the win; require the fan-out to roughly break even.
        guard_minimum(result,
                      f"squeezenet workers=4 vs workers=1 scaling "
                      f"({cpus} cpus)", scaling, 0.8)
    else:
        # Single-core host: parallel speedup is physically impossible, so
        # bound the fan-out overhead instead (4 workers must stay within
        # 4x of serial even while each rebuilds its own golden caches).
        guard_minimum(result,
                      "squeezenet workers=4 vs workers=1 overhead bound "
                      "(single cpu)", scaling, 0.25)
