"""Benchmark: fault-injection campaign throughput, incremental vs. full.

Measures trials/sec of the incremental execution engine (golden activation
cache + partial re-execution of the fault cone) against the legacy
full-re-execution flag, for paired (unprotected + Ranger) campaigns on the
deep models, under the paper's 32-bit and 16-bit fixed-point configurations.

The regression guards pin the speedups that the engine's design delivers:
feed-forward deep models mask faults aggressively (ReLU / pooling / Ranger
clipping / fixed-point quantization squash the corrupted value, ending the
replay early), so SqueezeNet's paired campaigns run several times faster
incrementally; ResNet's skip connections propagate every surviving fault to
the output, which bounds its gain near the cone-size ratio (~2x).
"""

from repro.experiments import ExperimentScale, run_campaign_throughput

from bench_utils import guard_minimum, run_and_report

#: Dedicated scale: enough trials for stable timing ratios; models are
#: trained with the same configuration (and in-process cache) as the other
#: benchmarks.
THROUGHPUT_SCALE = ExperimentScale(
    trials=240,
    num_inputs=5,
    classifier_models=(),
    large_classifier_models=("resnet18", "squeezenet"),
    steering_models=(),
    include_large_models=True,
    profile_samples=80,
    seed=0,
)


def test_campaign_throughput(benchmark):
    result = run_and_report(benchmark, run_campaign_throughput,
                            THROUGHPUT_SCALE)
    for model_name, by_dtype in result.data.items():
        for dtype_name, entry in by_dtype.items():
            for variant in ("unprotected", "protected"):
                # Partial re-execution must never be slower than full
                # re-execution by more than timing noise.
                guard_minimum(result,
                              f"{model_name}/{dtype_name}/{variant} speedup",
                              entry[variant]["speedup"], 1.2)
    # The headline targets: the deepest feed-forward model's paired
    # campaigns exceed 3x under the paper's 16-bit configuration, and the
    # 32-bit paired campaign stays comfortably above 2x.
    squeezenet = result.data["squeezenet"]
    guard_minimum(result, "squeezenet/fixed16 protected speedup",
                  squeezenet["fixed16"]["protected"]["speedup"], 3.0)
    guard_minimum(result, "squeezenet/fixed16 paired speedup",
                  squeezenet["fixed16"]["paired_speedup"], 2.5)
    guard_minimum(result, "squeezenet/fixed32 paired speedup",
                  squeezenet["fixed32"]["paired_speedup"], 2.0)
    resnet = result.data["resnet18"]
    guard_minimum(result, "resnet18/fixed32 paired speedup",
                  resnet["fixed32"]["paired_speedup"], 1.5)
