"""Benchmark: fault-injection campaign throughput, incremental and parallel.

Measures trials/sec of the incremental execution engine (golden activation
cache + partial re-execution of the fault cone) against the legacy
full-re-execution flag, for paired (unprotected + Ranger) campaigns on the
deep models, under the paper's 32-bit and 16-bit fixed-point configurations —
plus the union-cone batched replay (`run(batch_trials=B)`, ULP_TOLERANT,
cross-site packing with occupancy/overhead accounting) against the
incremental reference on a longer plan list — with sparse elementwise delta
propagation (the default) measured against a dense-frontier rerun of the
same plans — the persistent `CampaignPool` against fresh per-campaign worker
pools, and the multiprocess fan-out's scaling over worker counts.

The trials-to-target-CI section measures the statistical axis instead of
the mechanical one: how many trials sequential early stopping
(`run(target_half_width=...)`) and stratified allocation (`strata=...`)
consume to reach a ±5% confidence half-width, against the worst-case
fixed budget N(τ) = ⌈z²/4τ²⌉ = 385 that a non-adaptive campaign must
run.  Those trial counts are exact functions of the campaign seed, so
their guards are noise-free.

The regression guards pin the speedups that the engine's design delivers:
feed-forward deep models mask faults aggressively (ReLU / pooling / Ranger
clipping / fixed-point quantization squash the corrupted value, ending the
replay early), so SqueezeNet's paired campaigns run several times faster
incrementally; ResNet's skip connections propagate every surviving fault to
the output, which bounds its gain near the cone-size ratio (~2x).

The fan-out guards are CPU-gated: parallel speedup is a property of the host
(a 4-worker campaign cannot beat serial on a single-core container), so the
>=2x scaling bar is enforced only where >=4 CPUs are actually available;
smaller machines instead enforce that fan-out overhead stays bounded.  The
scaling experiment itself asserts bit-identical per-criterion counts across
all worker counts on every run, so the determinism guarantee is re-checked
wherever the benchmark executes.
"""

import os
import time

from repro.analysis import render_table
from repro.experiments import (
    ExperimentScale,
    run_adaptive_efficiency,
    run_campaign_throughput,
    run_parallel_scaling,
)
from repro.experiments.common import ExperimentResult, get_prepared
from repro.injection import CampaignPool, FaultInjectionCampaign, SingleBitFlip
from repro.quantization import FIXED32, fixed32_policy

from bench_utils import guard_minimum, run_and_report, worker_peak_rss_bytes

#: Dedicated scale: enough trials for stable timing ratios; models are
#: trained with the same configuration (and in-process cache) as the other
#: benchmarks.
THROUGHPUT_SCALE = ExperimentScale(
    trials=240,
    num_inputs=5,
    classifier_models=(),
    # vgg11 rides along for the batched-replay section only (its full-width
    # convolutions are the best BLAS-batching case in the zoo).
    large_classifier_models=("resnet18", "squeezenet", "vgg11"),
    steering_models=(),
    include_large_models=True,
    profile_samples=80,
    seed=0,
)


def test_campaign_throughput(benchmark):
    result = run_and_report(benchmark, run_campaign_throughput,
                            THROUGHPUT_SCALE)
    for model_name, by_dtype in result.data.items():
        if model_name == "pool":
            continue  # the pool section's flat stats (guarded below)
        for dtype_name, entry in by_dtype.items():
            for variant in ("unprotected", "protected"):
                if variant not in entry:
                    continue  # batched-section-only models (vgg11)
                # Partial re-execution must never be slower than full
                # re-execution by more than timing noise.
                guard_minimum(result,
                              f"{model_name}/{dtype_name}/{variant} speedup",
                              entry[variant]["speedup"], 1.2)
    # The headline targets: the deepest feed-forward model's paired
    # campaigns exceed 3x under the paper's 16-bit configuration, and the
    # 32-bit paired campaign stays comfortably above 2x.
    squeezenet = result.data["squeezenet"]
    guard_minimum(result, "squeezenet/fixed16 protected speedup",
                  squeezenet["fixed16"]["protected"]["speedup"], 3.0)
    guard_minimum(result, "squeezenet/fixed16 paired speedup",
                  squeezenet["fixed16"]["paired_speedup"], 2.5)
    guard_minimum(result, "squeezenet/fixed32 paired speedup",
                  squeezenet["fixed32"]["paired_speedup"], 2.0)
    resnet = result.data["resnet18"]
    guard_minimum(result, "resnet18/fixed32 paired speedup",
                  resnet["fixed32"]["paired_speedup"], 1.5)
    # Union-cone batched replay: never slower than incremental on any
    # measured configuration; VGG-11's full-width feed-forward convolutions
    # batch best (measured ~3.3-3.9x); sparse delta propagation closes the
    # per-element gap on the formerly site-bound models (squeezenet
    # ~2.0-2.7x, resnet18 ~1.8-2.1x, from ~1.5-1.7x/~1.4-1.6x before).
    # Guards sit 15-20% below the single-CPU container's measured minima.
    batched = {
        (model_name, dtype_name): entry["batched"]
        for model_name, by_dtype in result.data.items()
        if model_name != "pool"
        for dtype_name, entry in by_dtype.items()
        if "batched" in entry
    }
    for (model_name, dtype_name), stats in batched.items():
        guard_minimum(result,
                      f"{model_name}/{dtype_name} batched-vs-incremental "
                      f"speedup", stats["speedup"], 1.0)
    guard_minimum(result, "best batched-vs-incremental speedup",
                  max(stats["speedup"] for stats in batched.values()), 1.5)
    guard_minimum(result, "vgg11 batched-vs-incremental speedup (best dtype)",
                  max(stats["speedup"]
                      for (model, _), stats in batched.items()
                      if model == "vgg11"), 2.2)
    guard_minimum(result,
                  "squeezenet batched-vs-incremental speedup (best dtype)",
                  max(stats["speedup"]
                      for (model, _), stats in batched.items()
                      if model == "squeezenet"), 1.9)
    guard_minimum(result,
                  "resnet18 batched-vs-incremental speedup (best dtype)",
                  max(stats["speedup"]
                      for (model, _), stats in batched.items()
                      if model == "resnet18"), 1.6)
    # Sparse delta propagation: the sparse batched replay (the default) must
    # stay within timing noise of — and on the best configuration beat — a
    # dense-frontier rerun of the same plans, and the element accounting
    # must show real skipped work where rows are large enough to clear the
    # cost-model floor (resnet18's post-conv re-sparsified deltas).
    # Measured sparse-vs-dense: 0.77 (vgg11/fixed16, conv-dominated — the
    # scatter into conv's assembled input is the cost) up to 1.16
    # (squeezenet/fixed16, the longest elementwise stretches).
    for (model_name, dtype_name), stats in batched.items():
        guard_minimum(result,
                      f"{model_name}/{dtype_name} sparse-vs-dense batched "
                      f"speedup", stats["sparse_speedup"], 0.65)
    guard_minimum(result, "best sparse-vs-dense batched speedup",
                  max(stats["sparse_speedup"] for stats in batched.values()),
                  0.95)
    guard_minimum(result,
                  "resnet18 sparse-skipped element fraction (best dtype)",
                  max(stats["sparse_fraction"]
                      for (model, _), stats in batched.items()
                      if model == "resnet18"), 0.3)
    # Occupancy: the union-cone packer must fill batches well past the
    # identical-site ceiling (~10 rows at this trial count).  Packing is
    # deterministic, so these guards carry no timing noise.
    for model_name in ("squeezenet", "resnet18"):
        for dtype_name in result.data[model_name]:
            stats = batched[(model_name, dtype_name)]
            guard_minimum(result,
                          f"{model_name}/{dtype_name} mean batch occupancy "
                          f"(B=32)", stats["mean_occupancy"], 24.0)
            guard_minimum(result,
                          f"{model_name}/{dtype_name} batched trial "
                          f"fraction", stats["batched_fraction"], 0.95)
    # Packing stays a rounding error of campaign wall time (<= 2% overall).
    total_pack = sum(stats["pack_seconds"] for stats in batched.values())
    total_batched = sum(stats["batched_seconds"] for stats in batched.values())
    guard_minimum(result, "packing-cost budget headroom (2% of wall time)",
                  0.02 * total_batched / total_pack, 1.0)
    # Persistent pool: back-to-back same-config campaigns must beat fresh
    # per-campaign pools (spawn + worker rebuild amortized away), and the
    # experiment asserts bit-identical counts on every run.  Like the
    # fan-out scaling guard below, the bar is CPU-gated: with two workers
    # oversubscribing a single core, fresh-vs-pooled timing is dominated by
    # scheduler noise (measured 0.75-1.36x across runs on the 1-CPU
    # container), so single-core hosts only bound the overhead.
    if (os.cpu_count() or 1) >= 2:
        guard_minimum(result, "CampaignPool reuse speedup over fresh fan-out",
                      result.data["pool"]["speedup"], 1.05)
    else:
        guard_minimum(result,
                      "CampaignPool reuse overhead bound (single cpu)",
                      result.data["pool"]["speedup"], 0.5)


#: Dedicated scale for the shm-dispatch section.  Per-task dispatch payload
#: bytes are a deterministic function of the campaign spec — not of wall
#: clock — so the campaign itself stays short; vgg11 is the zoo's heaviest
#: spec (largest weight arrays), the worst case legacy dispatch pickles
#: into every worker task.
SHM_DISPATCH_SCALE = ExperimentScale(
    trials=64,
    num_inputs=4,
    classifier_models=(),
    large_classifier_models=("vgg11",),
    steering_models=(),
    include_large_models=True,
    profile_samples=80,
    seed=0,
)

SHM_DISPATCH_WORKERS = 2
#: Back-to-back campaigns per dispatch backend (the second run exercises
#: the worker-side campaign-cache hit path, where shm dispatch skips the
#: spec decode entirely).
SHM_DISPATCH_REPEATS = 2


def run_shm_dispatch(scale):
    """Worker dispatch economics of the shared-memory cache plane.

    Runs the same vgg11 campaign through two fresh persistent pools — one
    forced onto the legacy pickle-everything dispatch (``use_shm=False``),
    one on the shared-memory cache plane (the default) — and reports the
    per-task dispatch payload bytes plus the peak worker RSS of each
    phase.  Each phase owns fresh worker processes because ``VmHWM`` is a
    per-process high-water mark and cannot be reset.  Per-criterion SDC
    counts must be identical across the two backends (the plane's
    bit-identity guarantee), asserted on every run.
    """
    prepared = get_prepared("vgg11", scale)
    inputs, _ = prepared.correctly_predicted_inputs(scale.num_inputs,
                                                    seed=scale.seed)

    def fresh_campaign() -> FaultInjectionCampaign:
        return FaultInjectionCampaign(
            prepared.model, inputs, fault_model=SingleBitFlip(FIXED32),
            dtype_policy=fixed32_policy(), seed=scale.seed)

    plans = fresh_campaign().generate_plans(scale.trials)
    reference = None
    phases = {}
    for backend, use_shm in (("pickle", False), ("shm", None)):
        pool = CampaignPool(workers=SHM_DISPATCH_WORKERS, use_shm=use_shm)
        try:
            start = time.perf_counter()
            for _ in range(SHM_DISPATCH_REPEATS):
                result = fresh_campaign().run(plans=plans, pool=pool)
                if reference is None:
                    reference = result
                elif result.sdc_counts != reference.sdc_counts:
                    raise RuntimeError(
                        f"shm dispatch diverged from the pickle reference: "
                        f"{result.sdc_counts} != {reference.sdc_counts}")
            seconds = time.perf_counter() - start
            stats = pool.stats()
            # Worker pids are only reachable while the pool is open.
            rss = worker_peak_rss_bytes(pool)
        finally:
            pool.close()
        phases[backend] = dict(
            stats,
            seconds=seconds,
            payload_per_task=stats["payload_bytes"] / max(stats["tasks"], 1),
            peak_worker_rss=max(rss.values(), default=0),
        )

    payload_reduction = 1.0 - (phases["shm"]["payload_per_task"]
                               / phases["pickle"]["payload_per_task"])
    rss_ratio = (phases["pickle"]["peak_worker_rss"]
                 / phases["shm"]["peak_worker_rss"]
                 if phases["shm"]["peak_worker_rss"] else None)
    rows = [[backend, entry["tasks"], entry["shm_tasks"],
             entry["payload_per_task"], entry["hits"], entry["remaps"],
             entry["peak_worker_rss"] / 2 ** 20]
            for backend, entry in phases.items()]
    rendered = render_table(
        ["backend", "tasks", "shm tasks", "payload bytes/task",
         "worker-cache hits", "remaps", "peak worker RSS MiB"],
        rows,
        title=(f"Campaign dispatch — shared-memory cache plane vs. pickled "
               f"specs (vgg11, {scale.trials} trials, "
               f"{SHM_DISPATCH_WORKERS} workers, "
               f"{SHM_DISPATCH_REPEATS} campaigns/backend; payload "
               f"reduction {100.0 * payload_reduction:.1f}%)"))
    return ExperimentResult(
        name="shm_dispatch",
        paper_reference="Sec. IV campaign methodology",
        data={"phases": phases, "payload_reduction": payload_reduction,
              "rss_ratio": rss_ratio, "workers": SHM_DISPATCH_WORKERS},
        rendered=rendered)


def test_shm_dispatch_payload(benchmark):
    """Dispatch payload and worker RSS, legacy pickled specs vs. the plane.

    The payload guard is deterministic (payload bytes are a pure function
    of the spec and the plane's externalization rules — no timing in the
    ratio), so it carries no noise margin and holds on any host.  The RSS
    guard is a no-regression bound: with ``fork`` workers, copy-on-write
    already shares the parent's pages, so the plane's RSS win on a warm
    pool is modest — the guard catches the plane *costing* memory.
    """
    result = run_and_report(benchmark, run_shm_dispatch, SHM_DISPATCH_SCALE)
    phases = result.data["phases"]
    # Every task of the shm phase must actually travel via the plane, and
    # the legacy phase must never touch it (it is the before-measurement).
    assert phases["shm"]["shm_tasks"] == phases["shm"]["tasks"] > 0
    assert phases["pickle"]["shm_tasks"] == 0
    # The second campaign of the shm phase must be served from the
    # worker-side campaign cache without re-decoding the spec.
    guard_minimum(result, "shm worker-cache hits",
                  phases["shm"]["hits"], SHM_DISPATCH_WORKERS)
    # Headline: >=90% fewer dispatch payload bytes per worker task on the
    # vgg11-scale campaign (weights + inputs ride in shared segments; only
    # the graph skeleton and the segment manifest still travel).
    guard_minimum(result, "per-task dispatch payload reduction via shm",
                  result.data["payload_reduction"], 0.90)
    if result.data["rss_ratio"] is not None:
        guard_minimum(result, "peak worker RSS ratio (pickle/shm)",
                      result.data["rss_ratio"], 0.8)


#: Dedicated scale for the fan-out scaling sweep: one deep model, enough
#: trials that per-worker fixed costs (model unpickle + golden-cache build)
#: amortize away.
PARALLEL_SCALE = ExperimentScale(
    trials=320,
    num_inputs=4,
    classifier_models=(),
    large_classifier_models=("squeezenet",),
    steering_models=(),
    include_large_models=True,
    profile_samples=80,
    seed=0,
)


def test_parallel_scaling(benchmark):
    result = run_and_report(benchmark, run_parallel_scaling, PARALLEL_SCALE)
    cpus = result.data["cpus"]
    entry = result.data["squeezenet"]
    scaling = entry[4]["trials_per_sec"] / entry[1]["trials_per_sec"]
    if cpus >= 4:
        guard_minimum(result, "squeezenet workers=4 vs workers=1 scaling",
                      scaling, 2.0)
    elif cpus >= 2:
        # Two or three cores cannot reach the 4-way bar, and 4 workers
        # oversubscribing them while each rebuilds its golden caches can
        # eat most of the win; require the fan-out to roughly break even.
        guard_minimum(result,
                      f"squeezenet workers=4 vs workers=1 scaling "
                      f"({cpus} cpus)", scaling, 0.8)
    else:
        # Single-core host: parallel speedup is physically impossible, so
        # bound the fan-out overhead instead (4 workers must stay within
        # 4x of serial even while each rebuilds its own golden caches).
        guard_minimum(result,
                      "squeezenet workers=4 vs workers=1 overhead bound "
                      "(single cpu)", scaling, 0.25)


def test_adaptive_trials_to_target_ci(benchmark):
    """Trials-to-target-CI: sequential stopping vs. the fixed worst-case budget.

    Unlike the wall-clock sections above, every number here is a
    deterministic function of the campaign seed — the stopping rule fires
    at the same wave on every host — so the guards carry no noise margin:
    a guard trip means the statistics changed, not the machine.
    """
    result = run_and_report(benchmark, run_adaptive_efficiency,
                            THROUGHPUT_SCALE)
    for model_name, variants in result.data["models"].items():
        for variant, entry in variants.items():
            # Early stopping can never spend more than the fixed budget,
            # and both runs must actually deliver the target half-width.
            guard_minimum(result,
                          f"{model_name}/{variant} adaptive-vs-fixed trial "
                          f"ratio", entry["speedup"], 1.0)
            guard_minimum(result,
                          f"{model_name}/{variant} stratified-vs-fixed trial "
                          f"ratio", entry["stratified_speedup"], 1.0)
        # The headline claim: on Ranger-protected models the observed SDC
        # rate is near zero, the Wilson interval collapses after a few
        # waves, and the adaptive campaign reaches the same +-5% target
        # with >=3x fewer trials than the worst-case fixed budget.
        guard_minimum(result,
                      f"{model_name}/ranger adaptive-vs-fixed trial ratio "
                      f"(headline)", variants["ranger"]["speedup"], 3.0)
        guard_minimum(result,
                      f"{model_name}/ranger stratified-vs-fixed trial ratio "
                      f"(headline)", variants["ranger"]["stratified_speedup"],
                      3.0)
    # Where plain stopping can't save much (resnet18 unprotected sits near
    # p = 0.32, close to the worst case the fixed budget was sized for),
    # Neyman allocation still concentrates trials into the high-variance
    # strata and roughly halves the spend (measured 2.01x vs 1.09x).
    guard_minimum(result,
                  "resnet18/unprotected stratified-vs-fixed trial ratio "
                  "(importance-sampling win)",
                  result.data["models"]["resnet18"]["unprotected"]
                  ["stratified_speedup"], 1.5)
