"""Benchmark: Table II — fault-free accuracy with and without Ranger."""

from repro.experiments import run_table2_accuracy

from bench_utils import run_and_report


def test_table2_accuracy(benchmark, bench_scale):
    result = run_and_report(benchmark, run_table2_accuracy, bench_scale)
    for model_name, entry in result.data.items():
        for metric, before in entry["without"].items():
            after = entry["with"][metric]
            if metric in ("top1", "top5"):
                # Classification accuracy must not drop (it may tick up, as
                # the paper observes for SqueezeNet).
                assert after >= before - 0.02
            else:
                # Regression error must not grow by more than 5%.
                assert after <= before * 1.05 + 1e-9
