"""Benchmark: Table IV — FLOPs overhead of Ranger per model."""

from repro.experiments import run_table4_flops_overhead

from bench_utils import run_and_report


def test_table4_flops_overhead(benchmark, bench_scale):
    result = run_and_report(benchmark, run_table4_flops_overhead, bench_scale)
    # Paper: 0.53% average overhead; anything in the low single digits
    # reproduces the "negligible overhead" claim on reduced-size models.
    assert result.data["average_overhead_percent"] < 5.0
    per_model = {k: v for k, v in result.data.items()
                 if isinstance(v, dict)}
    assert all(entry["overhead"] < 0.05 for entry in per_model.values())
