"""Benchmark: Section VI-C — out-of-bound policy design alternatives."""

from repro.experiments import run_sec6c_design_alternatives

from bench_utils import run_and_report


def test_sec6c_design_alternatives(benchmark, bench_scale_light):
    result = run_and_report(benchmark, run_sec6c_design_alternatives,
                            bench_scale_light, model_name="lenet",
                            policies=("clip", "zero", "random"))
    clip = result.data["clip"]
    zero = result.data["zero"]
    # All policies reduce the SDC rate relative to the unprotected model...
    for entry in result.data.values():
        assert entry["sdc"] <= entry["original_sdc"] + 1e-9
    # ...but only clipping is guaranteed to preserve fault-free accuracy
    # (zero-reset is the alternative the paper shows can degrade it).
    assert clip["accuracy"] >= clip["baseline_accuracy"] - 0.02
    assert zero["accuracy"] <= clip["accuracy"] + 0.02
