"""Unit tests for fault models, the injector, SDC criteria and campaigns."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.injection import (
    ConsecutiveBitFlip,
    FaultInjectionCampaign,
    FaultInjector,
    InjectionError,
    MultiBitFlip,
    RandomValueFault,
    SingleBitFlip,
    SteeringDeviation,
    StuckAtZeroFault,
    TopKMisclassification,
    compare_protection,
    criteria_for_model,
    downstream_nodes,
    last_layer_exclusions,
)
from repro.quantization import FIXED16, FIXED32


class TestFaultModels:
    def test_single_bit_flip_changes_value(self, rng):
        fm = SingleBitFlip(FIXED32)
        corrupted, bit = fm.corrupt(1.5, rng)
        assert corrupted != 1.5
        assert 0 <= bit < 32

    def test_single_bit_flip_float32(self, rng):
        fm = SingleBitFlip("float32")
        corrupted, bit = fm.corrupt(1.5, rng)
        assert 0 <= bit < 32

    def test_multi_bit_sites(self):
        fm = MultiBitFlip(num_bits=4)
        assert fm.sites_per_event == 4
        assert "4" in fm.describe()

    def test_multi_bit_invalid(self):
        with pytest.raises(ValueError):
            MultiBitFlip(num_bits=0)

    def test_consecutive_flip_within_format(self, rng):
        fm = ConsecutiveBitFlip(num_bits=3, fmt=FIXED16)
        corrupted, start = fm.corrupt(2.0, rng)
        assert 0 <= start <= FIXED16.total_bits - 3
        assert corrupted != 2.0

    def test_consecutive_requires_fixed_point(self):
        with pytest.raises(ValueError):
            ConsecutiveBitFlip(num_bits=2, fmt="float32")

    def test_random_value_fault_in_range(self, rng):
        fm = RandomValueFault(0.0, 5.0)
        value, bit = fm.corrupt(100.0, rng)
        assert 0.0 <= value <= 5.0 and bit is None

    def test_random_value_invalid_range(self):
        with pytest.raises(ValueError):
            RandomValueFault(5.0, 0.0)

    def test_stuck_at_zero(self, rng):
        assert StuckAtZeroFault().corrupt(123.0, rng)[0] == 0.0


class TestSDCCriteria:
    def test_top1_detects_label_change(self):
        golden = np.array([[0.7, 0.2, 0.1]])
        faulty = np.array([[0.1, 0.8, 0.1]])
        assert TopKMisclassification(k=1).is_sdc(golden, faulty)
        assert not TopKMisclassification(k=1).is_sdc(golden, golden)

    def test_top5_more_permissive_than_top1(self):
        golden = np.zeros((1, 10))
        golden[0, 3] = 1.0
        faulty = np.zeros((1, 10))
        faulty[0, 7] = 1.0
        faulty[0, 3] = 0.5  # correct label still in top 5
        assert TopKMisclassification(k=1).is_sdc(golden, faulty)
        assert not TopKMisclassification(k=5).is_sdc(golden, faulty)

    def test_topk_invalid(self):
        with pytest.raises(ValueError):
            TopKMisclassification(k=0)

    def test_steering_threshold_degrees(self):
        criterion = SteeringDeviation(threshold_degrees=30, angle_unit="degrees")
        assert criterion.is_sdc(np.array([10.0]), np.array([50.0]))
        assert not criterion.is_sdc(np.array([10.0]), np.array([30.0]))

    def test_steering_threshold_radians_conversion(self):
        criterion = SteeringDeviation(threshold_degrees=30, angle_unit="radians")
        # pi/2 radians deviation = 90 degrees > 30 degrees.
        assert criterion.is_sdc(np.array([0.0]), np.array([np.pi / 2]))
        assert not criterion.is_sdc(np.array([0.0]), np.array([np.deg2rad(10)]))

    def test_nonfinite_output_is_sdc(self):
        criterion = SteeringDeviation(threshold_degrees=30, angle_unit="degrees")
        assert criterion.is_sdc(np.array([0.0]), np.array([np.nan]))

    def test_criteria_for_model(self, lenet_prepared, comma_prepared):
        assert [c.name for c in criteria_for_model(lenet_prepared.model)] == ["top1"]
        steering = criteria_for_model(comma_prepared.model)
        assert len(steering) == 4

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            SteeringDeviation(threshold_degrees=0.0)


class TestInjector:
    def test_requires_state_space_profile(self, lenet_prepared):
        injector = FaultInjector(lenet_prepared.model, SingleBitFlip())
        with pytest.raises(InjectionError):
            injector.sample_plan()

    def test_profile_and_sample(self, lenet_prepared):
        model = lenet_prepared.model
        injector = FaultInjector(model, SingleBitFlip(), seed=0)
        sizes = injector.profile_state_space(
            lenet_prepared.dataset.x_val[:1])
        assert injector.state_space_size == sum(sizes.values())
        plan = injector.sample_plan()
        assert len(plan.sites) == 1
        node, element = plan.sites[0]
        assert node in sizes
        assert 0 <= element < sizes[node]

    def test_last_layer_excluded(self, lenet_prepared):
        model = lenet_prepared.model
        excluded = last_layer_exclusions(model)
        assert model.logits_name in excluded
        assert "softmax" in excluded
        injector = FaultInjector(model, SingleBitFlip(), seed=0)
        sizes = injector.profile_state_space(lenet_prepared.dataset.x_val[:1])
        assert model.logits_name not in sizes
        assert "fc3/matmul" not in sizes

    def test_protection_nodes_never_injected(self, lenet_protected,
                                             lenet_prepared):
        protected, _ = lenet_protected
        injector = FaultInjector(protected, SingleBitFlip(), seed=0)
        sizes = injector.profile_state_space(lenet_prepared.dataset.x_val[:1])
        assert not any("ranger" in name for name in sizes)

    def test_injection_changes_exactly_one_value(self, lenet_prepared):
        model = lenet_prepared.model
        injector = FaultInjector(model, SingleBitFlip(FIXED32), seed=1)
        x = lenet_prepared.dataset.x_val[:1]
        injector.profile_state_space(x)
        executor = model.executor()
        faulty, faults = injector.inject(executor, x)
        assert len(faults) == 1
        assert faults[0].corrupted != faults[0].original

    def test_multibit_injection_hits_multiple_sites(self, lenet_prepared):
        model = lenet_prepared.model
        injector = FaultInjector(model, MultiBitFlip(3, FIXED32), seed=1)
        x = lenet_prepared.dataset.x_val[:1]
        injector.profile_state_space(x)
        _, faults = injector.inject(model.executor(), x)
        assert len(faults) == 3

    def test_downstream_nodes(self, lenet_prepared):
        graph = lenet_prepared.model.graph
        reachable = downstream_nodes(graph, "conv1/relu")
        assert "softmax" in reachable
        assert "conv1/conv" not in reachable

    def test_deterministic_given_seed(self, lenet_prepared):
        model = lenet_prepared.model
        x = lenet_prepared.dataset.x_val[:1]

        def run(seed):
            injector = FaultInjector(model, SingleBitFlip(FIXED32), seed=seed)
            injector.profile_state_space(x)
            return injector.sample_plan().sites

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_sample_plans_vectorized(self, lenet_prepared):
        model = lenet_prepared.model
        injector = FaultInjector(model, MultiBitFlip(3, FIXED32), seed=0)
        sizes = injector.profile_state_space(lenet_prepared.dataset.x_val[:1])
        plans = injector.sample_plans(50)
        assert len(plans) == 50
        for plan in plans:
            assert len(plan.sites) == 3
            for node, element in plan.sites:
                assert node in sizes
                assert 0 <= element < sizes[node]
        assert injector.sample_plans(0) == []
        with pytest.raises(ValueError):
            injector.sample_plans(-1)

    def test_inject_cached_matches_inject(self, lenet_prepared):
        model = lenet_prepared.model
        x = lenet_prepared.dataset.x_val[:1]
        full_injector = FaultInjector(model, SingleBitFlip(FIXED32), seed=9)
        cached_injector = FaultInjector(model, SingleBitFlip(FIXED32), seed=9)
        full_injector.profile_state_space(x)
        cached_injector.profile_state_space(x)
        plan = full_injector.sample_plan()
        cached_injector.sample_plan()  # consume the same RNG draws
        executor = model.executor()
        cache = executor.run({model.input_name: x},
                             outputs=[model.output_name]).values
        full_out, full_faults = full_injector.inject(executor, x, plan)
        out, faults, result = cached_injector.inject_cached(executor, cache,
                                                            plan)
        assert faults == full_faults
        assert out.tobytes() == full_out.tobytes()
        assert result.recomputed is not None
        assert len(result.recomputed) < len(model.graph)

    def test_inject_cached_matches_inject_on_overlapping_sites(
            self, lenet_prepared):
        """A site downstream of another must be corrupted on the faulty value.

        When one fault site lies in another's downstream cone, the full run
        corrupts the later site's *already-faulty* output; the cached replay
        must reproduce that bit-for-bit (it falls back to hook-based
        re-execution for such plans).
        """
        from repro.injection.injector import InjectionPlan

        model = lenet_prepared.model
        x = lenet_prepared.dataset.x_val[:1]
        probe = FaultInjector(model, MultiBitFlip(2, FIXED32), seed=0)
        sizes = probe.profile_state_space(x)
        names = list(sizes)
        first = names[0]
        downstream = next(n for n in names[1:]
                          if n in model.graph.downstream(first))
        plan = InjectionPlan(sites=[(first, 1), (downstream, 1)])

        executor = model.executor()
        cache = executor.run({model.input_name: x},
                             outputs=[model.output_name]).values
        full_injector = FaultInjector(model, MultiBitFlip(2, FIXED32), seed=4)
        cached_injector = FaultInjector(model, MultiBitFlip(2, FIXED32),
                                        seed=4)
        full_out, full_faults = full_injector.inject(executor, x, plan)
        out, faults, _ = cached_injector.inject_cached(executor, cache, plan)
        assert faults == full_faults
        # The downstream site's original value must be the faulty one, which
        # differs from the golden cache whenever the first fault reaches it.
        assert out.tobytes() == full_out.tobytes()

    def test_multibit_campaign_incremental_equals_full(self, lenet_prepared):
        inputs, _ = lenet_prepared.correctly_predicted_inputs(3, seed=0)
        full = FaultInjectionCampaign(lenet_prepared.model, inputs,
                                      fault_model=MultiBitFlip(3, FIXED32),
                                      seed=0)
        inc = FaultInjectionCampaign(lenet_prepared.model, inputs,
                                     fault_model=MultiBitFlip(3, FIXED32),
                                     seed=0)
        plans = full.generate_plans(40)
        inc.generate_plans(40)
        full_result = full.run(plans=plans, keep_faults=True,
                               incremental=False)
        inc_result = inc.run(plans=plans, keep_faults=True, incremental=True)
        assert full_result.sdc_counts == inc_result.sdc_counts
        assert full_result.faults == inc_result.faults

    def test_inject_cached_requires_cached_site(self, lenet_prepared):
        model = lenet_prepared.model
        x = lenet_prepared.dataset.x_val[:1]
        injector = FaultInjector(model, SingleBitFlip(FIXED32), seed=1)
        injector.profile_state_space(x)
        plan = injector.sample_plan()
        with pytest.raises(InjectionError, match="no cached activation"):
            injector.inject_cached(model.executor(), {}, plan)


class TestCampaign:
    def test_campaign_counts_and_rates(self, lenet_prepared):
        inputs, _ = lenet_prepared.correctly_predicted_inputs(4, seed=0)
        campaign = FaultInjectionCampaign(lenet_prepared.model, inputs,
                                          seed=0)
        result = campaign.run(trials=30)
        assert result.trials == 30
        rate = result.sdc_rate("top1")
        assert 0.0 <= rate <= 1.0
        low, high = result.confidence_interval("top1")
        assert 0.0 <= low <= rate <= high <= 1.0

    def test_campaign_requires_inputs_and_trials(self, lenet_prepared):
        with pytest.raises(ValueError):
            FaultInjectionCampaign(lenet_prepared.model, np.empty((0, 20, 20, 1)))
        inputs, _ = lenet_prepared.correctly_predicted_inputs(2, seed=0)
        campaign = FaultInjectionCampaign(lenet_prepared.model, inputs, seed=0)
        with pytest.raises(ValueError):
            campaign.run(trials=0)

    def test_summary_mentions_criteria(self, lenet_prepared):
        inputs, _ = lenet_prepared.correctly_predicted_inputs(2, seed=0)
        campaign = FaultInjectionCampaign(lenet_prepared.model, inputs, seed=0)
        text = campaign.run(trials=10).summary()
        assert "top1" in text and "SDC rate" in text

    def test_paired_comparison_reduces_sdc(self, lenet_prepared,
                                           lenet_protected):
        protected, _ = lenet_protected
        inputs, _ = lenet_prepared.correctly_predicted_inputs(5, seed=0)
        base, guarded = compare_protection(lenet_prepared.model, protected,
                                           inputs, trials=60, seed=0)
        assert guarded.sdc_rate("top1") <= base.sdc_rate("top1")

    def test_zero_fault_free_campaign_under_stuck_at_original(self,
                                                              lenet_prepared):
        """Injecting a 'fault' that leaves the value unchanged never causes SDCs."""

        class NoOpFault(StuckAtZeroFault):
            def corrupt(self, value, rng):
                return value, None

        inputs, _ = lenet_prepared.correctly_predicted_inputs(3, seed=0)
        campaign = FaultInjectionCampaign(lenet_prepared.model, inputs,
                                          fault_model=NoOpFault(), seed=0)
        result = campaign.run(trials=20)
        assert result.sdc_rate("top1") == 0.0
