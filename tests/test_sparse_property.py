"""Property-based byte-equality suite for the ``elementwise_exact`` contract.

Every operator (and dtype policy) that declares
:attr:`~repro.ops.base.Operator.elementwise_exact` promises that applying
its forward to a *gathered subset* of a row's elements produces exactly
the bytes the dense forward produces at those positions — that promise is
what lets the replay engine carry fault deltas sparsely while staying
bit-identical to the dense incremental path.  Hypothesis hammers the
promise with random shapes, random strictly-sorted index sets and the full
ugly float64 value range (subnormals, infinities, NaNs, signed zeros):

* **value-kind operators** — ``sparse_forward(indices, *gathered)`` must
  byte-equal ``forward(*dense)`` gathered at ``indices``;
* **remap-kind operators** (reshape / flatten / concat) — the remapped
  indices must land each value exactly where the dense forward moved it;
* **dtype policies** — quantizing the gathered subset must byte-equal
  gathering the quantized row.

Profiles are tiered so CI stays fast while local runs can dig deeper:
``REPRO_HYPOTHESIS_PROFILE=thorough`` raises the example budget 10×.
"""

import os

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro import ops
from repro.core import ClipToBound, ResetToZero
from repro.graph import gather_param
from repro.quantization import fixed16_policy, fixed32_policy

settings.register_profile("ci", max_examples=25, deadline=None)
settings.register_profile("thorough", max_examples=250, deadline=None)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "ci"))

# The full IEEE-754 menagerie: the sparse path must reproduce dense bytes
# even through NaN payloads, infinities, signed zeros and subnormals.
FLOATS = st.floats(allow_nan=True, allow_infinity=True, width=64,
                   allow_subnormal=True)


def row_and_indices(draw, min_size=1, max_size=96):
    """Draw a (1, n) float64 row plus a strictly-sorted flat index set."""
    n = draw(st.integers(min_size, max_size))
    x = draw(hnp.arrays(np.float64, (1, n), elements=FLOATS))
    picked = draw(st.sets(st.integers(0, n - 1), min_size=1, max_size=n))
    return x, np.array(sorted(picked), dtype=np.int64)


def assert_bytes(sparse, dense_gathered, label=""):
    sparse = np.ascontiguousarray(sparse, dtype=np.float64)
    dense_gathered = np.ascontiguousarray(dense_gathered, dtype=np.float64)
    assert sparse.shape == dense_gathered.shape, label
    assert sparse.tobytes() == dense_gathered.tobytes(), label


# ---------------------------------------------------------------------------
# Value-kind, single input.
# ---------------------------------------------------------------------------

UNARY_OPS = [
    ("identity", lambda: ops.Identity()),
    ("relu", lambda: ops.ReLU()),
    ("leaky_relu", lambda: ops.LeakyReLU(alpha=0.1)),
    ("elu", lambda: ops.ELU(alpha=0.7)),
    ("tanh", lambda: ops.Tanh()),
    ("sigmoid", lambda: ops.Sigmoid()),
    ("atan", lambda: ops.Atan()),
    ("scaled_atan", lambda: ops.ScaledAtan(scale=1.5)),
    ("scale", lambda: ops.Scale(-2.5)),
    ("clip_by_value", lambda: ops.ClipByValue(-1.0, 1.5)),
    ("ranger_clip", lambda: ClipToBound(-2.0, 3.0)),
    ("ranger_zero", lambda: ResetToZero(-2.0, 3.0)),
]


@pytest.mark.parametrize("name,factory", UNARY_OPS,
                         ids=[name for name, _ in UNARY_OPS])
@given(data=st.data())
def test_unary_sparse_forward_matches_dense(name, factory, data):
    op = factory()
    assert op.elementwise_exact
    x, idx = row_and_indices(data.draw)
    dense = np.asarray(op.forward(x), dtype=np.float64)
    sparse = op.sparse_forward(idx, x.reshape(-1)[idx])
    assert_bytes(sparse, dense.reshape(-1)[idx], name)


# ---------------------------------------------------------------------------
# Value-kind, two batch-shaped inputs (residual adds, Ranger bounds).
# ---------------------------------------------------------------------------

BINARY_OPS = [
    ("add", lambda: ops.Add()),
    ("multiply", lambda: ops.Multiply()),
    ("minimum", lambda: ops.Minimum()),
    ("maximum", lambda: ops.Maximum()),
]


@pytest.mark.parametrize("name,factory", BINARY_OPS,
                         ids=[name for name, _ in BINARY_OPS])
@given(data=st.data())
def test_binary_sparse_forward_matches_dense(name, factory, data):
    op = factory()
    assert op.elementwise_exact
    x, idx = row_and_indices(data.draw)
    y = data.draw(hnp.arrays(np.float64, x.shape, elements=FLOATS))
    dense = np.asarray(op.forward(x, y), dtype=np.float64)
    sparse = op.sparse_forward(idx, x.reshape(-1)[idx], y.reshape(-1)[idx])
    assert_bytes(sparse, dense.reshape(-1)[idx], name)


@pytest.mark.parametrize("name,factory",
                         [("minimum", lambda: ops.Minimum()),
                          ("maximum", lambda: ops.Maximum())],
                         ids=["minimum", "maximum"])
@given(data=st.data())
def test_bound_ops_with_broadcast_bound(name, factory, data):
    """Ranger's bound input is a scalar broadcast against the row — the
    executor gathers it via ``gather_param``."""
    op = factory()
    x, idx = row_and_indices(data.draw)
    bound = np.asarray(data.draw(FLOATS))
    dense = np.asarray(op.forward(x, bound), dtype=np.float64)
    gathered_bound = gather_param(bound, x.shape[1:], idx)
    sparse = op.sparse_forward(idx, x.reshape(-1)[idx], gathered_bound)
    assert_bytes(sparse, dense.reshape(-1)[idx], name)


# ---------------------------------------------------------------------------
# Value-kind with batch-invariant parameters: BiasAdd and inference BN.
# ---------------------------------------------------------------------------


@given(data=st.data())
def test_bias_add_with_gathered_bias(data):
    op = ops.BiasAdd()
    assert op.elementwise_exact
    channels = data.draw(st.integers(1, 24))
    rows = data.draw(st.integers(1, 6))
    x = data.draw(hnp.arrays(np.float64, (1, rows, channels),
                             elements=FLOATS))
    b = data.draw(hnp.arrays(np.float64, (channels,), elements=FLOATS))
    size = rows * channels
    picked = data.draw(st.sets(st.integers(0, size - 1), min_size=1,
                               max_size=size))
    idx = np.array(sorted(picked), dtype=np.int64)
    dense = np.asarray(op.forward(x, b), dtype=np.float64)
    gathered_b = gather_param(b, x.shape[1:], idx)
    sparse = op.sparse_forward(idx, x.reshape(-1)[idx], gathered_b)
    assert_bytes(sparse, dense.reshape(-1)[idx], "bias_add")


@given(data=st.data())
def test_inference_batchnorm_matches_dense(data):
    channels = data.draw(st.integers(1, 16))
    rows = data.draw(st.integers(1, 5))
    op = ops.BatchNorm()
    op.training = False
    op.moving_mean = data.draw(hnp.arrays(
        np.float64, (channels,),
        elements=st.floats(-100, 100, width=64)))
    op.moving_var = data.draw(hnp.arrays(
        np.float64, (channels,),
        elements=st.floats(1e-6, 100, width=64)))
    assert op.elementwise_exact
    x = data.draw(hnp.arrays(np.float64, (1, rows, channels),
                             elements=FLOATS))
    gamma = data.draw(hnp.arrays(np.float64, (channels,),
                                 elements=st.floats(-10, 10, width=64)))
    beta = data.draw(hnp.arrays(np.float64, (channels,),
                                elements=st.floats(-10, 10, width=64)))
    size = rows * channels
    picked = data.draw(st.sets(st.integers(0, size - 1), min_size=1,
                               max_size=size))
    idx = np.array(sorted(picked), dtype=np.int64)
    dense = np.asarray(op.forward(x, gamma, beta), dtype=np.float64)
    row_shape = x.shape[1:]
    sparse = op.sparse_forward(idx, x.reshape(-1)[idx],
                               gather_param(gamma, row_shape, idx),
                               gather_param(beta, row_shape, idx))
    assert_bytes(sparse, dense.reshape(-1)[idx], "batchnorm")


# ---------------------------------------------------------------------------
# Remap-kind: the indices move, the values must not.
# ---------------------------------------------------------------------------


@given(data=st.data())
def test_reshape_and_flatten_remap_is_identity(data):
    h = data.draw(st.integers(1, 8))
    w = data.draw(st.integers(1, 8))
    x = data.draw(hnp.arrays(np.float64, (1, h * w), elements=FLOATS))
    picked = data.draw(st.sets(st.integers(0, h * w - 1), min_size=1))
    idx = np.array(sorted(picked), dtype=np.int64)
    for op in (ops.Reshape((h, w)), ops.Flatten()):
        assert op.elementwise_exact and op.sparse_kind == "remap"
        dense = np.asarray(op.forward(x), dtype=np.float64)
        remapped = op.sparse_remap(0, idx, [x.shape[1:]], dense.shape[1:])
        assert_bytes(x.reshape(-1)[idx], dense.reshape(-1)[remapped],
                     type(op).__name__)


@given(data=st.data())
def test_concat_remap_relocates_every_input(data):
    """Feature-axis concat of 2–3 inputs: for every input position, the
    remapped index of each changed element must address exactly that
    element's value in the dense concat output."""
    parts = data.draw(st.integers(2, 3))
    outer = data.draw(st.integers(1, 4))
    widths = [data.draw(st.integers(1, 6)) for _ in range(parts)]
    arrays = [data.draw(hnp.arrays(np.float64, (1, outer, w),
                                   elements=FLOATS))
              for w in widths]
    op = ops.Concatenate(axis=-1)
    assert op.elementwise_exact and op.sparse_kind == "remap"
    dense = np.asarray(op.forward(*arrays), dtype=np.float64)
    input_row_shapes = [a.shape[1:] for a in arrays]
    for position, a in enumerate(arrays):
        size = a[0].size
        picked = data.draw(st.sets(st.integers(0, size - 1), min_size=1))
        idx = np.array(sorted(picked), dtype=np.int64)
        remapped = op.sparse_remap(position, idx, input_row_shapes,
                                   dense.shape[1:])
        assert_bytes(a.reshape(-1)[idx], dense.reshape(-1)[remapped],
                     f"concat input {position}")


# ---------------------------------------------------------------------------
# Dtype policies: quantize-the-subset must equal subset-of-the-quantized.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("policy_factory", [fixed16_policy, fixed32_policy],
                         ids=["fixed16", "fixed32"])
@given(data=st.data())
def test_fixed_point_quantize_is_elementwise(policy_factory, data):
    policy = policy_factory()
    assert policy.elementwise_exact
    x, idx = row_and_indices(data.draw)
    dense = np.asarray(policy.fmt.quantize(x), dtype=np.float64)
    sparse = policy.fmt.quantize(x.reshape(-1)[idx])
    assert_bytes(sparse, dense.reshape(-1)[idx], policy.name)
