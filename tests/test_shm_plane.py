"""Lifecycle suite for the shared-memory cache plane.

The plane's contract has three parts, each tested here against real
``/dev/shm`` state (the whole module is skipped where POSIX shared memory
is unavailable):

1. **No leaks.**  Every segment the parent publishes is unlinked by the
   time its holders are gone — after a ``run(workers=N)`` call returns,
   after a :class:`CampaignPool` or :class:`CampaignServer` closes, and
   even when a worker process is SIGKILLed mid-lease (workers only ever
   attach; the name is the parent's to remove).  The tests snapshot
   ``/dev/shm`` and assert no ``repro_shm_*`` entry this test created
   survives.
2. **Read-only views.**  Mapped arrays are exactly the published bytes
   and refuse writes (``ValueError``), so no worker can corrupt a
   sibling through a shared golden cache.
3. **Graceful fallback.**  With ``REPRO_DISABLE_SHM=1`` the plane stays
   off, nothing touches ``/dev/shm``, and the multiprocess campaign
   results are bit-identical to the serial reference — the plane changes
   how bytes travel, never which bytes.
"""

import os
import signal
import time
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro.injection import CampaignPool, FaultInjectionCampaign, SingleBitFlip
from repro.parallel import shm
from repro.quantization import FIXED32
from repro.service import ArtifactStore, CampaignServer

SHM_DIR = "/dev/shm"

pytestmark = pytest.mark.skipif(
    not os.path.isdir(SHM_DIR), reason="no /dev/shm on this host")


def _segment_names() -> set:
    return {name for name in os.listdir(SHM_DIR)
            if name.startswith(shm.SEGMENT_PREFIX)}


def _live_plane() -> shm.SharedCachePlane:
    """The global plane, or skip — the CI fallback pass re-runs this file
    with ``REPRO_DISABLE_SHM=1``, where only the fallback tests apply."""
    plane = shm.shared_plane()
    if plane is None:
        pytest.skip("shared-memory cache plane disabled/unavailable")
    return plane


@pytest.fixture
def fresh_plane():
    """A fresh global plane, and proof this test leaked no segments."""
    shm.reset_plane_for_tests()
    preexisting = _segment_names()
    yield
    shm.reset_plane_for_tests()
    leaked = _segment_names() - preexisting
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def _campaign(prepared, num_inputs=3, seed=0):
    inputs = prepared.dataset.x_val[:num_inputs]
    return FaultInjectionCampaign(prepared.model, inputs,
                                  fault_model=SingleBitFlip(FIXED32), seed=seed)


class TestEncodeDecode:
    def test_roundtrip_is_bit_identical_and_views_are_readonly(
            self, fresh_plane):
        plane = _live_plane()
        rng = np.random.default_rng(0)
        obj = {"weights": rng.standard_normal((64, 32)),
               "label": "skeleton", "bias": rng.standard_normal(900)}
        encoded = plane.encode(obj, body_key="body:test-roundtrip")
        assert encoded is not None and encoded.shared_bytes > 0
        # The skeleton pickle no longer carries the big array's bytes.
        assert encoded.payload_bytes < obj["weights"].nbytes
        decoded, stats = shm.decode(encoded.payload)
        assert stats["segments_mapped"] >= 1
        assert np.array_equal(decoded["weights"], obj["weights"])
        assert decoded["weights"].dtype == obj["weights"].dtype
        assert np.array_equal(decoded["bias"], obj["bias"])
        assert decoded["label"] == "skeleton"
        for view in (decoded["weights"], decoded["bias"]):
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0] = 0.0
        encoded.release()

    def test_small_and_awkward_arrays_stay_inline(self, fresh_plane):
        plane = _live_plane()
        rng = np.random.default_rng(1)
        obj = {
            "tiny": rng.standard_normal(4),  # below MIN_SHM_ARRAY_BYTES
            "fortran": np.asfortranarray(rng.standard_normal((40, 40))),
            "objects": np.array([None, "x"], dtype=object),
        }
        encoded = plane.encode(obj, body_key="body:test-inline")
        assert encoded is not None
        assert encoded.shared_bytes == 0  # nothing worth a segment
        decoded, _ = shm.decode(encoded.payload)
        assert np.array_equal(decoded["tiny"], obj["tiny"])
        assert np.array_equal(decoded["fortran"], obj["fortran"])
        assert decoded["fortran"].flags.writeable  # inline: a plain copy
        encoded.release()

    def test_release_of_last_pin_unlinks(self, fresh_plane):
        plane = _live_plane()
        before = _segment_names()
        array = np.arange(4096, dtype=np.float64)
        first = plane.encode({"a": array}, body_key="body:test-refcount")
        second = plane.encode({"a": array}, body_key="body:test-refcount")
        created = _segment_names() - before
        assert len(created) == 1  # content-keyed: published once, reused
        assert plane.reused_segments >= 1
        first.release()
        assert created <= _segment_names()  # second pin keeps it alive
        second.release()
        assert not (created & _segment_names())
        first.release()  # idempotent

    def test_decode_local_returns_equal_views(self, fresh_plane):
        plane = _live_plane()
        array = np.random.default_rng(2).standard_normal((30, 30))
        encoded = plane.encode({"a": array}, body_key="body:test-local")
        local = plane.decode_local(encoded.payload)
        assert np.array_equal(local["a"], array)
        assert not local["a"].flags.writeable
        encoded.release()


class TestDispatchLifecycle:
    def test_run_workers_leaves_no_segments(self, untrained_lenet,
                                            fresh_plane):
        _live_plane()
        campaign = _campaign(untrained_lenet)
        plans = campaign.generate_plans(8)
        reference = _campaign(untrained_lenet).run(plans=plans)
        result = campaign.run(plans=plans, workers=2)
        assert result.sdc_counts == reference.sdc_counts
        plane = shm.shared_plane()
        assert plane.published_segments > 0  # the run actually used the plane
        assert plane.stats()["segments"] == 0  # ...and released everything

    def test_pool_close_unlinks_segments(self, untrained_lenet, fresh_plane):
        _live_plane()
        campaign = _campaign(untrained_lenet)
        plans = campaign.generate_plans(8)
        before = _segment_names()
        pool = CampaignPool(workers=2)
        try:
            result = campaign.run(plans=plans, pool=pool)
            stats = pool.stats()
            assert stats["shm_tasks"] == stats["tasks"] > 0
            # The pool's lease keeps the spec's segments alive between
            # campaigns (the warm-pool re-map path).
            assert _segment_names() - before
        finally:
            pool.close()
        assert not (_segment_names() - before)
        assert result.trials == 8

    def test_worker_crash_leaves_no_segments(self, untrained_lenet,
                                             fresh_plane):
        _live_plane()
        campaign = _campaign(untrained_lenet)
        plans = campaign.generate_plans(8)
        before = _segment_names()
        pool = CampaignPool(workers=2)
        try:
            campaign.run(plans=plans, pool=pool)
            assert _segment_names() - before  # lease is holding segments
            victims = list(pool._executor._processes)
            assert victims
            os.kill(victims[0], signal.SIGKILL)
            # The executor notices the death on the next interaction.
            with pytest.raises((BrokenProcessPool, OSError)):
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    _campaign(untrained_lenet).run(plans=plans, pool=pool)
        finally:
            pool.close()
        # The kill removed a consumer, never a segment: the parent still
        # owns every name and the close unlinked them all.
        assert not (_segment_names() - before)

    def test_store_and_server_close_release_golden_handles(self, fresh_plane):
        _live_plane()
        rng = np.random.default_rng(3)
        caches = {0: {"conv1": rng.standard_normal((16, 16, 8))},
                  1: {"conv1": rng.standard_normal((16, 16, 8))}}
        before = _segment_names()
        store = ArtifactStore()
        assert store.put_golden_caches("spec-key", caches)
        handle = store.get("golden", "spec-key")
        assert hasattr(handle, "materialize")  # plane-backed handle
        materialized = handle.materialize()
        assert np.array_equal(materialized[0]["conv1"], caches[0]["conv1"])
        assert _segment_names() - before
        store.close()
        assert not (_segment_names() - before)
        # A server that builds its own store closes it (and its segments).
        server = CampaignServer()
        assert server.store.put_golden_caches("spec-key", caches)
        assert _segment_names() - before
        server.close()
        assert not (_segment_names() - before)


class TestFallback:
    def test_disable_env_is_bit_identical_and_touches_nothing(
            self, untrained_lenet, fresh_plane, monkeypatch):
        campaign = _campaign(untrained_lenet)
        plans = campaign.generate_plans(8)
        reference = _campaign(untrained_lenet).run(plans=plans,
                                                   keep_faults=True)
        monkeypatch.setenv(shm.DISABLE_ENV, "1")
        shm.reset_plane_for_tests()
        assert shm.shm_disabled_by_env()
        assert shm.shared_plane() is None
        before = _segment_names()
        fanned = _campaign(untrained_lenet).run(plans=plans, workers=2,
                                                keep_faults=True)
        assert fanned.sdc_counts == reference.sdc_counts
        assert fanned.faults == reference.faults
        assert _segment_names() == before  # the pickle path used no shm
        with CampaignPool(workers=2) as pool:
            pooled = _campaign(untrained_lenet).run(plans=plans, pool=pool,
                                                    keep_faults=True)
            stats = pool.stats()
        assert pooled.sdc_counts == reference.sdc_counts
        assert pooled.faults == reference.faults
        assert stats["shm_tasks"] == 0
        assert _segment_names() == before

    def test_zero_means_enabled(self, monkeypatch):
        monkeypatch.setenv(shm.DISABLE_ENV, "0")
        assert not shm.shm_disabled_by_env()
