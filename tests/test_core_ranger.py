"""Unit and property tests for Ranger: bounds, profiler, transform, policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ops
from repro.core import (
    ActivationProfiler,
    ClipToBound,
    LayerObservation,
    ProtectionInfo,
    Ranger,
    RangerTransform,
    ReplaceWithRandom,
    ResetToZero,
    RestrictionBounds,
    apply_ranger,
    make_restriction_op,
    protect_model,
)
from repro.graph import Executor
from repro.injection import FaultInjector, SingleBitFlip
from repro.models import build_lenet, build_squeezenet


class TestLayerObservation:
    def test_tracks_min_max(self):
        obs = LayerObservation("layer")
        obs.update(np.array([1.0, 5.0, -2.0]))
        obs.update(np.array([0.5, 7.0]))
        assert obs.min_value == -2.0
        assert obs.max_value == 7.0
        assert obs.count == 5

    def test_percentile_100_is_max(self):
        obs = LayerObservation("layer")
        obs.update(np.arange(100, dtype=float))
        assert obs.percentile_bound(100.0) == 99.0

    def test_lower_percentile_below_max(self):
        obs = LayerObservation("layer", reservoir_size=1000)
        obs.update(np.arange(1000, dtype=float))
        assert obs.percentile_bound(90.0) < obs.percentile_bound(100.0)

    def test_empty_observation_raises(self):
        with pytest.raises(ValueError):
            LayerObservation("layer").percentile_bound(100.0)

    def test_reservoir_respects_size(self):
        obs = LayerObservation("layer", reservoir_size=64)
        obs.update(np.random.default_rng(0).normal(size=10_000))
        assert obs._reservoir.size == 64


class TestRestrictionBounds:
    def test_lookup_and_contains(self):
        bounds = RestrictionBounds({"a": (0.0, 1.0), "b": (-1.0, 2.0)})
        assert "a" in bounds and "c" not in bounds
        assert bounds["b"] == (-1.0, 2.0)
        assert len(bounds) == 2

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            RestrictionBounds({"a": (2.0, 1.0)})

    def test_merged_for_concat(self):
        bounds = RestrictionBounds({"a": (0.0, 5.0), "b": (-1.0, 3.0)})
        assert bounds.merged(["a", "b"]) == (-1.0, 5.0)

    def test_serialization_round_trip(self):
        bounds = RestrictionBounds({"a": (0.0, 4.5)}, percentile=99.0)
        restored = RestrictionBounds.from_dict(bounds.to_dict(),
                                               percentile=99.0)
        assert restored["a"] == (0.0, 4.5)

    def test_scaled(self):
        bounds = RestrictionBounds({"a": (0.0, 10.0)})
        assert bounds.scaled(0.5)["a"] == (0.0, 5.0)


class TestPolicies:
    def test_clip_policy(self):
        op = ClipToBound(0.0, 2.0)
        np.testing.assert_allclose(op.forward(np.array([-1.0, 1.0, 9.0])),
                                   [0.0, 1.0, 2.0])

    def test_zero_policy(self):
        op = ResetToZero(0.0, 2.0)
        np.testing.assert_allclose(op.forward(np.array([-1.0, 1.0, 9.0])),
                                   [0.0, 1.0, 0.0])

    def test_random_policy_in_range(self):
        op = ReplaceWithRandom(0.0, 2.0, seed=0)
        out = op.forward(np.array([5.0, 1.0, -3.0]))
        assert np.all(out <= 2.0) and np.all(out >= 0.0)
        assert out[1] == 1.0  # in-range values untouched

    def test_policy_registry(self):
        assert isinstance(make_restriction_op("clip", 0, 1), ClipToBound)
        assert isinstance(make_restriction_op("zero", 0, 1), ResetToZero)
        assert isinstance(make_restriction_op("random", 0, 1),
                          ReplaceWithRandom)
        with pytest.raises(ValueError):
            make_restriction_op("median", 0, 1)

    def test_protection_ops_not_injectable(self):
        op = ClipToBound(0.0, 1.0)
        assert op.category == "protection"
        assert not op.injectable

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            ClipToBound(3.0, 1.0)


class TestProfiler:
    def test_profiles_every_relu(self, lenet_prepared):
        profiler = ActivationProfiler(lenet_prepared.model)
        sample, _ = lenet_prepared.dataset.sample_train(30, seed=0)
        profile = profiler.profile(sample)
        relu_nodes = [n.name for n in lenet_prepared.model.graph
                      if n.category == "activation"]
        assert set(profile.observations) == set(relu_nodes)
        bounds = profile.select_bounds(100.0)
        assert all(high >= low for low, high in
                   (bounds[name] for name in relu_nodes))

    def test_inherent_bounds_for_tanh_model(self):
        model = build_lenet(activation="tanh", seed=3)
        profiler = ActivationProfiler(model)
        profile = profiler.profile(np.random.default_rng(0).random((4, 20, 20, 1)))
        assert profile.observations == {}
        assert all(bound == (-1.0, 1.0) for bound in profile.inherent.values())

    def test_percentile_tightens_bounds(self, lenet_prepared):
        profiler = ActivationProfiler(lenet_prepared.model)
        sample, _ = lenet_prepared.dataset.sample_train(50, seed=0)
        profile = profiler.profile(sample)
        loose = profile.select_bounds(100.0)
        tight = profile.select_bounds(95.0)
        assert all(tight[name][1] <= loose[name][1]
                   for name in profile.observations)

    def test_requires_inputs(self, lenet_prepared):
        with pytest.raises(ValueError):
            ActivationProfiler(lenet_prepared.model).profile(np.empty((0, 20, 20, 1)))

    def test_convergence_curve_normalized(self, lenet_prepared):
        profiler = ActivationProfiler(lenet_prepared.model)
        sample, _ = lenet_prepared.dataset.sample_train(40, seed=0)
        curves = profiler.convergence_curve(sample, fractions=(0.25, 0.5, 1.0))
        for curve in curves.values():
            assert curve[-1] == pytest.approx(1.0)
            assert all(0.0 <= v <= 1.0 + 1e-9 for v in curve)
            assert all(curve[i] <= curve[i + 1] + 1e-9
                       for i in range(len(curve) - 1))


class TestTransform:
    def test_inserts_protection_after_activations(self, lenet_prepared,
                                                  lenet_protected):
        protected, info = lenet_protected
        guards = [n for n in protected.graph if n.category == "protection"]
        assert len(guards) == info.num_protected_layers
        # Every ReLU before the last layer must be guarded.
        relu_nodes = [n.name for n in lenet_prepared.model.graph
                      if n.category == "activation"]
        assert set(info.report.protected_nodes) >= set(relu_nodes[:-1])

    def test_pooling_after_relu_is_guarded(self, lenet_protected):
        protected, info = lenet_protected
        assert any(name.startswith("pool") for name in
                   info.report.protected_nodes)

    def test_original_graph_untouched(self, lenet_prepared, lenet_protected):
        assert all(n.category != "protection"
                   for n in lenet_prepared.model.graph)

    def test_fault_free_output_unchanged(self, lenet_prepared,
                                         lenet_protected):
        """With max-value bounds, protection never alters fault-free outputs."""
        protected, _ = lenet_protected
        x = lenet_prepared.dataset.x_train[:8]
        np.testing.assert_allclose(lenet_prepared.model.predict(x),
                                   protected.predict(x), atol=1e-9)

    def test_concat_bound_merging_on_squeezenet(self):
        model = build_squeezenet(seed=5)
        rng = np.random.default_rng(0)
        sample = rng.random((6,) + tuple(model.config["input_shape"]))
        protected, info = protect_model(model, sample)
        concat_nodes = [n.name for n in model.graph if n.category == "concat"]
        protected_concats = [n for n in concat_nodes
                             if n in info.report.node_bounds]
        assert protected_concats, "fire-module concats should be protected"
        for concat_name in protected_concats:
            node = model.graph.node(concat_name)
            low, high = info.report.node_bounds[concat_name]
            input_bounds = [info.report.node_bounds[i] for i in node.inputs]
            assert low == pytest.approx(min(b[0] for b in input_bounds))
            assert high == pytest.approx(max(b[1] for b in input_bounds))

    def test_act_only_ablation_protects_fewer_nodes(self, lenet_prepared):
        ranger = Ranger(seed=0)
        sample, _ = lenet_prepared.dataset.sample_train(30, seed=0)
        profile = ranger.profile(lenet_prepared.model, sample)
        bounds = ranger.select_bounds(profile)
        _, full_report = apply_ranger(lenet_prepared.model, bounds,
                                      protect_extended=True)
        _, act_report = apply_ranger(lenet_prepared.model, bounds,
                                     protect_extended=False)
        assert act_report.num_inserted < full_report.num_inserted

    def test_last_layer_not_protected(self, lenet_protected):
        _, info = lenet_protected
        assert all(not name.startswith("fc3")
                   for name in info.report.protected_nodes)
        assert "softmax" not in info.report.protected_nodes

    def test_insertion_time_recorded(self, lenet_protected):
        _, info = lenet_protected
        assert info.insertion_seconds > 0.0


class TestRangerAPI:
    def test_protect_requires_inputs_or_bounds(self, lenet_prepared):
        with pytest.raises(ValueError):
            Ranger().protect(lenet_prepared.model)

    def test_protect_with_precomputed_bounds(self, lenet_prepared):
        bounds = RestrictionBounds({
            node.name: (0.0, 100.0)
            for node in lenet_prepared.model.graph
            if node.category == "activation"})
        protected, info = Ranger().protect(lenet_prepared.model, bounds=bounds)
        assert info.profile is None
        assert info.num_protected_layers > 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Ranger(percentile=0.0)
        with pytest.raises(ValueError):
            Ranger(sample_fraction=0.0)

    def test_sample_fraction_subsamples(self, lenet_prepared):
        ranger = Ranger(sample_fraction=0.25, seed=0)
        profile = ranger.profile(lenet_prepared.model,
                                 lenet_prepared.dataset.x_train[:40])
        assert profile.samples_used == 10

    def test_memory_overhead_accounting(self, lenet_protected):
        _, info = lenet_protected
        assert info.memory_overhead_values() == 2 * len(info.bounds)

    def test_protected_model_corrects_large_fault(self, lenet_prepared,
                                                  lenet_protected):
        """A huge injected value must not change the protected model's label."""
        protected, _ = lenet_protected
        x, y = lenet_prepared.correctly_predicted_inputs(1, seed=3)
        golden_label = int(protected.predict(x).argmax())

        injector = FaultInjector(protected, SingleBitFlip(), seed=0)
        injector.profile_state_space(x)
        executor = protected.executor()

        # Force a worst-case corruption: overwrite one conv activation with a
        # huge value by monkey-patching the fault model.
        class HugeFault(SingleBitFlip):
            def corrupt(self, value, rng):
                return 1e9, 30

        injector.fault_model = HugeFault()
        plan = injector.sample_plan()
        faulty, _ = injector.inject(executor, x, plan)
        assert int(np.argmax(faulty)) == golden_label


# ---------------------------------------------------------------------------
# Property-based tests on the core invariant
# ---------------------------------------------------------------------------

@given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
       st.floats(min_value=0.0, max_value=100.0),
       st.floats(min_value=0.0, max_value=100.0))
@settings(max_examples=100, deadline=None)
def test_clip_output_always_within_bounds(value, low_raw, span):
    low, high = -low_raw, -low_raw + span
    op = ClipToBound(low, high)
    out = float(op.forward(np.array([value]))[0])
    assert low <= out <= high


@given(st.lists(st.floats(min_value=-1e4, max_value=1e4), min_size=1,
                max_size=64),
       st.floats(min_value=0.5, max_value=50.0))
@settings(max_examples=60, deadline=None)
def test_clip_never_moves_in_range_values(values, bound):
    """Values already inside the restriction range are never modified."""
    x = np.asarray(values)
    op = ClipToBound(-bound, bound)
    out = op.forward(x)
    inside = (x >= -bound) & (x <= bound)
    np.testing.assert_array_equal(out[inside], x[inside])


@given(st.floats(min_value=0.1, max_value=20.0),
       st.floats(min_value=1.0, max_value=1e6))
@settings(max_examples=50, deadline=None)
def test_clip_reduces_deviation(bound, corrupted):
    """Clipping never increases the deviation from an in-range golden value."""
    golden = bound / 2.0
    op = ClipToBound(0.0, bound)
    clipped = float(op.forward(np.array([corrupted]))[0])
    assert abs(clipped - golden) <= abs(corrupted - golden) + 1e-9
