"""Unit tests for the synthetic datasets."""

import numpy as np
import pytest

from repro.datasets import (
    Dataset,
    degrees_from_output,
    load_dataset,
    make_digits,
    make_driving,
    make_imagenet_like,
    make_objects,
    make_traffic_signs,
    render_road_frame,
    train_val_split,
)


class TestSplit:
    def test_split_sizes(self, rng):
        x = rng.normal(size=(100, 3))
        y = np.arange(100)
        x_tr, y_tr, x_val, y_val = train_val_split(x, y, 0.2, seed=0)
        assert len(x_tr) == 80 and len(x_val) == 20
        assert len(y_tr) == 80 and len(y_val) == 20

    def test_split_disjoint(self, rng):
        x = np.arange(50).reshape(50, 1).astype(float)
        y = np.arange(50)
        x_tr, y_tr, x_val, y_val = train_val_split(x, y, 0.3, seed=1)
        assert set(y_tr).isdisjoint(set(y_val))

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            train_val_split(np.zeros((4, 1)), np.zeros(4), 1.5, seed=0)


class TestClassificationDatasets:
    @pytest.mark.parametrize("factory,channels,classes", [
        (make_digits, 1, 10),
        (make_objects, 3, 10),
        (make_traffic_signs, 3, 12),
        (make_imagenet_like, 3, 20),
    ])
    def test_shapes_and_labels(self, factory, channels, classes):
        ds = factory(num_samples=60)
        assert ds.task == "classification"
        assert ds.num_classes == classes
        assert ds.input_shape[-1] == channels
        assert ds.x_train.min() >= 0.0 and ds.x_train.max() <= 1.0
        assert ds.y_train.min() >= 0 and ds.y_train.max() < classes
        assert ds.train_size + ds.val_size == 60

    def test_determinism(self):
        a = make_digits(num_samples=40, seed=7)
        b = make_digits(num_samples=40, seed=7)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_train, b.y_train)

    def test_different_seeds_differ(self):
        a = make_digits(num_samples=40, seed=7)
        b = make_digits(num_samples=40, seed=8)
        assert not np.array_equal(a.x_train, b.x_train)

    def test_all_classes_present(self):
        ds = make_digits(num_samples=300, seed=0)
        assert set(np.unique(ds.y_train)) == set(range(10))

    def test_classes_are_visually_distinct(self):
        """Mean images of different digit classes should differ substantially."""
        ds = make_digits(num_samples=300, seed=0)
        means = [ds.x_train[ds.y_train == c].mean(axis=0) for c in (0, 1)]
        assert np.abs(means[0] - means[1]).mean() > 0.02

    def test_traffic_sign_class_limit(self):
        with pytest.raises(ValueError):
            make_traffic_signs(num_samples=10, num_classes=20)

    def test_imagenet_like_class_limit(self):
        with pytest.raises(ValueError):
            make_imagenet_like(num_samples=10, num_classes=100)

    def test_sampling_helpers(self):
        ds = make_objects(num_samples=50, seed=0)
        x, y = ds.sample_train(10, seed=1)
        assert len(x) == 10 and len(y) == 10
        x2, _ = ds.sample_train(10_000, seed=1)
        assert len(x2) == ds.train_size


class TestDrivingDataset:
    def test_degrees_and_radians_variants(self):
        deg = make_driving(num_samples=50, angle_unit="degrees", seed=0)
        rad = make_driving(num_samples=50, angle_unit="radians", seed=0)
        assert deg.task == "regression" and rad.task == "regression"
        assert np.abs(deg.y_train).max() > 10.0        # degrees span
        assert np.abs(rad.y_train).max() < 2 * np.pi   # radians span
        # Same frames, different label units.
        np.testing.assert_allclose(deg.x_train, rad.x_train)
        np.testing.assert_allclose(np.deg2rad(deg.y_train), rad.y_train,
                                   atol=1e-9)

    def test_invalid_unit(self):
        with pytest.raises(ValueError):
            make_driving(num_samples=10, angle_unit="gradians")

    def test_frame_is_image_like(self, rng):
        frame = render_road_frame(24, 48, curvature=0.5, lane_offset=0.0,
                                  rng=rng)
        assert frame.shape == (24, 48, 3)
        assert frame.min() >= 0.0 and frame.max() <= 1.0

    def test_curvature_correlates_with_angle(self):
        ds = make_driving(num_samples=200, angle_unit="degrees", seed=3)
        # Frames and labels must be correlated for the task to be learnable:
        # use the horizontal centre-of-mass of the road pixels as a crude
        # curvature proxy.
        road_mass = ds.x_train[..., 0].mean(axis=1)  # (n, width)
        width = road_mass.shape[1]
        xs = np.linspace(-1, 1, width)
        centre = (road_mass * xs).sum(axis=1) / road_mass.sum(axis=1)
        corr = np.corrcoef(centre, ds.y_train.reshape(-1))[0, 1]
        assert abs(corr) > 0.3

    def test_degrees_from_output(self):
        np.testing.assert_allclose(degrees_from_output(np.array([np.pi]),
                                                       "radians"), [180.0])
        np.testing.assert_allclose(degrees_from_output(np.array([42.0]),
                                                       "degrees"), [42.0])
        with pytest.raises(ValueError):
            degrees_from_output(np.array([1.0]), "turns")


class TestLoader:
    def test_load_by_name(self):
        ds = load_dataset("digits", num_samples=30)
        assert isinstance(ds, Dataset)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            load_dataset("cifar100")

    def test_dataset_validation(self):
        with pytest.raises(ValueError):
            Dataset("bad", np.zeros((3, 2)), np.zeros(2), np.zeros((1, 2)),
                    np.zeros(1), task="classification")
        with pytest.raises(ValueError):
            Dataset("bad", np.zeros((2, 2)), np.zeros(2), np.zeros((1, 2)),
                    np.zeros(1), task="segmentation")
