"""Adaptive campaigns: early stopping, stratified sampling, interval math.

The two guarantees under test, per the campaign module's contract:

* **Prefix bit-identity** — an adaptive campaign stopped after k waves is
  bit-identical (SDC counts *and* applied-fault records) to the first
  k·wave trials of the fixed-budget run, on every backend (serial,
  batched, workers, pool).
* **Unbiased stratified estimates** — per-stratum counters reweight into
  Horvitz–Thompson rate estimates whose merge is order-insensitive, and
  per-stratum sampling respects each stratum's (nodes × bit-band) box.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    INTERVAL_METHODS,
    binomial_interval,
    interval_half_width,
    jeffreys_interval,
    merge_partial_count_dicts,
    normal_interval,
    stratified_interval,
    stratified_rate,
    stratified_variance,
    wilson_interval,
)
from repro.injection import (
    CampaignPool,
    CampaignResult,
    FaultInjectionCampaign,
    SingleBitFlip,
    Stratification,
    StratumSpace,
    StuckAtZeroFault,
    compare_protection,
    largest_remainder,
    neyman_allocation,
    uniform_allocation,
)
from repro.injection.sampling import stratum_rng
from repro.quantization import FIXED32, fixed32_policy

BUDGET = 120
WAVE = 20
TARGET = 0.12


@pytest.fixture(scope="module")
def campaign_inputs(lenet_prepared):
    inputs, _ = lenet_prepared.correctly_predicted_inputs(4, seed=0)
    return inputs


@pytest.fixture(scope="module")
def make_campaign(lenet_prepared, campaign_inputs):
    """Fresh same-seed campaigns — each draws identical plans."""
    def factory(seed=0):
        return FaultInjectionCampaign(lenet_prepared.model, campaign_inputs,
                                      fault_model=SingleBitFlip(FIXED32),
                                      dtype_policy=fixed32_policy(),
                                      seed=seed)
    return factory


def fault_keys(result):
    return [[(f.node_name, f.element_index, f.bit, f.original, f.corrupted)
             for f in trial] for trial in result.faults]


class TestIntervalMethods:
    def test_wilson_known_value(self):
        # Pinned against the closed form at s=15, n=100, z=1.96.
        low, high = wilson_interval(15, 100)
        assert low == pytest.approx(0.0931, abs=2e-3)
        assert high == pytest.approx(0.2328, abs=2e-3)

    def test_wilson_nonzero_upper_bound_at_zero_successes(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0
        assert high == pytest.approx(1.96 ** 2 / (50 + 1.96 ** 2))
        # The old normal approximation degenerates to a near-zero bar here.
        _, normal_high = normal_interval(0, 50)
        assert normal_high < high / 100

    def test_wilson_symmetry(self):
        low, high = wilson_interval(30, 100)
        low_c, high_c = wilson_interval(70, 100)
        assert low == pytest.approx(1 - high_c)
        assert high == pytest.approx(1 - low_c)

    def test_jeffreys_known_value(self):
        # Beta(5.5, 95.5) equal-tailed 95% interval.
        low, high = jeffreys_interval(5, 100)
        assert low == pytest.approx(0.0186, abs=2e-3)
        assert high == pytest.approx(0.1057, abs=2e-3)

    def test_jeffreys_boundary_convention(self):
        low, _ = jeffreys_interval(0, 40)
        _, high = jeffreys_interval(40, 40)
        assert low == 0.0
        assert high == 1.0

    def test_dispatch_and_half_width(self):
        for method in INTERVAL_METHODS:
            low, high = binomial_interval(7, 80, method=method)
            assert 0.0 <= low <= 7 / 80 <= high <= 1.0
            assert interval_half_width(7, 80, method=method) == pytest.approx(
                (high - low) / 2)
        with pytest.raises(ValueError):
            binomial_interval(1, 10, method="bayesian")

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
        with pytest.raises(ValueError):
            wilson_interval(-1, 10)


class TestCampaignResultIntervals:
    def result(self, successes, trials, **kwargs):
        return CampaignResult(model_name="m", fault_model="f", trials=trials,
                              sdc_counts={"top1": successes}, **kwargs)

    def test_confidence_interval_is_wilson_by_default(self):
        result = self.result(9, 60)
        assert result.interval_method == "wilson"
        assert result.confidence_interval("top1") == wilson_interval(9, 60)
        assert result.half_width("top1") == pytest.approx(
            interval_half_width(9, 60))

    def test_zero_successes_keep_nonzero_error_bar(self):
        result = self.result(0, 200)
        assert result.error_bar_percent("top1") > 0.9  # ~0.95% for Wilson

    def test_method_surfaces_in_summary(self):
        assert "intervals: wilson" in self.result(3, 30).summary()
        jeffreys = self.result(3, 30, interval_method="jeffreys")
        assert "intervals: jeffreys" in jeffreys.summary()
        assert jeffreys.confidence_interval("top1") == jeffreys_interval(3, 30)

    def test_merge_rejects_mixed_methods(self):
        with pytest.raises(ValueError):
            CampaignResult.merge([self.result(1, 10),
                                  self.result(2, 10,
                                              interval_method="normal")])


class TestStratifiedEstimators:
    WEIGHTS = {"a": 0.6, "b": 0.3, "c": 0.1}

    def test_rate_is_hand_computed_ht_sum(self):
        counts = {"a": 1, "b": 6, "c": 4}
        trials = {"a": 10, "b": 12, "c": 8}
        expected = 0.6 * 1 / 10 + 0.3 * 6 / 12 + 0.1 * 4 / 8
        assert stratified_rate(self.WEIGHTS, counts, trials) == pytest.approx(
            expected)

    def test_unsampled_strata_renormalize(self):
        # Only stratum "a" sampled: the estimate conditions on it.
        assert stratified_rate(self.WEIGHTS, {"a": 2}, {"a": 10}) == \
            pytest.approx(0.2)

    def test_uniform_allocation_matches_binomial_rate(self):
        counts = {"a": 6, "b": 3, "c": 1}
        trials = {"a": 60, "b": 30, "c": 10}
        # Proportional allocation ⇒ HT estimate equals the pooled rate.
        assert stratified_rate(self.WEIGHTS, counts, trials) == pytest.approx(
            10 / 100)

    def test_variance_and_interval(self):
        counts = {"a": 1, "b": 6}
        trials = {"a": 10, "b": 12}
        weights = {"a": 0.5, "b": 0.5}
        var = sum(
            0.25 * ((s + 0.5) / (n + 1)) * (1 - (s + 0.5) / (n + 1)) / n
            for s, n in ((1, 10), (6, 12)))
        assert stratified_variance(weights, counts, trials) == pytest.approx(
            var)
        rate = stratified_rate(weights, counts, trials)
        low, high = stratified_interval(weights, counts, trials, z=1.96)
        assert (high - low) / 2 == pytest.approx(1.96 * var ** 0.5)
        assert low <= rate <= high

    def test_sampled_stratum_without_weight_rejected(self):
        with pytest.raises(ValueError):
            stratified_rate({"a": 1.0}, {"b": 1}, {"b": 5})

    def test_merge_partial_count_dicts_union(self):
        merged = merge_partial_count_dicts([{"a": 2}, {"a": 1, "b": 4}, {}])
        assert merged == {"a": 3, "b": 4}


class TestAllocation:
    def test_largest_remainder_sums_and_is_deterministic(self):
        for total in (1, 7, 100):
            counts = largest_remainder([0.5, 0.25, 0.25], total)
            assert sum(counts) == total
        assert largest_remainder([1, 1, 1], 10) == [4, 3, 3]
        assert largest_remainder([0, 0], 4) == [2, 2]

    def test_uniform_allocation_covers_every_stratum(self, make_campaign):
        campaign = make_campaign()
        space = StratumSpace(campaign.injector._site_sizes,
                             campaign.fault_model,
                             Stratification(layer_bands=3, bit_bands=4))
        allocation = uniform_allocation(space, 20)
        assert sum(allocation.values()) == 20
        assert all(allocation[key] >= 1 for key in space.keys)

    def test_neyman_favors_uncertain_strata(self, make_campaign):
        campaign = make_campaign()
        space = StratumSpace(campaign.injector._site_sizes,
                             campaign.fault_model,
                             Stratification(layer_bands=2, bit_bands=2))
        certain = {key: [(0, 40)] for key in space.keys}
        # One stratum sits at p≈0.5 — maximal binomial variance.
        uncertain_key = space.keys[0]
        certain[uncertain_key] = [(20, 40)]
        allocation = neyman_allocation(space, 40, certain)
        assert sum(allocation.values()) == 40
        others = [key for key in space.keys
                  if key != uncertain_key
                  and space.weights[key] <= space.weights[uncertain_key]]
        assert all(allocation[uncertain_key] > allocation[key]
                   for key in others)


class TestStratumSpace:
    def test_weights_sum_to_one_and_partitions_are_exact(self, make_campaign):
        campaign = make_campaign()
        sizes = campaign.injector._site_sizes
        space = StratumSpace(sizes, campaign.fault_model,
                             Stratification(layer_bands=3, bit_bands=4))
        assert sum(space.weights.values()) == pytest.approx(1.0)
        flattened = [name for band in space.layer_band_nodes for name in band]
        assert flattened == list(sizes)  # contiguous topo partition
        edges = [rng for rng in space.bit_band_ranges]
        assert edges[0][0] == 0
        assert edges[-1][1] == campaign.fault_model.total_bits
        for (_, previous_high), (low, _) in zip(edges, edges[1:]):
            assert previous_high == low

    def test_single_bit_band_leaves_plans_unrestricted(self, make_campaign):
        campaign = make_campaign()
        space = StratumSpace(campaign.injector._site_sizes,
                             campaign.fault_model,
                             Stratification(layer_bands=2, bit_bands=1))
        assert space.bit_band_ranges == [None]
        plans = space.sample_stratum_plans(campaign.injector, (0, 0), 3,
                                           stratum_rng(0, 0))
        assert all(plan.bit_ranges is None for plan in plans)

    def test_bit_bands_require_bit_semantics(self, make_campaign):
        campaign = make_campaign()
        with pytest.raises(ValueError, match="bit_bands=1"):
            StratumSpace(campaign.injector._site_sizes, StuckAtZeroFault(),
                         Stratification(layer_bands=2, bit_bands=4))

    def test_sampled_plans_respect_stratum_box(self, make_campaign):
        campaign = make_campaign()
        space = StratumSpace(campaign.injector._site_sizes,
                             campaign.fault_model,
                             Stratification(layer_bands=3, bit_bands=4))
        for key in ((0, 0), (1, 2), (2, 3)):
            plans = space.sample_stratum_plans(campaign.injector, key, 8,
                                               stratum_rng(0,
                                                           space.index_of(key)))
            nodes = set(space.layer_band_nodes[key[0]])
            low, high = space.bit_band_ranges[key[1]]
            for plan in plans:
                assert plan.node_names() <= nodes
                assert plan.bit_ranges == [(low, high)]

    def test_corrupted_bits_land_in_band(self, make_campaign):
        campaign = make_campaign()
        result = campaign.run(trials=24, wave_trials=12,
                              strata=Stratification(layer_bands=2,
                                                    bit_bands=4),
                              keep_faults=True)
        assert result.trials == 24
        total_bits = campaign.fault_model.total_bits
        band_width = total_bits // 4
        assert all(0 <= fault.bit < total_bits
                   for trial in result.faults for fault in trial)
        # With 4 bands over fixed32, every recorded bit must fall in one
        # aligned 8-bit band — and with 24 trials over 8 strata all 4 bit
        # bands are exercised.
        bands_seen = {fault.bit // band_width
                      for trial in result.faults for fault in trial}
        assert bands_seen == {0, 1, 2, 3}


class TestPrefixProperty:
    """Stopped adaptive run ≡ prefix of the fixed-budget run, per backend."""

    @pytest.fixture(scope="class")
    def reference(self, make_campaign):
        campaign = make_campaign()
        plans = campaign.generate_plans(BUDGET)
        adaptive = make_campaign().run(trials=BUDGET, target_half_width=TARGET,
                                       wave_trials=WAVE, keep_faults=True)
        assert adaptive.stopped_early
        assert adaptive.trials % WAVE == 0
        prefix = campaign.run(plans=plans[:adaptive.trials], keep_faults=True)
        return plans, adaptive, prefix

    def test_serial_prefix_bit_identity(self, reference):
        _, adaptive, prefix = reference
        assert adaptive.sdc_counts == prefix.sdc_counts
        assert fault_keys(adaptive) == fault_keys(prefix)
        assert adaptive.trials_budget == BUDGET
        assert adaptive.target_half_width == TARGET
        assert adaptive.waves == adaptive.trials // WAVE

    def test_stopping_rule_is_tight(self, reference, make_campaign):
        # The stop wave is the *first* wave meeting the target: the
        # half-width at the stop is under target, one wave earlier over.
        _, adaptive, _ = reference
        criterion = adaptive.criteria[0]
        assert adaptive.half_width(criterion) <= TARGET
        earlier = make_campaign().run(
            plans=make_campaign().generate_plans(BUDGET)[
                :adaptive.trials - WAVE])
        assert earlier.half_width(criterion) > TARGET

    def test_batched_prefix_bit_identity(self, reference, make_campaign):
        _, adaptive, prefix = reference
        batched = make_campaign().run(trials=BUDGET, target_half_width=TARGET,
                                      wave_trials=WAVE, batch_trials=4,
                                      keep_faults=True)
        assert batched.trials == adaptive.trials
        assert batched.sdc_counts == prefix.sdc_counts
        assert fault_keys(batched) == fault_keys(prefix)
        assert batched.equivalence == "ulp_tolerant"

    def test_workers_prefix_bit_identity(self, reference, make_campaign):
        _, adaptive, prefix = reference
        sharded = make_campaign().run(trials=BUDGET, target_half_width=TARGET,
                                      wave_trials=WAVE, workers=2,
                                      keep_faults=True)
        assert sharded.trials == adaptive.trials
        assert sharded.sdc_counts == prefix.sdc_counts
        assert fault_keys(sharded) == fault_keys(prefix)

    def test_pool_prefix_bit_identity(self, reference, make_campaign):
        _, adaptive, prefix = reference
        pool = CampaignPool(workers=2)
        try:
            pooled = make_campaign().run(trials=BUDGET,
                                         target_half_width=TARGET,
                                         wave_trials=WAVE, pool=pool,
                                         keep_faults=True)
        finally:
            pool.close()
        assert pooled.trials == adaptive.trials
        assert pooled.sdc_counts == prefix.sdc_counts
        assert fault_keys(pooled) == fault_keys(prefix)

    def test_budget_exhaustion_equals_fixed_run(self, make_campaign):
        # An unreachable target degenerates to the fixed-budget campaign.
        fixed = make_campaign().run(trials=60)
        adaptive = make_campaign().run(trials=60, target_half_width=0.001,
                                       wave_trials=25)
        assert not adaptive.stopped_early
        assert adaptive.trials == 60
        assert adaptive.waves == 3  # 25 + 25 + 10
        assert adaptive.sdc_counts == fixed.sdc_counts


class TestStratifiedCampaign:
    def test_backends_agree_exactly(self, make_campaign):
        kwargs = dict(trials=80, wave_trials=20,
                      strata=Stratification(layer_bands=3, bit_bands=4))
        serial = make_campaign().run(**kwargs)
        sharded = make_campaign().run(workers=2, **kwargs)
        assert serial.trials == sharded.trials == 80
        assert serial.stratum_trials == sharded.stratum_trials
        assert serial.stratum_sdc_counts == sharded.stratum_sdc_counts
        assert serial.sdc_rate("top1") == sharded.sdc_rate("top1")

    def test_result_reports_ht_statistics(self, make_campaign):
        result = make_campaign().run(trials=80, wave_trials=20,
                                     strata=Stratification(layer_bands=3,
                                                           bit_bands=4))
        assert result.is_stratified
        assert sum(result.stratum_trials.values()) == result.trials
        criterion = result.criteria[0]
        assert sum(result.stratum_sdc_counts[criterion].values()) == \
            result.sdc_counts[criterion]
        assert result.sdc_rate(criterion) == pytest.approx(stratified_rate(
            result.stratum_weights, result.stratum_sdc_counts[criterion],
            result.stratum_trials))
        assert "Horvitz–Thompson" in result.summary()

    def test_first_wave_is_uniform_across_strata(self, make_campaign):
        strata = Stratification(layer_bands=2, bit_bands=2)
        result = make_campaign().run(trials=8, wave_trials=8, strata=strata)
        assert result.waves == 1
        assert set(result.stratum_trials.values()) == {2}

    def test_merge_is_order_insensitive(self, make_campaign):
        result = make_campaign().run(trials=60, wave_trials=20,
                                     strata=Stratification(layer_bands=2,
                                                           bit_bands=2))
        halves = [
            CampaignResult(model_name=result.model_name,
                           fault_model=result.fault_model, trials=10,
                           sdc_counts={"top1": 2},
                           stratum_weights=dict(result.stratum_weights),
                           stratum_trials={(0, 0): 10},
                           stratum_sdc_counts={"top1": {(0, 0): 2}}),
            CampaignResult(model_name=result.model_name,
                           fault_model=result.fault_model, trials=6,
                           sdc_counts={"top1": 1},
                           stratum_weights=dict(result.stratum_weights),
                           stratum_trials={(0, 0): 2, (1, 1): 4},
                           stratum_sdc_counts={"top1": {(0, 0): 0,
                                                        (1, 1): 1}}),
        ]
        forward = CampaignResult.merge(halves)
        backward = CampaignResult.merge(halves[::-1])
        assert forward.stratum_trials == backward.stratum_trials == \
            {(0, 0): 12, (1, 1): 4}
        assert forward.stratum_sdc_counts == backward.stratum_sdc_counts
        assert forward.sdc_rate("top1") == backward.sdc_rate("top1")

    def test_merge_rejects_conflicting_weights(self):
        shard = CampaignResult(model_name="m", fault_model="f", trials=4,
                               sdc_counts={"top1": 1},
                               stratum_weights={(0, 0): 0.5},
                               stratum_trials={(0, 0): 4},
                               stratum_sdc_counts={"top1": {(0, 0): 1}})
        conflicting = CampaignResult(model_name="m", fault_model="f", trials=4,
                                     sdc_counts={"top1": 0},
                                     stratum_weights={(0, 0): 0.25},
                                     stratum_trials={(0, 0): 4},
                                     stratum_sdc_counts={"top1": {(0, 0): 0}})
        with pytest.raises(ValueError, match="conflicting weights"):
            CampaignResult.merge([shard, conflicting])


class TestPairedAdaptive:
    def test_arms_stop_together_and_stay_paired(self, lenet_prepared,
                                                lenet_protected,
                                                campaign_inputs):
        protected, _ = lenet_protected
        base, guarded = compare_protection(
            lenet_prepared.model, protected, campaign_inputs,
            fault_model=SingleBitFlip(FIXED32),
            dtype_policy=fixed32_policy(), trials=BUDGET, seed=0,
            target_half_width=TARGET, wave_trials=WAVE)
        assert base.trials == guarded.trials
        assert base.waves == guarded.waves
        assert base.trials_budget == guarded.trials_budget == BUDGET
        # Ranger suppresses SDCs, so the protected arm can never need
        # *more* trials than the unprotected one at the same target; and
        # the pair must stop on the max of the arms' requirements: both
        # arms meet the target at the common stop.
        for result in (base, guarded):
            assert result.half_width(result.criteria[0]) <= TARGET
        assert guarded.sdc_counts["top1"] <= base.sdc_counts["top1"]


class TestIndependentStopping:
    """``joint_stop=False``: each arm/cell stops on its own criteria."""

    @pytest.fixture(scope="class")
    def independent_pair(self, lenet_prepared, lenet_protected,
                         campaign_inputs):
        protected, _ = lenet_protected
        return compare_protection(
            lenet_prepared.model, protected, campaign_inputs,
            fault_model=SingleBitFlip(FIXED32),
            dtype_policy=fixed32_policy(), trials=BUDGET, seed=0,
            target_half_width=TARGET, wave_trials=WAVE, joint_stop=False)

    def test_arms_stop_on_their_own_schedules(self, independent_pair,
                                              lenet_prepared,
                                              lenet_protected,
                                              campaign_inputs):
        base, guarded = independent_pair
        protected, _ = lenet_protected
        # the protected arm's near-zero rate converges waves earlier
        assert guarded.trials < base.trials
        assert guarded.waves < base.waves
        for result in (base, guarded):
            assert result.half_width(result.criteria[0]) <= TARGET
        joint_base, joint_guarded = compare_protection(
            lenet_prepared.model, protected, campaign_inputs,
            fault_model=SingleBitFlip(FIXED32),
            dtype_policy=fixed32_policy(), trials=BUDGET, seed=0,
            target_half_width=TARGET, wave_trials=WAVE)
        # the slower arm is unaffected; the faster arm stops strictly
        # earlier than the joint stop would have held it
        assert joint_base.trials == base.trials
        assert guarded.trials < joint_guarded.trials

    def test_each_arm_is_a_prefix_of_its_fixed_budget_run(
            self, independent_pair, lenet_prepared, lenet_protected,
            campaign_inputs):
        # The group's leader (the unprotected arm) samples every plan;
        # both arms replay prefixes of that one plan stream.
        base, guarded = independent_pair
        protected, _ = lenet_protected
        leader = FaultInjectionCampaign(
            lenet_prepared.model, campaign_inputs,
            fault_model=SingleBitFlip(FIXED32),
            dtype_policy=fixed32_policy(), seed=0)
        plans = leader.generate_plans(BUDGET)
        prefix_base = leader.run(plans=plans[:base.trials])
        assert base.sdc_counts == prefix_base.sdc_counts
        assert base.trials == prefix_base.trials
        follower = FaultInjectionCampaign(
            protected, campaign_inputs, fault_model=SingleBitFlip(FIXED32),
            dtype_policy=fixed32_policy(), seed=0)
        prefix_guarded = follower.run(plans=plans[:guarded.trials])
        assert guarded.sdc_counts == prefix_guarded.sdc_counts
        assert guarded.trials == prefix_guarded.trials

    def test_strata_reject_independent_stopping(self, lenet_prepared,
                                                lenet_protected,
                                                campaign_inputs):
        protected, _ = lenet_protected
        with pytest.raises(ValueError, match="stop jointly"):
            compare_protection(
                lenet_prepared.model, protected, campaign_inputs,
                fault_model=SingleBitFlip(FIXED32),
                dtype_policy=fixed32_policy(), trials=BUDGET, seed=0,
                wave_trials=WAVE, strata=Stratification(2, 2),
                joint_stop=False)


class TestWaveSnapshots:
    """The ``on_wave`` streaming hook the campaign service builds on."""

    def test_snapshots_are_cumulative_and_end_at_the_result(
            self, make_campaign):
        snapshots = []
        result = make_campaign().run(trials=BUDGET, target_half_width=TARGET,
                                     wave_trials=WAVE, keep_faults=True,
                                     on_wave=snapshots.append)
        assert len(snapshots) == result.waves
        trials_seen = [snapshot.trials for snapshot in snapshots]
        assert trials_seen == sorted(trials_seen)
        assert snapshots[-1].trials == result.trials
        assert snapshots[-1].sdc_counts == result.sdc_counts
        assert fault_keys(snapshots[-1]) == fault_keys(result)

    def test_snapshot_exception_aborts_the_run(self, make_campaign):
        class Abort(RuntimeError):
            pass

        def hook(snapshot):
            raise Abort("stop")

        with pytest.raises(Abort):
            make_campaign().run(trials=BUDGET, target_half_width=TARGET,
                                wave_trials=WAVE, on_wave=hook)

    def test_on_wave_requires_a_waved_run(self, make_campaign,
                                          lenet_prepared, lenet_protected,
                                          campaign_inputs):
        with pytest.raises(ValueError, match="on_wave"):
            make_campaign().run(trials=10, on_wave=lambda snapshot: None)
        protected, _ = lenet_protected
        with pytest.raises(ValueError, match="on_wave"):
            compare_protection(lenet_prepared.model, protected,
                               campaign_inputs, trials=10,
                               on_wave=lambda snapshots: None)

    def test_compare_on_wave_streams_pairs(self, lenet_prepared,
                                           lenet_protected, campaign_inputs):
        protected, _ = lenet_protected
        waves = []
        base, guarded = compare_protection(
            lenet_prepared.model, protected, campaign_inputs,
            fault_model=SingleBitFlip(FIXED32),
            dtype_policy=fixed32_policy(), trials=BUDGET, seed=0,
            target_half_width=TARGET, wave_trials=WAVE,
            on_wave=waves.append)
        assert len(waves) == base.waves
        assert all(len(pair) == 2 for pair in waves)
        assert waves[-1][0].sdc_counts == base.sdc_counts
        assert waves[-1][1].sdc_counts == guarded.sdc_counts


class TestValidation:
    def test_bad_target(self, make_campaign):
        with pytest.raises(ValueError, match="target_half_width"):
            make_campaign().run(trials=10, target_half_width=1.5)

    def test_strata_with_explicit_plans(self, make_campaign):
        campaign = make_campaign()
        plans = campaign.generate_plans(4)
        with pytest.raises(ValueError, match="per-stratum plans"):
            campaign.run(plans=plans, strata=Stratification(2, 2))

    def test_adaptive_rejects_trial_offset_and_packing(self, make_campaign):
        with pytest.raises(ValueError, match="trial_offset"):
            make_campaign().run(trials=10, target_half_width=0.2,
                                trial_offset=5)
        with pytest.raises(ValueError, match="packing"):
            make_campaign().run(trials=10, target_half_width=0.2,
                                packing=([], []))

    def test_bad_interval_method(self, make_campaign):
        with pytest.raises(ValueError, match="interval method"):
            make_campaign().run(trials=10, interval_method="clopper")

    def test_bad_wave_trials(self, make_campaign):
        with pytest.raises(ValueError, match="wave_trials"):
            make_campaign().run(trials=10, target_half_width=0.2,
                                wave_trials=0)

    def test_corrupt_in_band_validation(self):
        fault_model = SingleBitFlip(FIXED32)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            fault_model.corrupt_in_band(1.0, rng, 8, 40)
        with pytest.raises(NotImplementedError, match="bit_bands=1"):
            StuckAtZeroFault().corrupt_in_band(1.0, rng, 0, 8)


class TestPlanStream:
    def test_generate_plans_is_a_pure_function_of_the_seed(self,
                                                           make_campaign):
        first = make_campaign().generate_plans(12)
        second = make_campaign().generate_plans(12)
        assert [(i, p.sites) for i, p in first] == \
            [(i, p.sites) for i, p in second]

    def test_plan_stream_no_longer_collides_with_sibling_seed(self,
                                                              make_campaign):
        # The old `seed + 1` derivation made the seed-0 campaign's input
        # stream identical to default_rng(1); the SeedSequence child must
        # not reproduce it.
        campaign = make_campaign()
        indices = [i for i, _ in campaign.generate_plans(64)]
        legacy = np.random.default_rng(campaign.seed + 1).integers(
            len(campaign.inputs), size=64)
        assert indices != list(legacy)
