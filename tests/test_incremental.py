"""Equivalence suite for the incremental execution engine.

Partial re-execution (``Executor.run_from`` via ``FaultInjector.inject_cached``
and the campaign's incremental mode) must be **bit-identical** to full
re-execution: same faulty output bits, same applied-fault records, same SDC
classifications.  This suite checks that guarantee for every model in the
zoo, for fault sites at the first, middle and last injectable nodes, with
and without the fixed-point dtype policy and with and without Ranger
protection.
"""

import numpy as np
import pytest

from repro.core import Ranger
from repro.injection import (
    FaultInjectionCampaign,
    FaultInjector,
    SingleBitFlip,
)
from repro.models import ALL_MODELS, prepare_model
from repro.quantization import FIXED16, fixed16_policy

#: Models are built untrained (deterministically initialized): training does
#: not change the execution semantics being verified, and skipping it keeps
#: the whole-zoo sweep fast.
ZOO = list(ALL_MODELS)


@pytest.fixture(scope="module", params=ZOO)
def zoo_prepared(request):
    return prepare_model(request.param, train=False, seed=1)


def _site_plans(injector, sample):
    """Plans hitting the first, middle and last injectable nodes."""
    sizes = injector.profile_state_space(sample)
    names = list(sizes)  # profile observes in topological order
    picks = {names[0], names[len(names) // 2], names[-1]}
    plans = []
    for name in sorted(picks, key=names.index):
        for element in (0, sizes[name] - 1):
            plans.append([(name, element)])
    return plans


def _assert_replay_matches(model, base_model, dtype_policy, x):
    """inject() and inject_cached() must agree bit-for-bit on every site."""
    from repro.injection.injector import InjectionPlan

    probe = FaultInjector(base_model, SingleBitFlip(FIXED16), seed=3)
    plans = _site_plans(probe, x)

    executor = model.executor(dtype_policy)
    cache = executor.run({model.input_name: x},
                         outputs=[model.output_name]).values
    for sites in plans:
        full_injector = FaultInjector(base_model, SingleBitFlip(FIXED16),
                                      seed=7)
        cached_injector = FaultInjector(base_model, SingleBitFlip(FIXED16),
                                        seed=7)
        plan = InjectionPlan(sites=list(sites))
        full_out, full_faults = full_injector.inject(executor, x, plan)
        cached_out, cached_faults, result = cached_injector.inject_cached(
            executor, cache, plan)
        assert full_faults == cached_faults, sites
        assert full_out.shape == cached_out.shape
        assert full_out.tobytes() == cached_out.tobytes(), (
            f"partial re-execution diverged at sites {sites}")
        # The replay must never touch more than the fault's downstream cone.
        cone = model.graph.downstream(plan.node_names())
        assert result.recomputed is not None
        assert result.recomputed <= cone


@pytest.mark.parametrize("use_fixed_point", [False, True],
                         ids=["float64", "fixed16"])
@pytest.mark.parametrize("use_ranger", [False, True],
                         ids=["unprotected", "ranger"])
def test_partial_equals_full_across_zoo(zoo_prepared, use_fixed_point,
                                        use_ranger):
    prepared = zoo_prepared
    x = prepared.dataset.x_val[:1]
    dtype_policy = fixed16_policy() if use_fixed_point else None
    model = prepared.model
    if use_ranger:
        sample, _ = prepared.dataset.sample_train(4, seed=0)
        model, _ = Ranger(seed=0).protect(prepared.model,
                                          profile_inputs=sample)
    # Plans are sampled on the unprotected model (the paired-campaign
    # convention); node names are preserved by the Ranger transform.
    _assert_replay_matches(model, prepared.model, dtype_policy, x)


def test_incremental_campaign_equals_full_campaign(lenet_prepared):
    """Whole-campaign equivalence: same counts and same fault records."""
    inputs, _ = lenet_prepared.correctly_predicted_inputs(4, seed=0)
    full = FaultInjectionCampaign(lenet_prepared.model, inputs, seed=0)
    inc = FaultInjectionCampaign(lenet_prepared.model, inputs, seed=0)
    plans = full.generate_plans(40)
    inc.generate_plans(40)  # consume the same injector RNG draws
    full_result = full.run(plans=plans, keep_faults=True, incremental=False)
    inc_result = inc.run(plans=plans, keep_faults=True, incremental=True)
    assert full_result.sdc_counts == inc_result.sdc_counts
    assert full_result.faults == inc_result.faults
    assert inc_result.nodes_full > 0
    assert inc_result.recompute_fraction < 1.0


def test_incremental_campaign_builds_each_cache_once(lenet_prepared):
    inputs, _ = lenet_prepared.correctly_predicted_inputs(3, seed=0)
    campaign = FaultInjectionCampaign(lenet_prepared.model, inputs, seed=0)
    campaign.run(trials=20, incremental=True)
    assert 0 < len(campaign._golden_caches) <= len(inputs)
    # A second run reuses the caches instead of rebuilding them.
    caches_before = {k: id(v) for k, v in campaign._golden_caches.items()}
    campaign.run(trials=10, incremental=True)
    for key, ident in caches_before.items():
        assert id(campaign._golden_caches[key]) == ident
