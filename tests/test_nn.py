"""Unit tests for the training engine: initializers, losses, optimizers, trainer."""

import numpy as np
import pytest

from repro import ops
from repro.graph import Executor, GraphBuilder
from repro.nn import (
    Adam,
    MeanAbsoluteError,
    MeanSquaredError,
    SGD,
    SoftmaxCrossEntropy,
    Trainer,
    glorot_uniform,
    he_normal,
    ones,
    truncated_normal,
    zeros,
)


class TestInitializers:
    def test_zeros_and_ones(self, rng):
        assert np.all(zeros(rng, (3, 4)) == 0.0)
        assert np.all(ones(rng, (5,)) == 1.0)

    def test_glorot_limit_respected(self, rng):
        w = glorot_uniform(rng, (100, 50))
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= limit)

    def test_glorot_conv_fan(self, rng):
        w = glorot_uniform(rng, (3, 3, 8, 16))
        assert w.shape == (3, 3, 8, 16)

    def test_he_normal_scale(self, rng):
        w = he_normal(rng, (1000, 10))
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.2)

    def test_truncated_normal_clipped(self, rng):
        w = truncated_normal(rng, (1000,), std=0.1)
        assert np.all(np.abs(w) <= 0.2 + 1e-12)


class TestLosses:
    def test_cross_entropy_perfect_prediction_is_small(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        targets = np.array([0, 1])
        assert SoftmaxCrossEntropy().value(logits, targets) < 1e-4

    def test_cross_entropy_gradient_shape_and_direction(self):
        logits = np.zeros((2, 3))
        targets = np.array([0, 2])
        grad = SoftmaxCrossEntropy().gradient(logits, targets)
        assert grad.shape == (2, 3)
        assert grad[0, 0] < 0 and grad[0, 1] > 0

    def test_cross_entropy_gradient_matches_numerical(self, rng):
        logits = rng.normal(size=(3, 4))
        targets = np.array([0, 1, 3])
        loss = SoftmaxCrossEntropy()
        grad = loss.gradient(logits, targets)
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                perturbed = logits.copy()
                perturbed[i, j] += eps
                plus = loss.value(perturbed, targets)
                perturbed[i, j] -= 2 * eps
                minus = loss.value(perturbed, targets)
                assert grad[i, j] == pytest.approx((plus - minus) / (2 * eps),
                                                   abs=1e-4)

    def test_mse_value_and_gradient(self):
        pred = np.array([[1.0], [3.0]])
        target = np.array([[0.0], [1.0]])
        loss = MeanSquaredError()
        assert loss.value(pred, target) == pytest.approx(2.5)
        np.testing.assert_allclose(loss.gradient(pred, target),
                                   [[1.0], [2.0]])

    def test_mae(self):
        pred = np.array([[2.0], [-1.0]])
        target = np.array([[0.0], [0.0]])
        assert MeanAbsoluteError().value(pred, target) == pytest.approx(1.5)


class TestOptimizers:
    def test_sgd_moves_against_gradient(self):
        var = ops.Variable(np.array([1.0]))
        var.accumulate_grad(np.array([0.5]))
        SGD(learning_rate=0.1).step([var])
        assert var.value[0] == pytest.approx(0.95)

    def test_sgd_momentum_accumulates(self):
        var = ops.Variable(np.array([0.0]))
        opt = SGD(learning_rate=0.1, momentum=0.9)
        for _ in range(3):
            var.grad = np.array([1.0])
            opt.step([var])
        assert var.value[0] < -0.25  # more than 3 plain steps of 0.1

    def test_adam_converges_on_quadratic(self):
        var = ops.Variable(np.array([5.0]))
        opt = Adam(learning_rate=0.2)
        for _ in range(200):
            var.grad = 2.0 * var.value  # d/dx of x^2
            opt.step([var])
        assert abs(var.value[0]) < 0.1

    def test_untrainable_variables_untouched(self):
        var = ops.Variable(np.array([1.0]), trainable=False)
        var.grad = np.array([10.0])
        SGD(learning_rate=1.0).step([var])
        assert var.value[0] == 1.0

    def test_gradient_clipping(self):
        var = ops.Variable(np.array([0.0]))
        var.grad = np.array([100.0])
        SGD(learning_rate=0.1, grad_clip=1.0).step([var])
        assert var.value[0] == pytest.approx(-0.1)

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)


def _regression_graph(seed=3):
    builder = GraphBuilder("reg", seed=seed)
    x = builder.input((2,), "input")
    out = builder.dense(x, 2, 1, name="fc", activation=None)
    builder.output(out)
    return builder.graph, out


class TestTrainer:
    def test_learns_linear_regression(self, rng):
        graph, out = _regression_graph()
        true_w = np.array([[2.0], [-3.0]])
        x = rng.normal(size=(200, 2))
        y = x @ true_w + 0.5
        trainer = Trainer(graph, MeanSquaredError(), Adam(learning_rate=0.05),
                          output_node=out)
        history = trainer.fit(x, y, epochs=30, batch_size=32, seed=0)
        assert history.final_loss < 0.05
        learned = graph.node("fc/weight").op.value
        np.testing.assert_allclose(learned, true_w, atol=0.2)

    def test_loss_decreases(self, rng):
        graph, out = _regression_graph(seed=4)
        x = rng.normal(size=(100, 2))
        y = (x.sum(axis=1, keepdims=True) > 0).astype(float)
        trainer = Trainer(graph, MeanSquaredError(), SGD(learning_rate=0.05),
                          output_node=out)
        history = trainer.fit(x, y, epochs=10, batch_size=25, seed=0)
        assert history.epoch_losses[-1] < history.epoch_losses[0]

    def test_mismatched_lengths_rejected(self, rng):
        graph, out = _regression_graph(seed=5)
        trainer = Trainer(graph, MeanSquaredError(), SGD(), output_node=out)
        with pytest.raises(ValueError):
            trainer.fit(rng.normal(size=(10, 2)), rng.normal(size=(9, 1)))

    def test_classification_training_improves_accuracy(self, rng):
        builder = GraphBuilder("clf", seed=0)
        x = builder.input((4,), "input")
        h = builder.dense(x, 4, 8, name="fc1")
        logits = builder.dense(h, 8, 2, name="fc2", activation=None)
        builder.output(logits)
        # Linearly separable synthetic task.
        features = rng.normal(size=(300, 4))
        labels = (features[:, 0] + features[:, 1] > 0).astype(int)
        trainer = Trainer(builder.graph, SoftmaxCrossEntropy(),
                          Adam(learning_rate=0.02), output_node=logits)
        trainer.fit(features, labels, epochs=15, batch_size=32, seed=0)
        result = Executor(builder.graph).run({"input": features},
                                             outputs=[logits])
        accuracy = (result.output(logits).argmax(1) == labels).mean()
        assert accuracy > 0.9

    def test_requires_single_placeholder(self):
        g = GraphBuilder("two_inputs", seed=0)
        g.input((2,), "a")
        g.input((2,), "b")
        with pytest.raises(ValueError):
            Trainer(g.graph, MeanSquaredError(), SGD())
