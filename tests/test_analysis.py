"""Unit tests for metrics, FLOPs accounting and reporting."""

import numpy as np
import pytest

from repro.analysis import (
    AccuracyReport,
    average_deviation,
    count_flops,
    evaluate_accuracy,
    protection_overhead,
    reduction_factor,
    relative_reduction_percent,
    render_comparison,
    render_series,
    render_table,
    rmse,
    top_k_accuracy,
)
from repro.core import Ranger


class TestMetrics:
    def test_top1(self):
        probs = np.array([[0.9, 0.1], [0.3, 0.7], [0.6, 0.4]])
        labels = np.array([0, 1, 1])
        assert top_k_accuracy(probs, labels, k=1) == pytest.approx(2 / 3)

    def test_top_k_monotone_in_k(self, rng):
        probs = rng.random((50, 10))
        labels = rng.integers(0, 10, size=50)
        accs = [top_k_accuracy(probs, labels, k=k) for k in (1, 3, 5, 10)]
        assert all(accs[i] <= accs[i + 1] for i in range(len(accs) - 1))
        assert accs[-1] == 1.0

    def test_top_k_ties_follow_stable_order(self):
        """Tied probabilities must resolve like the SDC criteria do.

        ``TopKMisclassification`` ranks with a *stable* descending argsort
        (reversed stable ascending: among ties, the higher index ranks
        first).  With 64+ tied classes a non-stable introsort orders ties
        by partition accidents that vary with array size, so the metric
        and the criterion could disagree about the same top-k set.
        """
        classes = 96
        rows = 8
        probs = np.full((rows, classes), 0.5)  # every class tied
        # stable order ranks the highest index first among ties
        labels_in = np.array([classes - 1 - r for r in range(rows)])
        assert top_k_accuracy(probs, labels_in, k=rows) == 1.0
        labels_out = np.zeros(rows, dtype=int)
        assert top_k_accuracy(probs, labels_out, k=rows) == 0.0
        # a tied *grid* (blocks of equal values) keeps within-block
        # higher-index-first order for the top-k cut
        grid = np.tile(np.repeat([0.3, 0.2, 0.1], classes // 3),
                       (rows, 1))
        block = classes // 3
        top = np.argsort(grid, axis=1, kind="stable")[:, ::-1][:, :block]
        expected = np.arange(block - 1, -1, -1)
        assert np.array_equal(top, np.tile(expected, (rows, 1)))
        assert top_k_accuracy(grid, np.full(rows, block - 1), k=1) == 1.0
        assert top_k_accuracy(grid, np.zeros(rows, dtype=int), k=1) == 0.0

    def test_top_k_matches_sdc_criterion_ranking(self, rng):
        """The metric's top-k set must equal the one the vectorized SDC
        check derives, element for element, including tie handling."""
        probs = rng.integers(0, 4, size=(32, 80)) / 4.0  # many exact ties
        for k in (1, 5, 10):
            metric_top = np.argsort(probs, axis=1,
                                    kind="stable")[:, ::-1][:, :k]
            for row in range(probs.shape[0]):
                scalar = np.argsort(probs[row], kind="stable")[::-1][:k]
                assert np.array_equal(metric_top[row], scalar)
                hit = top_k_accuracy(probs[row:row + 1],
                                     np.array([scalar[-1]]), k=k)
                assert hit == 1.0

    def test_top_k_validation(self, rng):
        with pytest.raises(ValueError):
            top_k_accuracy(rng.random((3, 4)), np.zeros(3), k=5)
        with pytest.raises(ValueError):
            top_k_accuracy(rng.random(12), np.zeros(3))

    def test_rmse_and_average_deviation(self):
        pred = np.array([1.0, 2.0, 3.0])
        target = np.array([1.0, 4.0, 1.0])
        assert rmse(pred, target) == pytest.approx(np.sqrt(8 / 3))
        assert average_deviation(pred, target) == pytest.approx(4 / 3)

    def test_evaluate_accuracy_classifier(self, lenet_prepared):
        report = evaluate_accuracy(lenet_prepared.model,
                                   lenet_prepared.dataset.x_val,
                                   lenet_prepared.dataset.y_val)
        assert report.task == "classification"
        assert 0.0 <= report.top1 <= 1.0
        assert report.top5 >= report.top1

    def test_evaluate_accuracy_regression(self, comma_prepared):
        report = evaluate_accuracy(comma_prepared.model,
                                   comma_prepared.dataset.x_val,
                                   comma_prepared.dataset.y_val)
        assert report.rmse_degrees is not None
        assert report.avg_deviation_degrees <= report.rmse_degrees + 1e-9

    def test_accuracy_report_matches(self):
        a = AccuracyReport("m", "classification", top1=0.5, top5=0.8)
        b = AccuracyReport("m", "classification", top1=0.5, top5=0.8)
        c = AccuracyReport("m", "classification", top1=0.4, top5=0.8)
        assert a.matches(b)
        assert not a.matches(c)


class TestFlops:
    def test_conv_dominates_lenet(self, untrained_lenet):
        report = count_flops(untrained_lenet.model)
        conv_flops = sum(v for k, v in report.per_node.items() if "/conv" in k)
        assert conv_flops > 0.3 * report.total

    def test_total_positive_and_stable(self, untrained_lenet):
        a = count_flops(untrained_lenet.model).total
        b = count_flops(untrained_lenet.model).total
        assert a == b > 0

    def test_protection_overhead_small(self, lenet_prepared, lenet_protected):
        protected, _ = lenet_protected
        overhead = protection_overhead(lenet_prepared.model, protected)
        assert overhead["flops_with"] > overhead["flops_without"]
        assert 0.0 < overhead["overhead"] < 0.05  # well under 5%

    def test_zero_baseline_rejected(self, untrained_lenet):
        report = count_flops(untrained_lenet.model)
        empty = type(report)(model_name="empty", per_node={})
        with pytest.raises(ValueError):
            report.overhead_relative_to(empty)


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["model", "sdc"], [["lenet", 12.5], ["vgg", 3.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "lenet" in lines[2] and "12.50" in lines[2]

    def test_render_table_with_title(self):
        text = render_table(["a"], [[1]], title="Table X")
        assert text.startswith("Table X")

    def test_render_series(self):
        text = render_series({"original": [1, 2], "ranger": [0.1, 0.2]},
                             ["2 bit", "3 bit"])
        assert "original" in text and "2 bit" in text

    def test_render_comparison(self):
        text = render_comparison("t", ["a", "b"], [10, 20], [1, 2])
        assert "ranger" in text

    def test_reduction_factor(self):
        assert reduction_factor(20.0, 2.0) == pytest.approx(10.0)
        assert reduction_factor(20.0, 0.0) == float("inf")
        assert reduction_factor(0.0, 0.0) == 1.0

    def test_relative_reduction(self):
        assert relative_reduction_percent(20.0, 2.0) == pytest.approx(90.0)
        assert relative_reduction_percent(0.0, 0.0) == 0.0
