"""Equivalence and determinism suite for the multiprocess campaign backend.

``FaultInjectionCampaign.run(workers=N)`` must be **bit-identical** to the
serial incremental path for every worker count: same per-criterion counts,
same applied-fault records, same incremental-execution statistics.  The
guarantee rests on three properties, each tested here:

1. every trial draws its corruption randomness from a per-trial stream
   derived from the campaign seed and the *global* trial index
   (``trial_rng``), so outcomes cannot depend on execution order, chunking
   or worker count;
2. plans are pre-sampled once in the parent and shipped to the workers, so
   the sampled ``(input, plan)`` pairs are a pure function of the seed;
3. ``CampaignResult.merge`` aggregates purely additive counters, so merged
   statistics equal those of an unsharded run in any shard order.
"""

import itertools
import pickle

import numpy as np
import pytest

from repro.core import Ranger
from repro.injection import (
    CampaignResult,
    FaultInjectionCampaign,
    InjectionPlan,
    MultiBitFlip,
    SingleBitFlip,
    StuckAtZeroFault,
    compare_protection,
    shard_plans,
    trial_rng,
)
from repro.injection.campaign import _run_campaign_shard
from repro.models import prepare_model
from repro.quantization import FIXED16, FIXED32, fixed16_policy

#: Models the parallel-vs-serial sweep covers: the smallest model of the zoo
#: and the deep feed-forward model the throughput benchmarks target.  Models
#: are built untrained (deterministically initialized) — training does not
#: change the execution semantics under test and skipping it keeps the
#: sweep fast.
ZOO_SUBSET = ("lenet", "squeezenet")

WORKER_COUNTS = (1, 2, 4)
TRIALS = 12


@pytest.fixture(scope="module", params=ZOO_SUBSET)
def subset_prepared(request):
    return prepare_model(request.param, train=False, seed=1)


def _fault_records(result):
    """The per-trial (site, bit) sequences — the model-independent fault identity."""
    return [[(f.node_name, f.element_index, f.bit) for f in trial]
            for trial in result.faults]


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("use_fixed_point", [False, True],
                             ids=["float64", "fixed16"])
    @pytest.mark.parametrize("use_ranger", [False, True],
                             ids=["unprotected", "ranger"])
    def test_workers_replay_bit_identically(self, subset_prepared,
                                            use_fixed_point, use_ranger):
        prepared = subset_prepared
        model = prepared.model
        if use_ranger:
            sample, _ = prepared.dataset.sample_train(4, seed=0)
            model, _ = Ranger(seed=0).protect(prepared.model,
                                              profile_inputs=sample)
        dtype_policy = fixed16_policy() if use_fixed_point else None
        inputs = prepared.dataset.x_val[:2]

        def build():
            return FaultInjectionCampaign(model, inputs,
                                          fault_model=SingleBitFlip(FIXED16),
                                          dtype_policy=dtype_policy, seed=0)

        serial = build()
        plans = serial.generate_plans(TRIALS)
        reference = serial.run(plans=plans, keep_faults=True,
                               incremental=True)
        for workers in WORKER_COUNTS:
            result = build().run(plans=plans, keep_faults=True,
                                 workers=workers)
            assert result.trials == reference.trials == TRIALS
            assert result.sdc_counts == reference.sdc_counts, workers
            # FaultSpec equality is exact float equality: the same bits were
            # flipped in the same values.
            assert result.faults == reference.faults, workers
            assert result.nodes_recomputed == reference.nodes_recomputed
            assert result.nodes_full == reference.nodes_full

    def test_multibit_overlapping_sites_parallelize(self, lenet_prepared):
        """The hook-based replay of overlapping plans is fan-out safe too."""
        inputs, _ = lenet_prepared.correctly_predicted_inputs(3, seed=0)

        def build():
            return FaultInjectionCampaign(lenet_prepared.model, inputs,
                                          fault_model=MultiBitFlip(3, FIXED32),
                                          seed=0)

        serial = build()
        plans = serial.generate_plans(16)
        reference = serial.run(plans=plans, keep_faults=True)
        result = build().run(plans=plans, keep_faults=True, workers=3)
        assert result.sdc_counts == reference.sdc_counts
        assert result.faults == reference.faults

    def test_worker_shard_rebuilds_from_pickled_spec(self, lenet_prepared):
        """One shard run through the pickled worker protocol equals serial."""
        inputs, _ = lenet_prepared.correctly_predicted_inputs(2, seed=0)
        campaign = FaultInjectionCampaign(lenet_prepared.model, inputs, seed=0)
        plans = campaign.generate_plans(8)
        reference = campaign.run(plans=plans, keep_faults=True)
        spec = pickle.loads(pickle.dumps(campaign.spec()))
        payload = [(index, plan.to_payload()) for index, plan in plans]
        shard = _run_campaign_shard(spec, payload, trial_offset=0,
                                    keep_faults=True, incremental=True)
        assert shard.sdc_counts == reference.sdc_counts
        assert shard.faults == reference.faults

    def test_plan_payload_roundtrip(self):
        plan = InjectionPlan(sites=[("conv1/relu", 17), ("pool2", 3)])
        assert InjectionPlan.from_payload(plan.to_payload()) == plan


class TestMergeProperties:
    @staticmethod
    def _shard(counts, trials, detected=0, recomputed=0, full=0):
        return CampaignResult(model_name="m", fault_model="f", trials=trials,
                              sdc_counts=dict(counts),
                              detected_count=detected,
                              nodes_recomputed=recomputed, nodes_full=full)

    def test_counts_additive_in_any_order(self):
        shards = [self._shard({"top1": 3, "top5": 1}, 10, recomputed=5, full=20),
                  self._shard({"top1": 1, "top5": 0}, 6, recomputed=2, full=12),
                  self._shard({"top1": 0, "top5": 2}, 4, recomputed=1, full=8)]
        expected = CampaignResult.merge(shards)
        assert expected.trials == 20
        assert expected.sdc_counts == {"top1": 4, "top5": 3}
        assert expected.nodes_recomputed == 8
        assert expected.nodes_full == 40
        for permutation in itertools.permutations(shards):
            merged = CampaignResult.merge(permutation)
            assert merged.sdc_counts == expected.sdc_counts
            assert merged.trials == expected.trials
            assert merged.recompute_fraction == expected.recompute_fraction
            for criterion in ("top1", "top5"):
                assert merged.sdc_rate(criterion) == expected.sdc_rate(criterion)
                assert (merged.confidence_interval(criterion)
                        == expected.confidence_interval(criterion))

    def test_empty_shard_is_identity(self):
        shard = self._shard({"top1": 2}, 9, recomputed=3, full=18)
        empty = self._shard({"top1": 0}, 0)
        merged = CampaignResult.merge([empty, shard, empty])
        assert merged.trials == shard.trials
        assert merged.sdc_counts == shard.sdc_counts
        assert merged.sdc_rate("top1") == shard.sdc_rate("top1")
        assert merged.confidence_interval("top1") == shard.confidence_interval("top1")
        assert merged.recompute_fraction == shard.recompute_fraction

    def test_single_shard_merge_preserves_statistics(self):
        shard = self._shard({"top1": 4}, 11, detected=2, recomputed=7, full=33)
        merged = CampaignResult.merge([shard])
        assert merged == shard

    def test_merge_rejects_empty_and_mismatched(self):
        with pytest.raises(ValueError):
            CampaignResult.merge([])
        a = self._shard({"top1": 1}, 5)
        b = CampaignResult(model_name="other", fault_model="f", trials=5,
                           sdc_counts={"top1": 0})
        with pytest.raises(ValueError):
            CampaignResult.merge([a, b])
        c = self._shard({"top5": 1}, 5)  # different criterion set
        with pytest.raises(ValueError):
            CampaignResult.merge([a, c])

    def test_merged_run_equals_unsharded_run(self, lenet_prepared):
        """Shard a real campaign by hand; the merge reproduces the whole."""
        inputs, _ = lenet_prepared.correctly_predicted_inputs(3, seed=0)
        campaign = FaultInjectionCampaign(lenet_prepared.model, inputs, seed=0)
        plans = campaign.generate_plans(30)
        whole = campaign.run(plans=plans, keep_faults=True)
        for shards in (2, 3, 5):
            partials = [campaign.run(plans=chunk, keep_faults=True,
                                     trial_offset=offset)
                        for offset, chunk in shard_plans(plans, shards)]
            merged = CampaignResult.merge(partials)
            assert merged.trials == whole.trials
            assert merged.sdc_counts == whole.sdc_counts
            assert merged.faults == whole.faults
            assert merged.sdc_rate("top1") == whole.sdc_rate("top1")
            assert (merged.confidence_interval("top1")
                    == whole.confidence_interval("top1"))
            assert merged.recompute_fraction == whole.recompute_fraction


class TestSeedPartitioning:
    def test_same_seed_samples_same_plans(self, lenet_prepared):
        """Plan sampling is a pure function of the campaign seed."""
        inputs, _ = lenet_prepared.correctly_predicted_inputs(3, seed=0)

        def sample():
            campaign = FaultInjectionCampaign(lenet_prepared.model, inputs,
                                              seed=5)
            return campaign.generate_plans(25)

        first, second = sample(), sample()
        assert [(i, p.to_payload()) for i, p in first] \
            == [(i, p.to_payload()) for i, p in second]

    def test_sharding_never_perturbs_the_plan_list(self, lenet_prepared):
        inputs, _ = lenet_prepared.correctly_predicted_inputs(2, seed=0)
        campaign = FaultInjectionCampaign(lenet_prepared.model, inputs, seed=1)
        plans = campaign.generate_plans(17)
        for shards in (1, 2, 4, 17, 30):
            chunks = shard_plans(plans, shards)
            reassembled = [pair for _, chunk in chunks for pair in chunk]
            assert reassembled == plans
            # Offsets are the chunk positions in the original trial order.
            position = 0
            for offset, chunk in chunks:
                assert offset == position
                position += len(chunk)

    def test_trial_rng_streams_are_spawn_children(self):
        """trial_rng(seed, i) is the i-th SeedSequence.spawn child of the seed."""
        children = np.random.SeedSequence(7).spawn(6)
        for index, child in enumerate(children):
            expected = np.random.default_rng(child).integers(0, 2 ** 63, 8)
            derived = trial_rng(7, index).integers(0, 2 ** 63, 8)
            assert (expected == derived).all()

    def test_trial_streams_never_repeat_across_trials(self):
        """Guards against accidental RNG-stream reuse between trials/workers."""
        draws = {tuple(trial_rng(0, index).integers(0, 2 ** 63, 4))
                 for index in range(64)}
        assert len(draws) == 64

    def test_chunk_size_cannot_change_results(self, lenet_prepared):
        """Same seed, any chunking: bit-identical counts and fault records."""
        inputs, _ = lenet_prepared.correctly_predicted_inputs(3, seed=0)
        campaign = FaultInjectionCampaign(lenet_prepared.model, inputs, seed=0)
        plans = campaign.generate_plans(20)
        whole = campaign.run(plans=plans, keep_faults=True)
        for workers in (2, 3, 5):
            partials = [campaign.run(plans=chunk, keep_faults=True,
                                     trial_offset=offset)
                        for offset, chunk in shard_plans(plans, workers)]
            merged = CampaignResult.merge(partials)
            assert merged.sdc_counts == whole.sdc_counts
            assert merged.faults == whole.faults


class TestPairedComparison:
    def test_paired_campaigns_flip_identical_bits(self, lenet_prepared,
                                                  lenet_protected):
        """Unprotected and protected campaigns consume the same bit draws."""
        protected, _ = lenet_protected
        inputs, _ = lenet_prepared.correctly_predicted_inputs(4, seed=0)
        base = FaultInjectionCampaign(lenet_prepared.model, inputs, seed=2)
        guarded = FaultInjectionCampaign(protected, inputs, seed=2)
        plans = base.generate_plans(20)
        base_result = base.run(plans=plans, keep_faults=True)
        guarded_result = guarded.run(plans=plans, keep_faults=True)
        assert _fault_records(base_result) == _fault_records(guarded_result)

    def test_compare_protection_invariant_under_fan_out(self, lenet_prepared,
                                                        lenet_protected):
        protected, _ = lenet_protected
        inputs, _ = lenet_prepared.correctly_predicted_inputs(4, seed=0)
        serial = compare_protection(lenet_prepared.model, protected, inputs,
                                    trials=20, seed=3)
        fanned = compare_protection(lenet_prepared.model, protected, inputs,
                                    trials=20, seed=3, workers=2)
        for reference, result in zip(serial, fanned):
            assert result.sdc_counts == reference.sdc_counts
            assert result.trials == reference.trials


class TestSummaryCounts:
    def test_summary_reports_zero_sdc_criteria(self, lenet_prepared):
        """A criterion with zero observed SDCs still shows its trial count."""

        class NoOpFault(StuckAtZeroFault):
            def corrupt(self, value, rng):
                return value, None

        inputs, _ = lenet_prepared.correctly_predicted_inputs(2, seed=0)
        campaign = FaultInjectionCampaign(lenet_prepared.model, inputs,
                                          fault_model=NoOpFault(), seed=0)
        text = campaign.run(trials=10).summary()
        assert "[0/10 trials]" in text

    def test_summary_reports_counts_per_criterion(self):
        result = CampaignResult(model_name="m", fault_model="f", trials=8,
                                sdc_counts={"top1": 3, "top5": 0})
        text = result.summary()
        assert "[3/8 trials]" in text
        assert "[0/8 trials]" in text
