"""Campaign service: queue, scheduler, artifact store, server end-to-end.

The acceptance guarantees under test:

* **Bit-identity** — a spec submitted through the service yields a
  ``CampaignResult`` with the same SDC counts and fault records as a
  direct ``FaultInjectionCampaign.run()`` on every backend (serial,
  batched, workers, pool, adaptive).
* **Streaming** — per-wave snapshots are cumulative partial merges whose
  last element equals the final (and direct) result.
* **Artifact reuse** — an exact repeat submission is served from the
  result cache (observable hit counter), and an overlapping spec reuses
  the stored golden activation caches.
"""

from __future__ import annotations

import pickle
import threading
import time

import pytest

from repro.injection import FaultInjectionCampaign, SingleBitFlip
from repro.quantization import FIXED32, fixed32_policy
from repro.service import (
    AdmissionError,
    ArtifactStore,
    CampaignClient,
    CampaignServer,
    JobQueue,
    RunOptions,
    request_from_campaign,
)

TRIALS = 24


@pytest.fixture(scope="module")
def service_inputs(lenet_prepared):
    inputs, _ = lenet_prepared.correctly_predicted_inputs(3, seed=0)
    return inputs


@pytest.fixture(scope="module")
def direct_reference(lenet_prepared, service_inputs):
    """The direct-run result every service backend must match bit-for-bit."""
    campaign = FaultInjectionCampaign(
        lenet_prepared.model, service_inputs,
        fault_model=SingleBitFlip(FIXED32), dtype_policy=fixed32_policy(),
        seed=0)
    return campaign.run(trials=TRIALS, keep_faults=True)


def submit_kwargs(**options):
    base = dict(fault_model=SingleBitFlip(FIXED32),
                dtype_policy=fixed32_policy(), seed=0, trials=TRIALS,
                keep_faults=True)
    base.update(options)
    return base


class TestJobQueue:
    def test_priority_order(self):
        queue = JobQueue()
        queue.submit("low", priority=0)
        queue.submit("high", priority=5)
        queue.submit("mid", priority=2)
        assert [queue.pop() for _ in range(3)] == ["high", "mid", "low"]

    def test_fifo_within_priority(self):
        queue = JobQueue()
        for item in "abcd":
            queue.submit(item, priority=1)
        assert [queue.pop() for _ in range(4)] == list("abcd")

    def test_admission_backpressure(self):
        queue = JobQueue(max_pending=2)
        queue.submit(1)
        queue.submit(2)
        with pytest.raises(AdmissionError):
            queue.submit(3)
        queue.pop()
        queue.submit(3)  # capacity freed by the pop

    def test_pop_timeout_returns_none(self):
        queue = JobQueue()
        assert queue.pop(timeout=0.01) is None

    def test_close_wakes_blocked_pop_and_refuses_submit(self):
        queue = JobQueue()
        popped = []
        thread = threading.Thread(
            target=lambda: popped.append(queue.pop(timeout=5.0)))
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=5.0)
        assert popped == [None]
        with pytest.raises(RuntimeError):
            queue.submit("x")

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            JobQueue(max_pending=0)


class TestArtifactStore:
    def test_hit_miss_counters(self):
        store = ArtifactStore()
        assert store.get("result", "k") is None
        store.put("result", "k", 41)
        assert store.get("result", "k") == 41
        assert store.stats()["result"] == {"hits": 1, "misses": 1,
                                           "entries": 1}

    def test_contains_does_not_perturb_counters(self):
        store = ArtifactStore()
        store.put("golden", "k", {0: {}})
        assert store.contains("golden", "k")
        assert not store.contains("golden", "other")
        assert "golden" not in store.stats() or \
            store.stats()["golden"]["misses"] == 0

    def test_disk_write_through_and_reload(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        store.put("result", "deadbeef", {"rate": 0.5})
        assert (tmp_path / "result" / "deadbeef.pkl").exists()
        # A fresh store over the same root serves the artifact (one hit).
        reloaded = ArtifactStore(root=tmp_path)
        assert reloaded.get("result", "deadbeef") == {"rate": 0.5}
        assert reloaded.stats()["result"]["hits"] == 1

    def test_golden_budget_rejects_oversized_payloads(self):
        import numpy as np
        store = ArtifactStore(golden_budget_bytes=8)
        big = {0: {"node": np.zeros(64)}}
        assert not store.put_golden_caches("key", big)
        assert not store.contains("golden", "key")
        small = {0: {"node": np.zeros(1)}}
        assert store.put_golden_caches("key", small)


class TestRequestFingerprints:
    def test_identical_requests_share_keys(self, lenet_prepared,
                                           service_inputs):
        first = request_from_campaign(lenet_prepared.model, service_inputs,
                                      **submit_kwargs())
        second = request_from_campaign(lenet_prepared.model, service_inputs,
                                       **submit_kwargs())
        assert first.spec_key() == second.spec_key()
        assert first.result_key() == second.result_key()

    def test_backend_knobs_change_result_key_not_spec_key(
            self, lenet_prepared, service_inputs):
        plain = request_from_campaign(lenet_prepared.model, service_inputs,
                                      **submit_kwargs())
        batched = request_from_campaign(lenet_prepared.model, service_inputs,
                                        **submit_kwargs(batch_trials=8))
        assert plain.spec_key() == batched.spec_key()
        assert plain.result_key() != batched.result_key()

    def test_fingerprint_survives_pickle_round_trip(self, lenet_prepared,
                                                    service_inputs):
        request = request_from_campaign(lenet_prepared.model, service_inputs,
                                        **submit_kwargs())
        clone = pickle.loads(pickle.dumps(request))
        assert clone.spec_key() == request.spec_key()
        assert clone.result_key() == request.result_key()

    def test_fingerprint_stable_after_graph_queries(self, lenet_prepared,
                                                    service_inputs):
        """Running a campaign fills the graph's lazy cone memos; the
        pickle (and therefore every content key) must not see them."""
        request = request_from_campaign(lenet_prepared.model, service_inputs,
                                        **submit_kwargs())
        before = request.result_key()
        FaultInjectionCampaign(
            lenet_prepared.model, service_inputs,
            fault_model=SingleBitFlip(FIXED32),
            dtype_policy=fixed32_policy(), seed=0).run(trials=2)
        assert request.result_key() == before

    def test_options_round_trip_adaptive_flag(self):
        assert not RunOptions().adaptive
        assert RunOptions(target_half_width=0.1).adaptive


class TestServiceBitIdentity:
    """Service result == direct run, on every backend."""

    @pytest.fixture(scope="class")
    def server(self):
        with CampaignServer(pool_workers=2) as server:
            yield server

    @pytest.mark.parametrize("options", [
        {},
        {"batch_trials": 8},
        {"workers": 2},
        {"use_pool": True},
        {"target_half_width": 0.25, "wave_trials": 6},
    ], ids=["serial", "batched", "workers", "pool", "adaptive"])
    def test_backend_matches_direct_run(self, server, lenet_prepared,
                                        service_inputs, direct_reference,
                                        options):
        client = CampaignClient(server)
        result = client.run(lenet_prepared.model, service_inputs,
                            timeout=600.0, **submit_kwargs(**options))
        # the direct run takes the same engine options (an adaptive job
        # stops early on both sides; backend knobs don't change content)
        run_options = {key: value for key, value in options.items()
                       if key != "use_pool"}
        direct = FaultInjectionCampaign(
            lenet_prepared.model, service_inputs,
            fault_model=SingleBitFlip(FIXED32),
            dtype_policy=fixed32_policy(), seed=0).run(
                trials=TRIALS, keep_faults=True, **run_options)
        assert result.sdc_counts == direct.sdc_counts
        assert result.faults == direct.faults
        assert result.trials == direct.trials
        if not run_options:  # non-adaptive backends all match the serial ref
            assert result.sdc_counts == direct_reference.sdc_counts
            assert result.faults == direct_reference.faults

    def test_streaming_snapshots_are_cumulative_prefixes(
            self, server, lenet_prepared, service_inputs, direct_reference):
        client = CampaignClient(server)
        # seed=1 keeps this spec distinct from the cached backend runs.
        handle = client.submit_campaign(
            lenet_prepared.model, service_inputs,
            **submit_kwargs(seed=1))
        snapshots = list(handle.stream(timeout=600.0))
        assert len(snapshots) > 1
        trials_seen = [snapshot.trials for snapshot in snapshots]
        assert trials_seen == sorted(trials_seen)
        final = snapshots[-1]
        direct = FaultInjectionCampaign(
            lenet_prepared.model, service_inputs,
            fault_model=SingleBitFlip(FIXED32),
            dtype_policy=fixed32_policy(), seed=1).run(trials=TRIALS,
                                                       keep_faults=True)
        assert final.sdc_counts == direct.sdc_counts
        assert final.faults == direct.faults
        # every snapshot's fault records are a prefix of the final ones
        for snapshot in snapshots:
            assert snapshot.faults == final.faults[:len(snapshot.faults)]

    def test_compare_job_matches_direct_compare(self, server, lenet_prepared,
                                                lenet_protected,
                                                service_inputs):
        from repro.injection import compare_protection
        protected, _ = lenet_protected
        client = CampaignClient(server)
        base, guarded = client.compare(
            lenet_prepared.model, protected, service_inputs, timeout=600.0,
            fault_model=SingleBitFlip(FIXED32),
            dtype_policy=fixed32_policy(), seed=0, trials=TRIALS)
        direct_base, direct_guarded = compare_protection(
            lenet_prepared.model, protected, service_inputs,
            fault_model=SingleBitFlip(FIXED32),
            dtype_policy=fixed32_policy(), trials=TRIALS, seed=0)
        assert base.sdc_counts == direct_base.sdc_counts
        assert guarded.sdc_counts == direct_guarded.sdc_counts


class TestArtifactReuse:
    def test_repeat_submission_hits_result_cache(self, lenet_prepared,
                                                 service_inputs,
                                                 direct_reference):
        with CampaignServer() as server:
            client = CampaignClient(server)
            first = client.submit_campaign(lenet_prepared.model,
                                           service_inputs, **submit_kwargs())
            first.result(timeout=600.0)
            assert first.from_cache is False
            repeat = client.submit_campaign(lenet_prepared.model,
                                            service_inputs, **submit_kwargs())
            served = repeat.result(timeout=600.0)
            assert repeat.from_cache is True
            assert served.sdc_counts == direct_reference.sdc_counts
            assert served.faults == direct_reference.faults
            stats = server.stats()["store"]
            assert stats["result"]["hits"] == 1
            assert stats["result"]["misses"] == 1  # only the first lookup

    def test_overlapping_spec_reuses_golden_caches(self, lenet_prepared,
                                                   service_inputs):
        with CampaignServer() as server:
            client = CampaignClient(server)
            first = client.submit_campaign(lenet_prepared.model,
                                           service_inputs, **submit_kwargs())
            first.result(timeout=600.0)
            assert first.status()["golden_seeded"] is False
            # Same spec, different budget and options: result key differs,
            # spec key (and therefore the golden caches) is shared.
            overlap = client.submit_campaign(
                lenet_prepared.model, service_inputs,
                **submit_kwargs(trials=TRIALS * 2, keep_faults=False))
            overlap.result(timeout=600.0)
            assert overlap.from_cache is False
            assert overlap.status()["golden_seeded"] is True
            assert server.stats()["store"]["golden"]["hits"] == 1

    def test_cached_result_equals_fresh_on_new_server(self, lenet_prepared,
                                                      service_inputs,
                                                      tmp_path):
        store = ArtifactStore(root=tmp_path)
        with CampaignServer(store=store) as server:
            fresh = CampaignClient(server).run(
                lenet_prepared.model, service_inputs, timeout=600.0,
                **submit_kwargs())
        # a second server over the same disk root serves from cache
        with CampaignServer(store=ArtifactStore(root=tmp_path)) as server:
            handle = CampaignClient(server).submit_campaign(
                lenet_prepared.model, service_inputs, **submit_kwargs())
            cached = handle.result(timeout=600.0)
            assert handle.from_cache is True
        assert cached.sdc_counts == fresh.sdc_counts
        assert cached.faults == fresh.faults


class TestWaveScheduler:
    """Deterministic cancellation coverage, no thread timing involved."""

    def test_cancel_before_any_work(self, lenet_prepared, service_inputs):
        from repro.service import JobCancelled, WaveScheduler
        request = request_from_campaign(lenet_prepared.model, service_inputs,
                                        **submit_kwargs())
        with pytest.raises(JobCancelled):
            WaveScheduler().execute(request, should_cancel=lambda: True)

    def test_cancel_lands_at_wave_boundary(self, lenet_prepared,
                                           service_inputs):
        from repro.service import JobCancelled, WaveScheduler
        request = request_from_campaign(lenet_prepared.model, service_inputs,
                                        **submit_kwargs())
        snapshots = []
        with pytest.raises(JobCancelled):
            WaveScheduler().execute(request, publish=snapshots.append,
                                    should_cancel=lambda: len(snapshots) >= 1)
        assert len(snapshots) == 1  # first wave published, second never ran
        assert snapshots[0].trials < TRIALS

    def test_cancel_adaptive_job_via_on_wave(self, lenet_prepared,
                                             service_inputs):
        from repro.service import JobCancelled, WaveScheduler
        request = request_from_campaign(
            lenet_prepared.model, service_inputs,
            **submit_kwargs(wave_trials=6, target_half_width=0.01))
        snapshots = []
        with pytest.raises(JobCancelled):
            WaveScheduler().execute(request, publish=snapshots.append,
                                    should_cancel=lambda: len(snapshots) >= 1)
        assert len(snapshots) == 1


class TestServerLifecycle:
    def test_cancel_pending_job(self, lenet_prepared, service_inputs):
        # A server whose queue is stalled behind a slow job would be
        # flaky to arrange; instead cancel before the scheduler thread can
        # pop by submitting against a closed-queue-free server and racing
        # the flag — the deterministic part is the API contract below.
        with CampaignServer() as server:
            client = CampaignClient(server)
            handle = client.submit_campaign(lenet_prepared.model,
                                            service_inputs, **submit_kwargs())
            handle.result(timeout=600.0)
            # finished jobs can no longer be cancelled
            assert handle.cancel() is False
            assert handle.status()["state"] == "done"

    def test_failed_job_surfaces_error(self, lenet_prepared, service_inputs):
        with CampaignServer() as server:
            request = request_from_campaign(
                lenet_prepared.model, service_inputs,
                **submit_kwargs(use_pool=True))
            job = server.submit(request)  # no pool on this server
            with pytest.raises(RuntimeError, match="failed"):
                job.result(timeout=600.0)
            assert job.state == "failed"
            assert "CampaignPool" in job.error

    def test_submit_after_close_rejected(self, lenet_prepared,
                                         service_inputs):
        server = CampaignServer()
        server.close()
        with pytest.raises(RuntimeError):
            server.submit(request_from_campaign(
                lenet_prepared.model, service_inputs, **submit_kwargs()))

    def test_unknown_job_id(self):
        with CampaignServer() as server:
            with pytest.raises(KeyError):
                server.status("job-999")

    def test_unpicklable_submission_rejected_at_admission(self):
        with CampaignServer() as server:
            with pytest.raises(Exception):
                # not a CampaignRequest at all — decode_request rejects it
                server.submit("not a request")


@pytest.mark.slow
class TestServiceSoak:
    def test_many_overlapping_submissions_drain(self, lenet_prepared,
                                                service_inputs,
                                                direct_reference):
        """A burst of interleaved repeat/overlap jobs all finish, cache
        hits accumulate, and every result stays bit-identical."""
        with CampaignServer(max_pending=64) as server:
            client = CampaignClient(server)
            handles = []
            for round_index in range(6):
                handles.append(client.submit_campaign(
                    lenet_prepared.model, service_inputs,
                    priority=round_index % 3, **submit_kwargs()))
            results = [handle.result(timeout=600.0) for handle in handles]
            for result in results:
                assert result.sdc_counts == direct_reference.sdc_counts
                assert result.faults == direct_reference.faults
            stats = server.stats()
            assert stats["store"]["result"]["hits"] >= 5
            assert stats["jobs"].get("done") == 6
