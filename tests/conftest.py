"""Shared fixtures for the test suite.

The expensive fixtures (trained models) are session-scoped: the whole suite
trains LeNet and the Comma model once each and reuses them everywhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Ranger
from repro.models import prepare_model


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def lenet_prepared():
    """A trained LeNet on the synthetic digits dataset."""
    return prepare_model("lenet", epochs=5, seed=0)


@pytest.fixture(scope="session")
def comma_prepared():
    """A trained Comma.ai steering model on the synthetic driving dataset."""
    return prepare_model("comma", epochs=6, seed=0)


@pytest.fixture(scope="session")
def untrained_lenet():
    """An untrained LeNet (cheap model for structural tests)."""
    return prepare_model("lenet", train=False, seed=1)


@pytest.fixture(scope="session")
def lenet_protected(lenet_prepared):
    """LeNet protected by Ranger with max-value bounds."""
    ranger = Ranger(seed=0)
    sample, _ = lenet_prepared.dataset.sample_train(80, seed=0)
    protected, info = ranger.protect(lenet_prepared.model,
                                     profile_inputs=sample)
    return protected, info
