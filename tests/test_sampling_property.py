"""Property-based suite for the stratified-sampling allocation math.

The allocators behind adaptive campaigns must uphold three invariants for
*any* quota vector and budget, because a violated one silently corrupts a
campaign (a lost trial shrinks the sample, a phantom trial breaks the
prefix property, a nondeterministic split breaks bit-reproducibility):

* **sum-to-total** — every allocation spends exactly the wave's budget;
* **non-negativity + quota rule** — each stratum receives a count within
  one unit of its exact proportional share (Hamilton's method);
* **determinism** — equal inputs produce equal allocations, and scaling
  all quotas by a positive constant changes nothing.

Profiles are tiered like ``tests/test_sparse_property.py``: CI runs a
small example budget, ``REPRO_HYPOTHESIS_PROFILE=thorough`` digs 10×
deeper.
"""

import os

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.injection import largest_remainder, neyman_allocation, uniform_allocation
from repro.injection.sampling import SHARE_EPSILON, Stratification, StratumSpace
from repro.quantization import FIXED32
from repro.injection import SingleBitFlip

settings.register_profile("ci", max_examples=25, deadline=None)
settings.register_profile("thorough", max_examples=250, deadline=None)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "ci"))

#: Finite, non-negative quotas over a wide magnitude range.  Degenerate
#: all-zero vectors are valid input (the allocator falls back to uniform).
QUOTAS = st.lists(st.floats(min_value=0.0, max_value=1e9,
                            allow_nan=False, allow_infinity=False),
                  min_size=1, max_size=24)
TOTALS = st.integers(min_value=0, max_value=5000)


@given(quotas=QUOTAS, total=TOTALS)
def test_sums_to_total_and_non_negative(quotas, total):
    counts = largest_remainder(quotas, total)
    assert sum(counts) == total
    assert all(count >= 0 for count in counts)
    assert len(counts) == len(quotas)


@given(quotas=QUOTAS, total=TOTALS)
def test_deterministic(quotas, total):
    assert largest_remainder(quotas, total) == largest_remainder(quotas, total)


@given(quotas=QUOTAS, total=TOTALS,
       factor=st.floats(min_value=1e-3, max_value=1e3,
                        allow_nan=False, allow_infinity=False))
def test_scale_invariant_within_quota_rule(quotas, total, factor):
    """Scaling every quota by the same factor may shift float noise, but
    each count must stay within one unit of the exact share either way."""
    scaled = largest_remainder([q * factor for q in quotas], total)
    scale = sum(quotas) or float(len(quotas))
    shares = [(q / scale if sum(quotas) > 0 else 1.0 / len(quotas)) * total
              for q in quotas]
    for count, share in zip(scaled, shares):
        assert abs(count - share) < 1 + 1e-6


@given(quotas=QUOTAS, total=TOTALS)
def test_quota_rule(quotas, total):
    """Hamilton's method never strays a full unit from the exact share."""
    counts = largest_remainder(quotas, total)
    scale = sum(quotas)
    if scale <= 0:
        scale, quotas = float(len(quotas)), [1.0] * len(quotas)
    for count, quota in zip(counts, quotas):
        assert abs(count - quota / scale * total) < 1 + 1e-6


@given(k=st.integers(min_value=1, max_value=40),
       per=st.integers(min_value=0, max_value=200))
def test_exactly_proportional_quotas_split_exactly(k, per):
    """A divisible total over equal quotas allocates exactly evenly —
    the epsilon-snap regression (float noise used to floor one stratum
    to ``per - 1`` and hand the unit to a remainder-ordering accident)."""
    assert largest_remainder([1.0] * k, k * per) == [per] * k
    # scaled copies of the same proportions behave identically
    assert largest_remainder([1.0 / 3] * k, k * per) == [per] * k


def test_near_integer_shares_snap_before_flooring():
    # 0.3 + 0.3 + 0.4 over 10: exact shares (3, 3, 4) with float noise
    assert largest_remainder([0.3, 0.3, 0.4], 10) == [3, 3, 4]
    # the documented pins from the fixed-point sweep configurations
    assert largest_remainder([1, 1, 1], 10) == [4, 3, 3]
    assert largest_remainder([0, 0], 4) == [2, 2]


def test_snap_over_allocation_is_reclaimed():
    """Shares just under an integer snap *up*; if the snapped floors
    overshoot the total the reclaim pass must repair it deterministically
    while keeping every count non-negative."""
    eps = SHARE_EPSILON / 4
    quotas = [1.0 - eps, 1.0 - eps, 1.0 + 2 * eps]
    for total in range(0, 12):
        counts = largest_remainder(quotas, total)
        assert sum(counts) == total
        assert all(count >= 0 for count in counts)


@pytest.fixture(scope="module")
def stratum_space():
    site_sizes = {"conv1": 400, "conv2": 900, "fc1": 300, "fc2": 100}
    return StratumSpace(site_sizes, SingleBitFlip(FIXED32),
                        Stratification(layer_bands=2, bit_bands=4))


@given(wave=st.integers(min_value=0, max_value=400))
def test_uniform_allocation_sums_and_covers(stratum_space, wave):
    allocation = uniform_allocation(stratum_space, wave)
    assert sum(allocation.values()) == wave
    assert set(allocation) == set(stratum_space.keys)
    if wave >= len(stratum_space):
        assert all(count >= 1 for count in allocation.values())
    spread = set(allocation.values())
    assert max(spread) - min(spread) <= 1  # even split up to rounding


@given(wave=st.integers(min_value=0, max_value=400),
       stats=st.dictionaries(
           st.tuples(st.integers(0, 1), st.integers(0, 3)),
           st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50))
                    .filter(lambda sn: sn[1] >= sn[0]),
                    min_size=1, max_size=2),
           max_size=8))
def test_neyman_allocation_sums_and_is_deterministic(stratum_space, wave,
                                                     stats):
    first = neyman_allocation(stratum_space, wave, stats)
    assert sum(first.values()) == wave
    assert all(count >= 0 for count in first.values())
    assert first == neyman_allocation(stratum_space, wave, stats)
