"""Smoke tests for the experiment definitions (at reduced scale).

Each experiment is run at ``ExperimentScale.smoke()`` to verify the full
pipeline (train -> profile -> protect -> inject -> report) end to end and to
check the qualitative shape of the paper's results.
"""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENT_REGISTRY,
    ExperimentScale,
    results_to_markdown,
    run_all_experiments,
    run_fig4_bound_convergence,
    run_fig6_classifier_sdc,
    run_fig7_steering_sdc,
    run_fig10_bound_tradeoff,
    run_fig11_multibit_classifiers,
    run_sec6c_design_alternatives,
    run_table2_accuracy,
    run_table3_insertion_time,
    run_table4_flops_overhead,
)


@pytest.fixture(scope="module")
def smoke_scale():
    return ExperimentScale.smoke()


class TestScales:
    def test_smoke_scale_is_small(self, smoke_scale):
        assert smoke_scale.trials <= 50
        assert not smoke_scale.include_large_models

    def test_paper_scale_matches_paper_trials(self):
        assert ExperimentScale.paper().trials == 3000

    def test_model_lists(self):
        scale = ExperimentScale()
        assert set(scale.all_models()) >= {"lenet", "dave", "comma"}
        no_large = ExperimentScale(include_large_models=False)
        assert "vgg16" not in no_large.all_classifiers()


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {"fig4_bound_convergence", "fig6_classifier_sdc",
                    "fig7_steering_sdc", "fig8_hong_comparison",
                    "fig9_fixed16_sdc", "fig10_bound_tradeoff",
                    "fig11_multibit_classifiers", "fig12_multibit_steering",
                    "table2_accuracy", "table3_insertion_time",
                    "table4_flops_overhead", "table6_technique_comparison",
                    "sec6c_design_alternatives", "memory_overhead"}
        assert expected <= set(EXPERIMENT_REGISTRY)

    def test_run_all_rejects_unknown(self, smoke_scale):
        with pytest.raises(ValueError):
            run_all_experiments(smoke_scale, only=["fig99"], verbose=False)

    def test_markdown_rendering(self, smoke_scale):
        result = run_table3_insertion_time(smoke_scale)
        text = results_to_markdown([result])
        assert "Table III" in text and "```" in text


class TestFig4:
    def test_convergence_reaches_one(self, smoke_scale):
        result = run_fig4_bound_convergence(smoke_scale, model_name="lenet",
                                            fractions=(0.25, 0.5, 1.0))
        for curve in result.data["curves"].values():
            assert curve[-1] == pytest.approx(1.0)
        assert result.data["mean_curve"][-1] == pytest.approx(1.0)


class TestFig6AndFig7:
    def test_ranger_reduces_classifier_sdc(self, smoke_scale):
        result = run_fig6_classifier_sdc(smoke_scale)
        for model_data in result.data.values():
            for criterion, original in model_data["original"].items():
                assert model_data["ranger"][criterion] <= original + 1e-9

    def test_ranger_reduces_steering_sdc(self, smoke_scale):
        result = run_fig7_steering_sdc(smoke_scale)
        for model_data in result.data.values():
            for criterion, original in model_data["original"].items():
                assert model_data["ranger"][criterion] <= original + 1e-9

    def test_steering_sdc_decreases_with_threshold(self, smoke_scale):
        result = run_fig7_steering_sdc(smoke_scale)
        for model_data in result.data.values():
            originals = list(model_data["original"].values())
            # SDC rate at a stricter (larger) threshold can never exceed the
            # rate at a looser one.
            assert all(originals[i] >= originals[i + 1] - 1e-9
                       for i in range(len(originals) - 1))


class TestTables:
    def test_table2_ranger_preserves_accuracy(self, smoke_scale):
        result = run_table2_accuracy(smoke_scale)
        for model_name, entry in result.data.items():
            for metric, before in entry["without"].items():
                after = entry["with"][metric]
                if metric in ("top1", "top5"):
                    assert after >= before - 0.02
                else:  # regression errors may not get meaningfully worse
                    assert after <= before * 1.05 + 1e-6

    def test_table3_insertion_times_are_fast(self, smoke_scale):
        result = run_table3_insertion_time(smoke_scale)
        assert all(seconds < 5.0 for seconds in result.data.values())

    def test_table4_overhead_is_small(self, smoke_scale):
        result = run_table4_flops_overhead(smoke_scale)
        assert result.data["average_overhead_percent"] < 5.0


class TestDiscussionExperiments:
    def test_fig10_tighter_bounds_do_not_increase_sdc(self, smoke_scale):
        result = run_fig10_bound_tradeoff(smoke_scale,
                                          percentiles=(100.0, 99.0))
        sdc = result.data["sdc"]
        # Protected configurations never exceed the unprotected SDC rate.
        original_avg = np.mean(list(sdc["original"].values()))
        for label, rates in sdc.items():
            if label == "original":
                continue
            assert np.mean(list(rates.values())) <= original_avg + 1e-9

    def test_fig11_multibit_reports_all_bit_counts(self, smoke_scale):
        result = run_fig11_multibit_classifiers(smoke_scale,
                                                bit_counts=(2, 3),
                                                models=("lenet",))
        assert result.data["bit_counts"] == [2, 3]
        series = result.data["models"]["lenet"]
        assert len(series["original"]) == 2
        assert all(r <= o + 1e-9 for o, r in zip(series["original"],
                                                 series["ranger"]))

    def test_sec6c_zero_policy_hurts_accuracy_vs_clip(self, smoke_scale):
        result = run_sec6c_design_alternatives(smoke_scale,
                                               model_name="lenet",
                                               policies=("clip", "zero"))
        clip_acc = result.data["clip"]["accuracy"]
        zero_acc = result.data["zero"]["accuracy"]
        baseline = result.data["clip"]["baseline_accuracy"]
        # Clipping must preserve accuracy; zero-reset may degrade it and must
        # never do better than clipping by a meaningful margin.
        assert clip_acc >= baseline - 0.02
        assert zero_acc <= clip_acc + 0.02
