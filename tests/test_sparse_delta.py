"""Equivalence suite for sparse elementwise delta propagation.

PR 6 teaches the replay engine to carry the dirty frontier as a per-row
sparse delta (flat indices + new values on top of the golden cache)
instead of dense replacement rows: elementwise-exact operators apply
their forward to just the changed elements, index-remap operators
(reshape / flatten / concat) relocate the indices without touching
values, and the first non-elementwise consumer scatters the delta into a
dense copy and proceeds as before.  The guarantees under test:

1. **Bit-identity with the dense incremental path.**  A sparse seed at a
   node is indistinguishable from installing the equivalent dense
   override — outputs, fault records and verdicts match byte-for-byte in
   batch-1 replays (EXACT mode included), across the zoo subset ×
   {fixed16, fixed32} × {unprotected, Ranger}.
2. **The density threshold is a fallback, not a cliff.**  Deltas denser
   than ``SPARSE_DENSITY_THRESHOLD`` densify immediately and the replay
   still matches the dense path bit-for-bit.
3. **Index remaps relocate deltas exactly** through reshape/flatten
   (identity remap) and feature-axis concat (offset remap).
4. **Densify-then-resparsify** survives model-scale skip connections:
   on ResNet-18 the sparse path re-engages after every convolution and
   the campaign verdicts match the dense path.
5. **Accounting is additive and honest.**  ``elements_evaluated`` /
   ``elements_full`` / ``dense_fallback_nodes`` merge across shards,
   surface in ``summary()``, and stay zero on legacy dense runs.
"""

import numpy as np
import pytest

from repro import ops
from repro.core import Ranger
from repro.graph import (
    SPARSE_DENSITY_THRESHOLD,
    SPARSE_MIN_GAIN_ELEMENTS,
    EquivalenceMode,
    Executor,
    Graph,
    GraphError,
    SparseRows,
)
from repro.injection import (
    CampaignResult,
    FaultInjectionCampaign,
    FaultInjector,
    SingleBitFlip,
    trial_rng,
)
from repro.injection.injector import InjectionPlan
from repro.models import prepare_model
from repro.quantization import FIXED32, fixed16_policy, fixed32_policy

ZOO_SUBSET = ("lenet", "squeezenet")
TRIALS = 32
DTYPE_POLICIES = {"fixed16": fixed16_policy, "fixed32": fixed32_policy}

# 64-element rows: a 1-element delta sits at 1.6% density, far under the
# 12.5% threshold, so the sparse path engages on every hand-built graph.
# (The mechanics tests zero the executor's cost-model floor,
# ``sparse_min_gain_elements`` — production replays only go sparse when
# the displaced dense work is large enough to amortize the bookkeeping,
# and 64-element rows never are.)
WIDTH = 64


def sparse_executor(graph):
    """An executor with the sparse cost-model floor disabled, so the
    sparse path engages on WIDTH-element rows."""
    executor = Executor(graph)
    executor.sparse_min_gain_elements = 0
    return executor


@pytest.fixture(scope="module", params=ZOO_SUBSET)
def subset_prepared(request):
    return prepare_model(request.param, train=False, seed=1)


@pytest.fixture(scope="module")
def resnet_prepared():
    return prepare_model("resnet18", train=False, seed=1)


def feed_vector(seed=0):
    rng = np.random.default_rng(seed)
    return {"x": rng.normal(size=(1, WIDTH))}


def elementwise_chain():
    """x -> scale -> relu -> scale -> out: every hop is elementwise."""
    g = Graph("sparse-chain")
    g.add("x", ops.Placeholder(name="x", shape=(WIDTH,)))
    g.add("a", ops.Scale(1.5), inputs=["x"])
    g.add("b", ops.ReLU(), inputs=["a"])
    g.add("c", ops.Scale(0.5), inputs=["b"])
    g.add("out", ops.Identity(), inputs=["c"])
    g.mark_output("out")
    return g


def remap_graph():
    """Reshape and a feature-axis concat between the entry and the output:
    the delta must ride both index remaps without densifying."""
    g = Graph("sparse-remap")
    g.add("x", ops.Placeholder(name="x", shape=(WIDTH,)))
    g.add("left", ops.Scale(2.0), inputs=["x"])
    g.add("grid", ops.Reshape((8, 8)), inputs=["left"])
    g.add("flat", ops.Flatten(), inputs=["grid"])
    g.add("right", ops.Scale(-1.0), inputs=["x"])
    g.add("join", ops.Concatenate(axis=-1), inputs=["flat", "right"])
    g.add("out", ops.ReLU(), inputs=["join"])
    g.mark_output("out")
    return g


def densify_graph():
    """An elementwise prefix feeding a softmax: softmax is not
    elementwise-exact, so the delta must densify exactly there."""
    g = Graph("sparse-densify")
    g.add("x", ops.Placeholder(name="x", shape=(WIDTH,)))
    g.add("a", ops.Scale(1.25), inputs=["x"])
    g.add("b", ops.ReLU(), inputs=["a"])
    g.add("soft", ops.Softmax(), inputs=["b"])
    g.add("out", ops.Identity(), inputs=["soft"])
    g.mark_output("out")
    return g


def sparse_vs_dense(graph, name, indices, deltas, feed):
    """Replay one corruption both ways and return the two results.

    ``indices``/``deltas`` describe the sparse seed; the dense reference
    installs the equivalent full override via ``dirty_values``.
    """
    executor = sparse_executor(graph)
    cache = executor.run(feed).values
    golden = np.asarray(cache[name])
    idx = np.asarray(indices, dtype=np.int64)
    vals = np.asarray(deltas, dtype=np.float64)
    dense = np.array(golden)
    dense.reshape(-1)[idx] = vals
    sparse = executor.run_from(cache, dirty_deltas={name: (idx, vals)})
    reference = executor.run_from(cache, dirty_values={name: dense})
    return sparse, reference


class TestRunFromSparse:
    def test_chain_bit_identical_and_sparse_engaged(self):
        sparse, reference = sparse_vs_dense(
            elementwise_chain(), "a", [3, 17, 40], [9.0, -8.0, 2.5],
            feed_vector())
        assert sparse.output("out").tobytes() == \
            reference.output("out").tobytes()
        # 3 of 64 elements per elementwise hop, never densified.
        assert sparse.dense_fallback_nodes == 0
        assert 0 < sparse.elements_evaluated < sparse.elements_full

    def test_masked_delta_terminates_without_densifying(self):
        """A delta the ReLU squashes retires via the O(changed) bitwise
        comparison: nothing downstream of the relu re-evaluates."""
        graph = elementwise_chain()
        feed = feed_vector()
        executor = sparse_executor(graph)
        cache = executor.run(feed).values
        golden = np.asarray(cache["a"]).reshape(-1)
        index = int(np.argmin(golden))
        assert golden[index] < 0.0
        result = executor.run_from(
            cache, dirty_deltas={"a": (np.array([index]),
                                       np.array([golden[index] - 5.0]))})
        assert result.output("out").tobytes() == \
            np.asarray(cache["out"]).tobytes()
        assert "c" not in result.recomputed
        assert result.dense_fallback_nodes == 0

    def test_remap_graph_bit_identical(self):
        sparse, reference = sparse_vs_dense(
            remap_graph(), "left", [0, 13, 63], [4.0, -7.0, 1.0],
            feed_vector(1))
        assert sparse.output("out").tobytes() == \
            reference.output("out").tobytes()
        assert sparse.dense_fallback_nodes == 0

    def test_concat_offsets_second_input(self):
        sparse, reference = sparse_vs_dense(
            remap_graph(), "right", [5, 20], [3.5, -2.0], feed_vector(2))
        assert sparse.output("out").tobytes() == \
            reference.output("out").tobytes()
        assert sparse.dense_fallback_nodes == 0

    def test_densifying_op_scatters_once(self):
        sparse, reference = sparse_vs_dense(
            densify_graph(), "a", [10], [50.0], feed_vector(3))
        assert sparse.output("out").tobytes() == \
            reference.output("out").tobytes()
        assert sparse.dense_fallback_nodes == 1

    def test_density_threshold_falls_back_dense(self):
        """A delta over the density threshold densifies immediately and
        still matches the dense path bit-for-bit."""
        nnz = int(SPARSE_DENSITY_THRESHOLD * WIDTH) + 4
        rng = np.random.default_rng(9)
        idx = np.sort(rng.choice(WIDTH, size=nnz, replace=False))
        vals = rng.normal(size=nnz) + 10.0
        sparse, reference = sparse_vs_dense(
            elementwise_chain(), "a", idx, vals, feed_vector(4))
        assert sparse.output("out").tobytes() == \
            reference.output("out").tobytes()
        assert sparse.dense_fallback_nodes >= 1

    def test_min_gain_floor_gates_small_rows_dense(self):
        """The cost-model floor: on rows smaller than
        ``sparse_min_gain_elements`` the executor materializes the seed and
        replays dense (the bookkeeping would cost more than it saves), with
        byte-identical outputs either way."""
        assert SPARSE_MIN_GAIN_ELEMENTS > WIDTH
        graph = elementwise_chain()
        feed = feed_vector(8)
        executor = Executor(graph)  # default floor stays in force
        cache = executor.run(feed).values
        seed = {"a": (np.array([3]), np.array([42.0]))}
        gated = executor.run_from(cache, dirty_deltas=seed)
        executor.sparse_min_gain_elements = 0
        sparse = executor.run_from(cache, dirty_deltas=seed)
        assert gated.output("out").tobytes() == sparse.output("out").tobytes()
        # Gated replay evaluated every element it touched densely; the
        # ungated one skipped most of each row.
        assert gated.dense_fallback_nodes == 1
        assert gated.elements_evaluated == gated.elements_full > 0
        assert sparse.dense_fallback_nodes == 0
        assert sparse.elements_evaluated < sparse.elements_full

    def test_min_gain_floor_gates_batched_rows_dense(self):
        graph = elementwise_chain()
        feed = feed_vector(9)
        executor = Executor(graph)
        cache = executor.run(feed).values
        sp = SparseRows(2, np.array([0, 1]), np.array([4, 9]),
                        np.array([11.0, -3.0]))
        gated = executor.run_from_batched(
            cache, dirty_row_deltas={"a": sp},
            equivalence=EquivalenceMode.EXACT)
        executor.sparse_min_gain_elements = 0
        sparse = executor.run_from_batched(
            cache, dirty_row_deltas={"a": sp},
            equivalence=EquivalenceMode.EXACT)
        assert gated.output("out").tobytes() == sparse.output("out").tobytes()
        assert sparse.elements_evaluated < gated.elements_evaluated

    def test_delta_landing_on_golden_bits_is_pruned(self):
        graph = elementwise_chain()
        feed = feed_vector()
        executor = sparse_executor(graph)
        cache = executor.run(feed).values
        golden = np.asarray(cache["a"]).reshape(-1)
        result = executor.run_from(
            cache, dirty_deltas={"a": (np.array([2, 7]), golden[[2, 7]])})
        assert not result.recomputed
        assert result.output("out").tobytes() == \
            np.asarray(cache["out"]).tobytes()

    def test_seed_validation(self):
        graph = elementwise_chain()
        executor = Executor(graph)
        cache = executor.run(feed_vector()).values
        with pytest.raises(GraphError, match="strictly increasing"):
            executor.run_from(cache, dirty_deltas={
                "a": (np.array([5, 5]), np.array([1.0, 2.0]))})
        with pytest.raises(GraphError, match="strictly increasing"):
            executor.run_from(cache, dirty_deltas={
                "a": (np.array([0, WIDTH]), np.array([1.0, 2.0]))})
        with pytest.raises(GraphError, match="both dirty_values"):
            executor.run_from(
                cache,
                dirty_values={"a": np.ones((1, WIDTH))},
                dirty_deltas={"a": (np.array([0]), np.array([1.0]))})

    def test_hooks_force_dense_but_stay_bit_identical(self):
        """Output hooks disable the sparse fast path; the fallback must
        densify the seeds up front and still match."""
        graph = elementwise_chain()
        feed = feed_vector(5)
        executor = Executor(graph)
        cache = executor.run(feed).values
        reference = sparse_vs_dense(graph, "a", [8], [123.0], feed)[1]
        hooked = Executor(graph)
        hooked.add_output_hook(lambda node, value: value)
        hooked_cache = hooked.run(feed).values
        result = hooked.run_from(
            hooked_cache,
            dirty_deltas={"a": (np.array([8]), np.array([123.0]))})
        assert result.output("out").tobytes() == \
            reference.output("out").tobytes()
        assert result.elements_full == 0  # sparse path never engaged


class TestRunFromBatchedSparse:
    def test_batched_sparse_matches_batched_dense(self):
        """Three rows with different sparse seeds: byte-equal to stacking
        the equivalent dense rows (all-elementwise graph, EXACT mode)."""
        graph = elementwise_chain()
        feed = feed_vector(6)
        executor = sparse_executor(graph)
        cache = executor.run(feed).values
        golden = np.asarray(cache["a"]).reshape(-1)
        rows = np.array([0, 0, 1, 2])
        idx = np.array([4, 30, 11, 60])
        vals = np.array([9.0, -9.0, 77.0, 0.25])
        sp = SparseRows(3, rows, idx, vals)
        dense = np.broadcast_to(golden, (3, WIDTH)).copy()
        dense[rows, idx] = vals
        sparse = executor.run_from_batched(
            cache, dirty_row_deltas={"a": sp},
            equivalence=EquivalenceMode.EXACT)
        reference = executor.run_from_batched(
            cache, stacked_dirty_values={"a": dense},
            equivalence=EquivalenceMode.EXACT)
        assert sparse.output("out").tobytes() == \
            reference.output("out").tobytes()
        assert sparse.dense_fallback_nodes == 0
        assert 0 < sparse.elements_evaluated < sparse.elements_full

    def test_sparse_and_dense_rows_mix_in_one_batch(self):
        """Row 0 seeds sparse at 'a', row 1 seeds dense at 'c': the two
        representations must coexist without cross-talk."""
        graph = elementwise_chain()
        feed = feed_vector(7)
        executor = sparse_executor(graph)
        cache = executor.run(feed).values
        golden_a = np.asarray(cache["a"]).reshape(-1)
        golden_c = np.asarray(cache["c"])
        dense_c = np.array(golden_c)
        dense_c.reshape(-1)[50] = -41.0
        sp = SparseRows(2, np.array([0]), np.array([12]), np.array([5.5]))
        result = executor.run_from_batched(
            cache, dirty_row_deltas={"a": sp},
            stacked_dirty_values={"c": dense_c},
            dirty_row_masks={"c": np.array([False, True])},
            equivalence=EquivalenceMode.EXACT)
        row0 = executor.run_from(
            cache, dirty_deltas={"a": (np.array([12]), np.array([5.5]))})
        row1 = executor.run_from(cache, dirty_values={"c": dense_c})
        stacked = result.output("out")
        assert stacked[0].tobytes() == row0.output("out")[0].tobytes()
        assert stacked[1].tobytes() == row1.output("out")[0].tobytes()

    def test_conflicting_entries_are_refused(self):
        graph = elementwise_chain()
        executor = Executor(graph)
        cache = executor.run(feed_vector()).values
        sp = SparseRows(2, np.array([0]), np.array([1]), np.array([2.0]))
        with pytest.raises(GraphError, match="both"):
            executor.run_from_batched(
                cache, dirty_row_deltas={"a": sp},
                stacked_dirty_values={"a": np.ones((1, WIDTH))},
                dirty_row_masks={"a": np.array([True, False])})

    def test_batch_invariant_sparse_entry_is_refused(self):
        g = Graph("invariant")
        g.add("x", ops.Placeholder(name="x", shape=(3,)))
        g.add("w", ops.Variable(np.array([1.0, 2.0, 3.0]), name="w"))
        g.add("sum", ops.Add(), inputs=["x", "w"])
        g.mark_output("sum")
        executor = Executor(g)
        cache = executor.run({"x": np.ones((1, 3))}).values
        sp = SparseRows(2, np.array([0]), np.array([1]), np.array([9.0]))
        with pytest.raises(GraphError, match="batch-invariant"):
            executor.run_from_batched(cache, dirty_row_deltas={"w": sp})


class TestInjectorSparseSeeding:
    def test_sparse_replay_is_bit_identical(self, untrained_lenet):
        """inject_cached with sparse_delta=True: same fault records, same
        output bytes as the dense replay, for every site."""
        model = untrained_lenet.model
        injector = FaultInjector(model, SingleBitFlip(FIXED32), seed=3)
        x = untrained_lenet.dataset.x_val[:1]
        sizes = injector.profile_state_space(x)
        executor = model.executor()
        cache = executor.run({model.input_name: x},
                             outputs=[model.output_name]).values
        names = list(sizes)
        for site in (names[0], names[len(names) // 2], names[-1]):
            for trial in range(4):
                plan = InjectionPlan(sites=[(site, trial * 13)])
                out_s, faults_s, res_s = injector.inject_cached(
                    executor, cache, plan, rng=trial_rng(11, trial),
                    sparse_delta=True)
                out_d, faults_d, _ = injector.inject_cached(
                    executor, cache, plan, rng=trial_rng(11, trial),
                    sparse_delta=False)
                assert faults_s == faults_d, (site, trial)
                assert np.asarray(out_s).tobytes() == \
                    np.asarray(out_d).tobytes(), (site, trial)

    def test_same_element_double_flip_compounds(self, untrained_lenet):
        """Two flips at one element consume RNG in site order and compound
        on the running value — exactly like the dense `_corrupt_flat`."""
        model = untrained_lenet.model
        injector = FaultInjector(model, SingleBitFlip(FIXED32), seed=3)
        x = untrained_lenet.dataset.x_val[:1]
        sizes = injector.profile_state_space(x)
        executor = model.executor()
        cache = executor.run({model.input_name: x},
                             outputs=[model.output_name]).values
        site = list(sizes)[0]
        size = sizes[site]
        # element + size wraps onto the same flat index as element.
        plan = InjectionPlan(sites=[(site, 5), (site, 5 + size)])
        out_s, faults_s, _ = injector.inject_cached(
            executor, cache, plan, rng=trial_rng(2, 0), sparse_delta=True)
        out_d, faults_d, _ = injector.inject_cached(
            executor, cache, plan, rng=trial_rng(2, 0), sparse_delta=False)
        assert faults_s == faults_d
        assert len(faults_s) == 2
        assert faults_s[1].original == faults_s[0].corrupted
        assert np.asarray(out_s).tobytes() == np.asarray(out_d).tobytes()


class TestZooSparseEquivalence:
    @pytest.mark.parametrize("dtype_name", sorted(DTYPE_POLICIES))
    @pytest.mark.parametrize("use_ranger", [False, True],
                             ids=["unprotected", "ranger"])
    def test_sparse_matches_dense_incremental(self, subset_prepared,
                                              dtype_name, use_ranger):
        """Serial (batch-1) campaigns: fault records and verdicts must be
        bit-identical with sparse deltas on; batched campaigns must agree
        on verdicts and fault records under the shared packing."""
        prepared = subset_prepared
        model = prepared.model
        if use_ranger:
            sample, _ = prepared.dataset.sample_train(4, seed=0)
            model, _ = Ranger(seed=0).protect(prepared.model,
                                              profile_inputs=sample)
        policy = DTYPE_POLICIES[dtype_name]()
        inputs = prepared.dataset.x_val[:2]

        def build():
            campaign = FaultInjectionCampaign(model, inputs,
                                              dtype_policy=policy, seed=0)
            # Zero the cost-model floor: these models' rows are small
            # enough that production replays would (correctly) stay dense,
            # but this test pins the sparse mechanics themselves.
            campaign._executor.sparse_min_gain_elements = 0
            return campaign

        serial = build()
        plans = serial.generate_plans(TRIALS)
        dense = serial.run(plans=plans, keep_faults=True, sparse_delta=False)
        sparse = build().run(plans=plans, keep_faults=True, sparse_delta=True)
        assert sparse.sdc_counts == dense.sdc_counts
        assert sparse.faults == dense.faults
        assert sparse.equivalence == "exact"
        assert sparse.elements_full > 0
        assert sparse.elements_evaluated < sparse.elements_full
        assert dense.elements_full == 0  # legacy path: counters stay zero
        batched = build().run(plans=plans, keep_faults=True, batch_trials=16,
                              sparse_delta=True)
        assert batched.sdc_counts == dense.sdc_counts
        assert batched.faults == dense.faults

    def test_resnet_skip_connections_resparsify(self, resnet_prepared):
        """Model-scale densify-then-resparsify: the delta densifies at
        every conv, re-sparsifies behind it, and the verdicts still match
        the dense batched path."""
        prepared = resnet_prepared
        inputs = prepared.dataset.x_val[:2]

        def build():
            campaign = FaultInjectionCampaign(prepared.model, inputs,
                                              dtype_policy=fixed32_policy(),
                                              seed=0)
            campaign._executor.sparse_min_gain_elements = 0
            return campaign

        serial = build()
        plans = serial.generate_plans(24)
        dense = serial.run(plans=plans, keep_faults=True, batch_trials=8,
                           sparse_delta=False)
        sparse = build().run(plans=plans, keep_faults=True, batch_trials=8,
                             sparse_delta=True)
        assert sparse.sdc_counts == dense.sdc_counts
        assert sparse.faults == dense.faults
        # The sparse path re-engaged after densifying convolutions: work
        # was skipped AND dense fallbacks happened.
        assert sparse.dense_fallback_nodes > 0
        assert sparse.sparse_evaluated_fraction is not None
        assert sparse.sparse_evaluated_fraction > 0.1

    def test_workers_carry_sparse_counters(self, untrained_lenet):
        inputs, _ = untrained_lenet.correctly_predicted_inputs(2, seed=0)

        def build():
            return FaultInjectionCampaign(untrained_lenet.model, inputs,
                                          seed=0)

        serial = build()
        plans = serial.generate_plans(16)
        reference = serial.run(plans=plans, keep_faults=True)
        fanned = build().run(plans=plans, keep_faults=True, workers=2)
        assert fanned.sdc_counts == reference.sdc_counts
        assert fanned.faults == reference.faults
        assert fanned.elements_full == reference.elements_full
        assert fanned.elements_evaluated == reference.elements_evaluated


class TestSparseAccounting:
    def test_merge_adds_element_counters(self):
        shard = CampaignResult(model_name="m", fault_model="f", trials=10,
                               sdc_counts={"top1": 1},
                               equivalence="exact",
                               elements_evaluated=100, elements_full=1000,
                               dense_fallback_nodes=3)
        merged = CampaignResult.merge([shard, shard])
        assert merged.elements_evaluated == 200
        assert merged.elements_full == 2000
        assert merged.dense_fallback_nodes == 6
        assert merged.sparse_evaluated_fraction == pytest.approx(0.9)

    def test_summary_reports_sparse_line(self):
        result = CampaignResult(model_name="m", fault_model="f", trials=10,
                                sdc_counts={"top1": 1},
                                equivalence="exact",
                                elements_evaluated=250, elements_full=1000,
                                dense_fallback_nodes=2)
        text = result.summary()
        assert "sparse deltas" in text
        assert "75.0%" in text

    def test_dense_runs_report_no_sparse_line(self, untrained_lenet):
        inputs, _ = untrained_lenet.correctly_predicted_inputs(2, seed=0)
        campaign = FaultInjectionCampaign(untrained_lenet.model, inputs,
                                          seed=0)
        result = campaign.run(trials=5, sparse_delta=False)
        assert result.elements_full == 0
        assert result.sparse_evaluated_fraction is None
        assert "sparse deltas" not in result.summary()
