"""Equivalence suite for the batched multi-trial replay engine.

``run(batch_trials=B)`` stacks trials that share an (input, fault-node set)
into one batched partial re-execution.  The guarantees under test:

1. **Trial identity is exact.**  Batched trials keep their per-trial RNG
   streams, so the applied-fault records are *bit-identical* to the
   incremental path for every batch width, and batching composes with
   ``workers=N`` sharding and with paired comparisons.
2. **Verdict sets agree under ULP_TOLERANT.**  Batched outputs may differ
   from batch-1 replays in the last ULPs (BLAS batch-shape instability),
   but every trial's SDC verdict — and therefore every per-criterion count
   — matches the bit-exact incremental reference across the zoo subset,
   datatypes and protection variants.
3. **The default stays bit-exact.**  ``batch_trials=1`` runs the unchanged
   incremental path and carries the EXACT equivalence mode; requesting
   EXACT together with ``batch_trials > 1`` is refused.
4. **Results carry their tolerance.**  Batched results report the
   ULP_TOLERANT mode and the maximum deviation consumed by row masking;
   merge() refuses to mix guarantees.
"""

import numpy as np
import pytest

from repro.core import Ranger
from repro.injection import (
    CampaignResult,
    EquivalenceMode,
    FaultInjectionCampaign,
    FaultInjector,
    MultiBitFlip,
    SingleBitFlip,
    compare_protection,
    trial_rng,
)
from repro.injection.injector import InjectionPlan
from repro.models import prepare_model
from repro.quantization import FIXED16, FIXED32, fixed16_policy

ZOO_SUBSET = ("lenet", "squeezenet")
TRIALS = 24
BATCH_WIDTHS = (2, 4, 16)


@pytest.fixture(scope="module", params=ZOO_SUBSET)
def subset_prepared(request):
    return prepare_model(request.param, train=False, seed=1)


class TestVerdictAgreement:
    @pytest.mark.parametrize("use_fixed_point", [False, True],
                             ids=["float64", "fixed16"])
    @pytest.mark.parametrize("use_ranger", [False, True],
                             ids=["unprotected", "ranger"])
    def test_batched_counts_and_faults_match_incremental(
            self, subset_prepared, use_fixed_point, use_ranger):
        prepared = subset_prepared
        model = prepared.model
        if use_ranger:
            sample, _ = prepared.dataset.sample_train(4, seed=0)
            model, _ = Ranger(seed=0).protect(prepared.model,
                                              profile_inputs=sample)
        dtype_policy = fixed16_policy() if use_fixed_point else None
        inputs = prepared.dataset.x_val[:2]

        def build():
            return FaultInjectionCampaign(model, inputs,
                                          fault_model=SingleBitFlip(FIXED16),
                                          dtype_policy=dtype_policy, seed=0)

        serial = build()
        plans = serial.generate_plans(TRIALS)
        reference = serial.run(plans=plans, keep_faults=True)
        assert reference.equivalence == "exact"
        for width in BATCH_WIDTHS:
            result = build().run(plans=plans, keep_faults=True,
                                 batch_trials=width)
            assert result.equivalence == "ulp_tolerant"
            # Identical SDC verdict sets (per-criterion counts) ...
            assert result.sdc_counts == reference.sdc_counts, width
            # ... and bit-identical fault records: batching never changes
            # which bits land where.
            assert result.faults == reference.faults, width
            assert result.trials == reference.trials

    def test_trialwise_outputs_agree_on_argmax(self, lenet_prepared):
        """Row i of a batched replay and trial i's batch-1 replay agree."""
        prepared = lenet_prepared
        model = prepared.model
        injector = FaultInjector(model, SingleBitFlip(FIXED32), seed=3)
        x = prepared.dataset.x_val[:1]
        sizes = injector.profile_state_space(x)
        executor = model.executor()
        cache = executor.run({model.input_name: x},
                             outputs=[model.output_name]).values
        names = list(sizes)
        for site in (names[0], names[len(names) // 2], names[-1]):
            plans = [InjectionPlan(sites=[(site, element)])
                     for element in range(0, sizes[site],
                                          max(1, sizes[site] // 5))]
            rngs = [trial_rng(11, index) for index in range(len(plans))]
            stacked, batch_faults, _ = injector.inject_cached_batch(
                executor, cache, plans, rngs)
            for row, plan in enumerate(plans):
                out, faults, _ = injector.inject_cached(
                    executor, cache, plan, rng=trial_rng(11, row))
                assert faults == batch_faults[row]
                assert np.argmax(stacked[row]) == np.argmax(out)
                np.testing.assert_allclose(stacked[row], out[0],
                                           rtol=1e-12, atol=1e-15)

    def test_multibit_batches_match_incremental(self, lenet_prepared):
        """Multi-site plans batch too; overlapping ones fall back cleanly."""
        inputs, _ = lenet_prepared.correctly_predicted_inputs(2, seed=0)

        def build():
            return FaultInjectionCampaign(lenet_prepared.model, inputs,
                                          fault_model=MultiBitFlip(3, FIXED32),
                                          seed=0)

        serial = build()
        plans = serial.generate_plans(16)
        reference = serial.run(plans=plans, keep_faults=True)
        result = build().run(plans=plans, keep_faults=True, batch_trials=4)
        assert result.sdc_counts == reference.sdc_counts
        assert result.faults == reference.faults


class TestComposition:
    def test_batched_composes_with_workers(self, lenet_prepared):
        inputs, _ = lenet_prepared.correctly_predicted_inputs(3, seed=0)

        def build():
            return FaultInjectionCampaign(lenet_prepared.model, inputs, seed=0)

        serial = build()
        plans = serial.generate_plans(20)
        reference = serial.run(plans=plans, keep_faults=True, batch_trials=4)
        fanned = build().run(plans=plans, keep_faults=True, batch_trials=4,
                             workers=2)
        assert fanned.sdc_counts == reference.sdc_counts
        assert fanned.faults == reference.faults
        assert fanned.equivalence == "ulp_tolerant"

    def test_compare_protection_stays_paired_when_batched(
            self, lenet_prepared, lenet_protected):
        protected, _ = lenet_protected
        inputs, _ = lenet_prepared.correctly_predicted_inputs(4, seed=0)
        serial = compare_protection(lenet_prepared.model, protected, inputs,
                                    trials=20, seed=3)
        batched = compare_protection(lenet_prepared.model, protected, inputs,
                                     trials=20, seed=3, batch_trials=4)
        for reference, result in zip(serial, batched):
            assert result.sdc_counts == reference.sdc_counts
            assert result.trials == reference.trials

    def test_grouping_preserves_trial_positions(self, lenet_prepared):
        inputs, _ = lenet_prepared.correctly_predicted_inputs(3, seed=0)
        campaign = FaultInjectionCampaign(lenet_prepared.model, inputs, seed=0)
        plans = campaign.generate_plans(30)
        batches, fallback = campaign.group_batches(plans, batch_trials=4)
        positions = sorted(position for _, chunk in batches
                           for position in chunk) + sorted(fallback)
        assert sorted(positions) == list(range(30))
        for input_index, chunk in batches:
            assert len(chunk) <= 4
            node_sets = {frozenset(plans[p][1].node_names()) for p in chunk}
            assert len(node_sets) == 1  # one fault-node set per batch
            assert all(plans[p][0] == input_index for p in chunk)


class TestGuarantScaffolding:
    def test_exact_with_batching_is_refused(self, lenet_prepared):
        inputs, _ = lenet_prepared.correctly_predicted_inputs(2, seed=0)
        campaign = FaultInjectionCampaign(lenet_prepared.model, inputs, seed=0)
        with pytest.raises(ValueError, match="EXACT"):
            campaign.run(trials=4, batch_trials=2, equivalence="exact")
        with pytest.raises(ValueError, match="incremental"):
            campaign.run(trials=4, batch_trials=2, incremental=False)
        with pytest.raises(ValueError, match="batch_trials"):
            campaign.run(trials=4, batch_trials=0)

    def test_default_path_reports_exact(self, lenet_prepared):
        inputs, _ = lenet_prepared.correctly_predicted_inputs(2, seed=0)
        campaign = FaultInjectionCampaign(lenet_prepared.model, inputs, seed=0)
        result = campaign.run(trials=5)
        assert result.equivalence == EquivalenceMode.EXACT.value
        assert result.max_ulp_deviation == 0.0
        assert "equivalence: exact" in result.summary()

    def test_batched_summary_reports_tolerance(self, lenet_prepared):
        inputs, _ = lenet_prepared.correctly_predicted_inputs(2, seed=0)
        campaign = FaultInjectionCampaign(lenet_prepared.model, inputs, seed=0)
        result = campaign.run(trials=8, batch_trials=4)
        assert result.equivalence == "ulp_tolerant"
        text = result.summary()
        assert "equivalence: ulp_tolerant" in text
        assert "max observed deviation" in text

    def test_merge_refuses_mixed_guarantees(self):
        exact = CampaignResult(model_name="m", fault_model="f", trials=5,
                               sdc_counts={"top1": 1})
        tolerant = CampaignResult(model_name="m", fault_model="f", trials=5,
                                  sdc_counts={"top1": 2},
                                  equivalence="ulp_tolerant",
                                  max_ulp_deviation=3.0)
        with pytest.raises(ValueError, match="equivalence"):
            CampaignResult.merge([exact, tolerant])
        merged = CampaignResult.merge([tolerant, tolerant])
        assert merged.equivalence == "ulp_tolerant"
        assert merged.max_ulp_deviation == 3.0

    def test_equivalence_mode_coercion(self):
        assert EquivalenceMode.coerce(None, EquivalenceMode.EXACT) \
            is EquivalenceMode.EXACT
        assert EquivalenceMode.coerce("ULP_TOLERANT", EquivalenceMode.EXACT) \
            is EquivalenceMode.ULP_TOLERANT
        assert EquivalenceMode.coerce(EquivalenceMode.ULP_TOLERANT,
                                      EquivalenceMode.EXACT) \
            is EquivalenceMode.ULP_TOLERANT
        with pytest.raises(ValueError, match="unknown equivalence"):
            EquivalenceMode.coerce("approximate", EquivalenceMode.EXACT)


class TestVectorizedCriteria:
    """is_sdc_rows must agree with the scalar is_sdc on every row."""

    def test_topk_rows_match_scalar_including_ties(self):
        from repro.injection import TopKMisclassification

        rng = np.random.default_rng(0)
        golden = rng.random((1, 8))
        rows = rng.random((64, 8))
        # Inject ties on a fraction of rows to exercise argsort tie-breaking.
        golden_label = int(np.argmax(golden))
        rows[::5, golden_label] = rows[::5].max(axis=1)
        rows[::7, (golden_label + 3) % 8] = rows[::7, golden_label]
        for k in (1, 2, 5):
            criterion = TopKMisclassification(k=k)
            vector = criterion.is_sdc_rows(golden, rows)
            scalar = [criterion.is_sdc(golden, rows[i:i + 1])
                      for i in range(len(rows))]
            assert vector.tolist() == scalar, k

    def test_topk_tie_parity_beyond_introsort_stability(self):
        """Ties in wide outputs: scalar and vectorized paths must agree.

        np.argsort's default kind is only incidentally stable below ~16
        elements; the scalar path pins kind="stable" so tied grid values
        (routine under fixed-point quantization) rank identically in both
        paths for any class count.
        """
        from repro.injection import TopKMisclassification

        rng = np.random.default_rng(5)
        classes = 64
        for trial in range(200):
            golden = rng.random((1, classes))
            # Quantize onto a coarse grid to force many exact ties.
            rows = np.round(rng.random((8, classes)) * 4.0) / 4.0
            for k in (2, 5, 10):
                criterion = TopKMisclassification(k=k)
                vector = criterion.is_sdc_rows(golden, rows)
                scalar = [criterion.is_sdc(golden, rows[i:i + 1])
                          for i in range(len(rows))]
                assert vector.tolist() == scalar, (trial, k)

    def test_steering_rows_match_scalar(self):
        from repro.injection import SteeringDeviation

        rng = np.random.default_rng(1)
        golden = rng.normal(scale=0.3, size=(1, 1))
        rows = golden + rng.normal(scale=0.5, size=(32, 1))
        rows[3, 0] = np.nan  # non-finite deviation counts as SDC
        rows[4, 0] = np.inf
        for threshold in (15.0, 30.0):
            criterion = SteeringDeviation(threshold_degrees=threshold,
                                          angle_unit="radians")
            vector = criterion.is_sdc_rows(golden, rows)
            scalar = [criterion.is_sdc(golden, rows[i:i + 1])
                      for i in range(len(rows))]
            assert vector.tolist() == scalar, threshold

    def test_default_rows_implementation_loops(self):
        from repro.injection import SDCCriterion

        class EveryOther(SDCCriterion):
            def is_sdc(self, golden, faulty):
                return bool(np.asarray(faulty).reshape(-1)[0] > 0)

        rows = np.array([[1.0], [-1.0], [2.0]])
        verdicts = EveryOther().is_sdc_rows(np.zeros((1, 1)), rows)
        assert verdicts.tolist() == [True, False, True]


class TestWorkerCacheShipping:
    def test_spec_ships_caches_under_budget(self, lenet_prepared):
        inputs, _ = lenet_prepared.correctly_predicted_inputs(3, seed=0)
        campaign = FaultInjectionCampaign(lenet_prepared.model, inputs, seed=0)
        plans = campaign.generate_plans(12)
        spec = campaign.spec()
        assert campaign.ship_golden_caches(spec, plans,
                                           cache_budget_bytes=1 << 30)
        used_inputs = {index for index, _ in plans}
        assert set(spec.golden_caches) == used_inputs
        # A worker seeded with the shipped caches reuses them verbatim.
        rebuilt = spec.build()
        for index in used_inputs:
            for name, value in campaign._golden_caches[index].items():
                assert rebuilt._golden_caches[index][name] is value

    def test_budget_overflow_falls_back_to_rebuild(self, lenet_prepared):
        inputs, _ = lenet_prepared.correctly_predicted_inputs(2, seed=0)
        campaign = FaultInjectionCampaign(lenet_prepared.model, inputs, seed=0)
        plans = campaign.generate_plans(6)
        spec = campaign.spec()
        assert not campaign.ship_golden_caches(spec, plans,
                                               cache_budget_bytes=128)
        assert spec.golden_caches is None
        assert not campaign.ship_golden_caches(spec, plans,
                                               cache_budget_bytes=0)

    def test_shipped_caches_keep_results_bit_identical(self, lenet_prepared):
        inputs, _ = lenet_prepared.correctly_predicted_inputs(3, seed=0)

        def build():
            return FaultInjectionCampaign(lenet_prepared.model, inputs, seed=0)

        serial = build()
        plans = serial.generate_plans(18)
        reference = serial.run(plans=plans, keep_faults=True)
        shipped = build().run(plans=plans, keep_faults=True, workers=2,
                              cache_budget_bytes=1 << 30)
        rebuilt = build().run(plans=plans, keep_faults=True, workers=2,
                              cache_budget_bytes=0)
        assert shipped.sdc_counts == reference.sdc_counts
        assert shipped.faults == reference.faults
        assert rebuilt.sdc_counts == reference.sdc_counts
        assert rebuilt.faults == reference.faults

    def test_spec_with_caches_survives_pickle(self, lenet_prepared):
        import pickle

        inputs, _ = lenet_prepared.correctly_predicted_inputs(2, seed=0)
        campaign = FaultInjectionCampaign(lenet_prepared.model, inputs, seed=0)
        plans = campaign.generate_plans(6)
        spec = campaign.spec()
        campaign.ship_golden_caches(spec, plans, cache_budget_bytes=1 << 30)
        restored = pickle.loads(pickle.dumps(spec))
        rebuilt = restored.build()
        result = rebuilt.run(plans=plans, keep_faults=True)
        reference = campaign.run(plans=plans, keep_faults=True)
        assert result.sdc_counts == reference.sdc_counts
        assert result.faults == reference.faults
